//! Bounded-exhaustive model checking of the wait-free join protocol
//! (§IV-B), in the spirit of the CDSChecker-style validation the paper
//! cites for the CL deque (§II-D).
//!
//! The abstract model: a frame with `alpha` stolen continuations. Events:
//!
//! * `A_i` — the main path's i-th fork bookkeeping (`α += 1`, performed by
//!   the thief that became the main path; main-path-sequenced).
//! * `J_i` — child i's join (`counter.fetch_sub(1)`), which may happen any
//!   time after `A_i`.
//! * `R` — the main path's restore at the explicit sync
//!   (`counter.fetch_sub(I_max − α)`), after all `A_i`.
//!
//! We exhaustively enumerate every linearization consistent with the
//! program order (`A_1 < … < A_k < R`, `A_i < J_i`) and assert, for each:
//!
//! 1. **No erroneous sync** (the Fig. 6 hazard): no `J_i` *before* `R`
//!    observes a non-positive counter (phase 1 is benign).
//! 2. **Exactly one winner**: precisely one event observes the counter at
//!    zero — either `R` (main proceeds inline) or the last join (which
//!    resumes the suspended sync continuation).
//! 3. The winner is the globally last event (fully-strict: nothing
//!    proceeds past the sync before every child joined).

const I_MAX: i64 = i64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Fork(usize),
    Join(usize),
    Restore,
}

/// Replays one linearization and checks the §IV-B invariants.
fn check_schedule(events: &[Event], k: usize) {
    let mut counter: i64 = I_MAX;
    let mut alpha: i64 = 0;
    let mut winners = 0usize;
    let mut restore_seen = false;
    for (idx, &e) in events.iter().enumerate() {
        let last = idx == events.len() - 1;
        match e {
            Event::Fork(_) => {
                alpha += 1; // unsynchronised main-path increment
            }
            Event::Join(i) => {
                counter -= 1; // fetch_sub(1)
                let post = counter;
                if !restore_seen {
                    // Invariant I/IV: joiners in phase 1 must never
                    // observe the sync condition.
                    assert!(
                        post > 0,
                        "erroneous sync: join {i} observed {post} before restore ({events:?})"
                    );
                } else if post == 0 {
                    winners += 1;
                    assert!(last, "join {i} won the sync before all events done");
                }
            }
            Event::Restore => {
                restore_seen = true;
                assert_eq!(alpha, k as i64, "restore before all forks");
                counter -= I_MAX - alpha; // fetch_sub(I_max − α), Eq. 5
                let post = counter;
                assert!(post >= 0, "restored counter went negative");
                if post == 0 {
                    winners += 1;
                    assert!(last, "main proceeded inline before all joins");
                }
            }
        }
    }
    assert_eq!(counter, 0, "all strands accounted for");
    assert_eq!(winners, 1, "exactly one control flow wins the sync");
}

/// Enumerates every linearization of the k-child protocol respecting
/// program order, calling `check` on each. Returns the schedule count.
fn explore(k: usize) -> u64 {
    // State: next fork to issue, set of issued-but-unjoined children,
    // whether restore has been issued; recursion over ready events.
    fn rec(
        schedule: &mut Vec<Event>,
        next_fork: usize,
        pending_joins: &mut Vec<usize>,
        restore_done: bool,
        k: usize,
        count: &mut u64,
    ) {
        let total_len = 2 * k + 1;
        if schedule.len() == total_len {
            check_schedule(schedule, k);
            *count += 1;
            return;
        }
        // Ready: the next fork (if any left).
        if next_fork < k {
            schedule.push(Event::Fork(next_fork));
            pending_joins.push(next_fork);
            rec(
                schedule,
                next_fork + 1,
                pending_joins,
                restore_done,
                k,
                count,
            );
            pending_joins.pop();
            schedule.pop();
        }
        // Ready: restore (once all forks issued).
        if next_fork == k && !restore_done {
            schedule.push(Event::Restore);
            rec(schedule, next_fork, pending_joins, true, k, count);
            schedule.pop();
        }
        // Ready: any pending join.
        for pos in 0..pending_joins.len() {
            let child = pending_joins.remove(pos);
            schedule.push(Event::Join(child));
            rec(schedule, next_fork, pending_joins, restore_done, k, count);
            schedule.pop();
            pending_joins.insert(pos, child);
        }
    }
    let mut count = 0;
    rec(&mut Vec::new(), 0, &mut Vec::new(), false, k, &mut count);
    count
}

#[test]
fn exhaustive_interleavings_k1() {
    // A1 J1 R orderings with A1 < J1, A1 < R: R J1 / J1 R → plus A first.
    let n = explore(1);
    assert_eq!(n, 2, "k=1 has exactly 2 linearizations");
}

#[test]
fn exhaustive_interleavings_k2() {
    let n = explore(2);
    assert!(n > 2);
}

#[test]
fn exhaustive_interleavings_k3() {
    let n = explore(3);
    assert!(n > 10);
}

#[test]
fn exhaustive_interleavings_k4() {
    let n = explore(4);
    assert!(n > 100);
}

#[test]
fn exhaustive_interleavings_k5() {
    // Tens of thousands of schedules; still instant.
    let n = explore(5);
    assert!(n > 1000);
}

/// The same exploration for the *broken* protocol (counter armed with the
/// true `N_r` instead of `I_max`, no restore) must produce the Fig. 6
/// hazard — this validates that the checker can actually detect it.
#[test]
fn checker_detects_the_hazard_in_the_naive_protocol() {
    // Naive protocol: counter starts at 0; forks increment it (by the
    // thief, unsynchronised with joins); joins decrement and treat 0 as
    // the sync condition. Schedule: A1 J1 A2 J2 — J1 observes 0 while
    // child 2 is about to be forked: erroneous sync.
    let mut counter = 0i64;
    let mut erroneous = false;
    // A1
    counter += 1;
    // J1
    counter -= 1;
    if counter == 0 {
        // The worker would proceed past the sync here...
        erroneous = true;
    }
    // A2 ... the second steal had not been counted yet.
    counter += 1;
    assert!(erroneous, "the naive protocol must exhibit the hazard");
    assert_ne!(counter, 0, "...while a strand is still active");
}
