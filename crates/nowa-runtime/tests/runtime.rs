//! End-to-end runtime tests across all flavors.

use nowa_runtime::{api, Config, Flavor, Runtime};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

const ALL_FLAVORS: [Flavor; 5] = [
    Flavor::NOWA,
    Flavor::NOWA_THE,
    Flavor::NOWA_ABP,
    Flavor::NOWA_LOCKED_DEQUE,
    Flavor::FIBRIL,
];

#[test]
fn fib_single_worker() {
    let rt = Runtime::with_workers(1).unwrap();
    assert_eq!(rt.run(|| fib(20)), fib_serial(20));
}

#[test]
fn fib_four_workers_all_flavors() {
    for flavor in ALL_FLAVORS {
        let rt = Runtime::new(Config::with_workers(4).flavor(flavor)).unwrap();
        assert_eq!(
            rt.run(|| fib(22)),
            fib_serial(22),
            "flavor {}",
            flavor.name()
        );
    }
}

#[test]
fn serial_elision_outside_runtime() {
    // No runtime: the API runs serially on this plain thread.
    assert!(!api::in_task());
    assert_eq!(fib(15), fib_serial(15));
}

#[test]
fn steals_actually_happen() {
    let rt = Runtime::new(Config::with_workers(4)).unwrap();
    let expected = fib_serial(24);
    assert_eq!(rt.run(|| fib(24)), expected);
    let stats = rt.stats();
    assert!(stats.spawns > 1000, "spawns: {stats:?}");
    assert!(
        stats.steals + stats.own_takes > 0,
        "some continuation must have been taken: {stats:?}"
    );
    // Conservation: every offered continuation is consumed exactly once.
    assert_eq!(
        stats.spawns,
        stats.continuations_consumed(),
        "continuation conservation: {stats:?}"
    );
    // Every steal/self-take forks a strand that later joins.
    assert_eq!(stats.steals + stats.own_takes, stats.joins, "{stats:?}");
}

#[test]
fn join3_and_join4() {
    let rt = Runtime::with_workers(3).unwrap();
    let (a, b, c) = rt.run(|| api::join3(|| 1, || 2.5f64, || "three"));
    assert_eq!((a, b, c), (1, 2.5, "three"));
    let (a, b, c, d) = rt.run(|| api::join4(|| 1u8, || 2u16, || 3u32, || 4u64));
    assert_eq!((a, b, c, d), (1, 2, 3, 4));
}

#[test]
fn par_for_covers_every_index() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let rt = Runtime::with_workers(4).unwrap();
    let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
    rt.run(|| {
        api::par_for(0..1000, 16, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
    }
}

#[test]
fn map_reduce_sums() {
    let rt = Runtime::with_workers(4).unwrap();
    let total = rt.run(|| api::map_reduce(0..10_000, 64, &|i| i as u64, &|a, b| a + b));
    assert_eq!(total, Some(9999 * 10_000 / 2));
    let empty = rt.run(|| api::map_reduce(5..5, 64, &|i| i as u64, &|a, b| a + b));
    assert_eq!(empty, None);
}

#[test]
fn par_map_writes_all_outputs() {
    let rt = Runtime::with_workers(4).unwrap();
    let input: Vec<u32> = (0..512).collect();
    let mut output = vec![0u32; 512];
    rt.run(|| api::par_map(&input, &mut output, 8, &|x| x * 2));
    for (i, o) in output.iter().enumerate() {
        assert_eq!(*o, (i as u32) * 2);
    }
}

#[test]
fn region_linear_spawns() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let rt = Runtime::with_workers(4).unwrap();
    let sum = AtomicU64::new(0);
    rt.run(|| {
        let region = api::Region::new();
        let sum = &sum;
        for i in 0..100u64 {
            // SAFETY: everything live across the spawns (the region, the
            // atomic) is Send+Sync; the region is synced before drop.
            // `move` captures `i` by value — a stolen continuation mutates
            // the loop frame concurrently.
            unsafe {
                region.spawn(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                })
            };
        }
        region.sync();
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    });
}

#[test]
fn region_serial_fallback() {
    let region = api::Region::new();
    let mut x = 0;
    unsafe { region.spawn(|| x += 1) };
    region.sync();
    assert_eq!(x, 1);
}

#[test]
fn child_panic_propagates() {
    let rt = Runtime::with_workers(2).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|| {
            let (_, _) = api::join2(|| panic!("child boom"), || 42);
        })
    }));
    let err = result.unwrap_err();
    let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "child boom");
    // The runtime survives the panic.
    assert_eq!(rt.run(|| fib(10)), 55);
}

#[test]
fn continuation_panic_still_syncs() {
    let rt = Runtime::with_workers(2).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|| {
            let (_, _) = api::join2(|| fib(12), || -> u64 { panic!("continuation boom") });
        })
    }));
    assert!(result.is_err());
    assert_eq!(rt.run(|| fib(10)), 55);
}

#[test]
fn root_panic_propagates() {
    let rt = Runtime::with_workers(2).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|| panic!("root boom"))
    }));
    assert!(result.is_err());
    assert_eq!(rt.run(|| 7), 7);
}

#[test]
fn multiple_sequential_runs() {
    let rt = Runtime::with_workers(3).unwrap();
    for i in 0..50u64 {
        assert_eq!(rt.run(|| fib(10) + i), 55 + i);
    }
}

#[test]
fn borrows_across_run() {
    // Runtime::run supports borrowed closures (scoped semantics).
    let data: Vec<u64> = (0..100).collect();
    let rt = Runtime::with_workers(2).unwrap();
    let sum =
        rt.run(|| api::map_reduce(0..data.len(), 8, &|i| data[i], &|a, b| a + b).unwrap_or(0));
    assert_eq!(sum, 99 * 100 / 2);
}

#[test]
fn nested_joins_deep() {
    // Deep nesting: every level spawns, exercising suspension chains.
    fn depth_sum(d: u32) -> u64 {
        if d == 0 {
            return 1;
        }
        let (a, b) = api::join2(|| depth_sum(d - 1), || depth_sum(d - 1));
        a + b
    }
    let rt = Runtime::with_workers(4).unwrap();
    assert_eq!(rt.run(|| depth_sum(12)), 1 << 12);
}

#[test]
fn tiny_deque_degrades_gracefully() {
    // Capacity 2 forces unoffered continuations (bounded THE deque).
    let mut config = Config::with_workers(4).flavor(Flavor::NOWA_THE);
    config.deque_capacity = 2;
    let rt = Runtime::new(config).unwrap();
    assert_eq!(rt.run(|| fib(18)), fib_serial(18));
    let stats = rt.stats();
    assert!(
        stats.unoffered > 0,
        "tiny deque must refuse some: {stats:?}"
    );
}

#[test]
fn small_stacks_work() {
    let mut config = Config::with_workers(2);
    config.stack_size = 64 * 1024;
    let rt = Runtime::new(config).unwrap();
    assert_eq!(rt.run(|| fib(16)), 987);
}

#[test]
fn madvise_policies_run() {
    for policy in [
        nowa_runtime::MadvisePolicy::Keep,
        nowa_runtime::MadvisePolicy::Free,
        nowa_runtime::MadvisePolicy::DontNeed,
    ] {
        let rt = Runtime::new(Config::with_workers(3).madvise(policy)).unwrap();
        assert_eq!(rt.run(|| fib(18)), fib_serial(18), "policy {policy:?}");
    }
}

#[test]
fn zero_workers_rejected() {
    assert!(Runtime::with_workers(0).is_err());
}

#[test]
fn heavy_mixed_load_all_flavors() {
    for flavor in ALL_FLAVORS {
        let rt = Runtime::new(Config::with_workers(4).flavor(flavor)).unwrap();
        let total = rt.run(|| {
            api::map_reduce(
                0..200,
                1,
                &|i| {
                    // Mixed recursion depth keeps the DAG irregular.
                    fib(8 + (i % 6) as u64)
                },
                &|a, b| a + b,
            )
            .unwrap()
        });
        let expected: u64 = (0..200).map(|i| fib_serial(8 + (i % 6) as u64)).sum();
        assert_eq!(total, expected, "flavor {}", flavor.name());
    }
}

#[test]
fn for_each_visits_every_item_once() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let rt = Runtime::with_workers(4).unwrap();
    let hits: Vec<AtomicU32> = (0..500).map(|_| AtomicU32::new(0)).collect();
    rt.run(|| {
        api::for_each(0..hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
    }
}

#[test]
fn for_each_serial_fallback() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let sum = AtomicU64::new(0);
    assert!(!api::in_task());
    api::for_each(1..=10u64, &|v| {
        sum.fetch_add(v, Ordering::Relaxed);
    });
    assert_eq!(sum.into_inner(), 55);
}

#[test]
fn for_each_propagates_child_panic() {
    let rt = Runtime::with_workers(2).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|| {
            api::for_each(0..10, &|i| {
                if i == 7 {
                    panic!("item 7 exploded");
                }
            });
        })
    }));
    assert!(result.is_err());
    assert_eq!(rt.run(|| 1 + 1), 2);
}

#[test]
fn for_each_nested_inside_join2() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let rt = Runtime::with_workers(4).unwrap();
    let total = AtomicU64::new(0);
    rt.run(|| {
        let ((), ()) = api::join2(
            || {
                api::for_each(0..100u64, &|v| {
                    total.fetch_add(v, Ordering::Relaxed);
                })
            },
            || {
                api::for_each(100..200u64, &|v| {
                    total.fetch_add(v, Ordering::Relaxed);
                })
            },
        );
    });
    assert_eq!(total.into_inner(), 199 * 200 / 2);
}
