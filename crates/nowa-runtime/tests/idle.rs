//! Idle-engine integration tests: spawn bursts racing all-workers-parking.
//!
//! The hazardous interleaving is a producer pushing work concurrently with
//! every other worker descending into a futex park. A lost wakeup does not
//! corrupt anything — the bounded `max_park` timeout guarantees forward
//! progress — but it turns a microsecond handoff into a full `max_park`
//! nap. These tests therefore configure a `max_park` that is *orders of
//! magnitude* larger than the expected burst time and assert a wall-clock
//! bound far below it: a single lost wakeup anywhere in the run blows the
//! bound deterministically.

use std::time::{Duration, Instant};

use nowa_runtime::{api, Config, Flavor, IdleConfig, Runtime};

const ALL_FLAVORS: [Flavor; 5] = [
    Flavor::NOWA,
    Flavor::NOWA_THE,
    Flavor::NOWA_ABP,
    Flavor::NOWA_LOCKED_DEQUE,
    Flavor::FIBRIL,
];

/// An idle config that parks as eagerly as possible (no spin, no yield
/// phase) with a `max_park` long enough that a lost wakeup is glaring.
fn eager_park() -> IdleConfig {
    IdleConfig {
        spin_sweeps: 0,
        yield_sweeps: 0,
        steal_retries: 2,
        wake_threshold: 1,
        max_park: Duration::from_secs(5),
    }
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// Repeated small bursts, letting every worker park between bursts. Each
/// burst must complete in a small fraction of `max_park`: the only way to
/// take longer is a worker sleeping through work it should have been woken
/// for.
fn burst_round_trip(flavor: Flavor, workers: usize) {
    let rt = Runtime::new(
        Config::with_workers(workers)
            .flavor(flavor)
            .idle(eager_park()),
    )
    .unwrap();
    for round in 0..40 {
        // With no spin/yield phase the workers reach announce/park within
        // a handful of sweeps; this sleep makes "everyone is parked or
        // parking" the common entry state for the next burst.
        std::thread::sleep(Duration::from_millis(1));
        let t0 = Instant::now();
        let got = rt.run(|| fib(16));
        assert_eq!(got, 987, "flavor {} round {round}", flavor.name());
        let took = t0.elapsed();
        assert!(
            took < Duration::from_secs(2),
            "flavor {} round {round}: burst took {took:?} — a wakeup was \
             lost (max_park is 5s, a healthy burst is microseconds)",
            flavor.name()
        );
    }
    let stats = rt.stats();
    assert!(stats.parks > 0, "eager-park config never parked a worker");
}

#[test]
fn burst_races_parking_two_workers_all_flavors() {
    for flavor in ALL_FLAVORS {
        burst_round_trip(flavor, 2);
    }
}

#[test]
fn burst_races_parking_eight_workers_all_flavors() {
    for flavor in ALL_FLAVORS {
        burst_round_trip(flavor, 8);
    }
}

/// A sustained producer against eagerly parking thieves: one deep strand
/// keeps spawning while every other worker oscillates between stealing and
/// parking. Exercises the spawn-path conditional wake under contention.
#[test]
fn sustained_spawns_wake_parked_thieves() {
    for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
        let rt = Runtime::new(Config::with_workers(4).flavor(flavor).idle(eager_park())).unwrap();
        let t0 = Instant::now();
        let total = rt.run(|| {
            let mut acc = 0u64;
            for _ in 0..200 {
                acc += fib(12);
            }
            acc
        });
        assert_eq!(total, 200 * 144, "flavor {}", flavor.name());
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "flavor {}: sustained run stalled — spawn-path wakes are not \
             reaching parked thieves",
            flavor.name()
        );
    }
}

/// One producer against eagerly parking hungry thieves with the smallest
/// promotion batch (§6g): work becomes public only when a thief's failed
/// sweep raises hunger or the post-promotion wake path promotes. A missed
/// hunger signal or a lost post-promotion wake turns the handoff into a
/// `max_park` nap and blows the wall-clock bound.
#[test]
fn starved_thieves_feed_via_promotion_all_flavors() {
    use nowa_runtime::SplitConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    for flavor in ALL_FLAVORS {
        let rt = Runtime::new(
            Config::with_workers(4)
                .flavor(flavor)
                .idle(eager_park())
                .split(SplitConfig {
                    enabled: true,
                    promote_batch: 1,
                    promote_on_wake: true,
                }),
        )
        .unwrap();
        let t0 = Instant::now();
        let total = AtomicU64::new(0);
        rt.run(|| {
            let region = api::Region::new();
            let total = &total;
            for i in 0..2_000u64 {
                // Cede the CPU so the eagerly parking thieves actually get
                // to sweep (and starve, and signal) on a small host.
                if i % 32 == 0 {
                    std::thread::yield_now();
                }
                // SAFETY: the atomic is Send and outlives the region; the
                // region syncs before drop.
                unsafe {
                    region.spawn(move || {
                        total.fetch_add(1, Ordering::Relaxed);
                    })
                };
            }
            region.sync();
        });
        assert_eq!(total.into_inner(), 2_000, "flavor {}", flavor.name());
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "flavor {}: starvation handoff stalled into a park nap \
             (max_park is 5s)",
            flavor.name()
        );
        let stats = rt.stats();
        assert_eq!(
            stats.spawns,
            stats.continuations_consumed(),
            "steal conservation violated, flavor {}",
            flavor.name()
        );
        if flavor != Flavor::FIBRIL {
            assert!(
                stats.promotions > 0,
                "hungry parked thieves never triggered a promotion, \
                 flavor {}",
                flavor.name()
            );
        }
    }
}

/// Parked workers must read as healthy: a runtime sitting idle for several
/// watchdog thresholds must produce zero stall reports.
#[test]
fn watchdog_classifies_parked_workers_healthy() {
    let rt = Runtime::new(
        Config::with_workers(2)
            .idle(eager_park())
            .watchdog(Duration::from_millis(50)),
    )
    .unwrap();
    assert_eq!(rt.run(|| fib(10)), 55);
    // All workers descend into parks; give the watchdog several full
    // thresholds to (wrongly) trip on their frozen progress counters.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        rt.watchdog_reports(),
        0,
        "watchdog reported a stall for a healthily parked worker"
    );
    // And the runtime still wakes up fine afterwards.
    assert_eq!(rt.run(|| fib(10)), 55);
}

/// The same burst-vs-parking race with the chaos idle sites armed: forced
/// premature parks (skipping the backoff ladder) and spurious wakes. The
/// injection schedule is a pure function of the seed, so the same seed
/// must produce correct results on every replay.
#[cfg(feature = "chaos")]
#[test]
fn burst_survives_chaos_forced_parks_and_spurious_wakes() {
    use nowa_runtime::ChaosConfig;

    for flavor in ALL_FLAVORS {
        for workers in [2usize, 8] {
            for replay in 0..2 {
                let mut chaos = ChaosConfig::with_seed(0xC0FF_EE00 + workers as u64);
                chaos.force_park = 16384; // 25% of idle backoffs park instantly
                chaos.spurious_wake = 16384; // 25% of parks return without waiting
                let rt = Runtime::new(
                    Config::with_workers(workers)
                        .flavor(flavor)
                        .idle(eager_park())
                        .chaos(chaos),
                )
                .unwrap();
                let t0 = Instant::now();
                for _ in 0..10 {
                    assert_eq!(
                        rt.run(|| fib(14)),
                        377,
                        "flavor {} workers {workers} replay {replay}",
                        flavor.name()
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                assert!(
                    t0.elapsed() < Duration::from_secs(20),
                    "flavor {} workers {workers} replay {replay}: chaos idle \
                     faults caused a stall",
                    flavor.name()
                );
                let snap = rt.chaos_stats().expect("chaos configured");
                assert!(
                    snap.ticks.iter().sum::<u64>() > 0,
                    "chaos sites never visited"
                );
            }
        }
    }
}
