//! Flight-recorder and live-metrics integration tests.
//!
//! The flight recorder is a bounded overwrite-oldest ring per worker that
//! keeps the last moments of scheduler history with no exporter thread.
//! These tests drive the four drain paths end to end:
//!
//! * a child panic propagating out of [`Runtime::run`] leaves the final
//!   scheduler events in the rings (and dumps them to stderr on the way);
//! * a watchdog-detected stall counts a report and leaves the rings
//!   dumpable;
//! * a shutdown that times out dumps the rings before reporting the
//!   stragglers — the last thing a wedged runtime does is explain itself;
//! * the recorder works with full tracing *off* — it is the always-on
//!   half of the observability story.
//!
//! The metrics tests cover the pull-based registry the runtime folds its
//! counters into.

#![cfg(feature = "trace")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

use nowa_runtime::{api, Config, Runtime};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// Deliberate panic payload; the quiet hook below suppresses its backtrace.
struct Boom;

fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Boom>().is_none() {
                default(info);
            }
        }));
    });
}

#[test]
fn child_panic_leaves_final_events_in_flight_ring() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(2).flight_recorder(4096)).unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.run(|| {
            let (_a, _b) = api::join2(|| fib(10), || -> u64 { std::panic::panic_any(Boom) });
        })
    }));
    assert!(result.is_err(), "the child panic must propagate");
    let dump = rt.flight_dump().expect("flight recorder configured");
    assert!(
        dump.contains("flight recorder: last"),
        "dump must have the merged header:\n{dump}"
    );
    // Capacity is far above the event count of fib(10), so the full
    // history — root pickup through the last spawns before the panic —
    // must be retained.
    assert!(dump.contains(" root "), "root pickup retained:\n{dump}");
    assert!(dump.contains(" spawn "), "spawns retained:\n{dump}");
}

#[test]
fn watchdog_stall_counts_report_with_flight_recorder_armed() {
    // A root task that sleeps past the threshold pins its worker without
    // bumping progress counters: the watchdog must report it, and the
    // stall report path dumps the flight rings (visible on stderr; here
    // we assert the report fired and the rings are dumpable).
    let rt = Runtime::new(
        Config::with_workers(2)
            .flight_recorder(1024)
            .watchdog(Duration::from_millis(40)),
    )
    .unwrap();
    rt.run(|| {
        let _ = fib(10);
        std::thread::sleep(Duration::from_millis(250));
    });
    assert!(
        rt.watchdog_reports() >= 1,
        "watchdog missed a 250ms stall with a 40ms threshold"
    );
    let dump = rt.flight_dump().expect("flight recorder configured");
    assert!(
        dump.contains(" spawn "),
        "scheduler history retained:\n{dump}"
    );
}

/// The fourth drain leg: a shutdown that times out dumps the flight rings
/// (to stderr) before returning the typed error, and leaves them dumpable
/// for post-mortem inspection.
#[test]
fn shutdown_timeout_drains_flight_recorder() {
    let rt = Runtime::new(Config::with_workers(2).flight_recorder(2048)).unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            rt.run(|| {
                let _ = fib(10);
                // Uncancellable straggler: pins a worker past the deadline.
                std::thread::sleep(Duration::from_millis(400));
            })
        });
        std::thread::sleep(Duration::from_millis(50));
        let err = rt
            .shutdown(Duration::from_millis(100))
            .expect_err("a sleeping worker cannot drain in 100ms");
        assert!(!err.stuck.is_empty(), "{err:?}");
        // The timeout path dumped the rings on the way out; the history
        // that explains the wedge is still retrievable afterwards.
        let dump = rt.flight_dump().expect("flight recorder configured");
        assert!(dump.contains(" spawn "), "history retained:\n{dump}");
        handle.join().unwrap();
    });
}

#[test]
fn flight_recorder_works_without_tracing() {
    let rt = Runtime::new(Config::with_workers(2).flight_recorder(64)).unwrap();
    assert!(rt.trace_report().is_none(), "tracing was not requested");
    assert_eq!(rt.run(|| fib(14)), 377);
    let dump = rt.flight_dump().expect("flight recorder configured");
    assert!(dump.contains("flight recorder: last"), "{dump}");
    // Bounded: each worker retains at most capacity − 1 events no matter
    // how much history the run produced.
    let events = dump.lines().count() - 1;
    assert!(
        events <= 2 * 63,
        "dump exceeded ring bounds: {events} events"
    );
}

#[test]
fn flight_dump_absent_when_not_configured() {
    let rt = Runtime::new(Config::with_workers(1)).unwrap();
    assert_eq!(rt.run(|| 21 * 2), 42);
    assert!(rt.flight_dump().is_none());
}

#[test]
fn metrics_fold_scheduler_and_idle_counters() {
    let rt = Runtime::new(Config::with_workers(2)).unwrap();
    assert_eq!(rt.run(|| fib(16)), 987);
    let stats = rt.stats();
    let text = rt.metrics_text();
    assert!(text.contains("# TYPE nowa_spawns_total counter"), "{text}");
    assert!(text.contains("# TYPE nowa_fast_path_ratio gauge"), "{text}");
    assert!(text.contains("nowa_workers 2"), "{text}");
    assert!(
        text.contains(&format!("nowa_spawns_total {}", stats.spawns)),
        "aggregate spawn counter must match stats():\n{text}"
    );
    assert!(text.contains("nowa_parks_total"), "{text}");
    assert!(text.contains("nowa_wakes_issued_total"), "{text}");
    assert!(text.contains("nowa_targeted_wake_ratio"), "{text}");
    assert!(
        text.contains("nowa_worker_spawns_total{worker=\"0\"}")
            && text.contains("nowa_worker_spawns_total{worker=\"1\"}"),
        "per-worker families must be labelled:\n{text}"
    );

    let json = rt.metrics_json();
    let parsed = nowa_trace::json::Json::parse(&json).expect("metrics JSON parses");
    let spawns = parsed
        .get("nowa_spawns_total")
        .and_then(|f| f.get("samples"))
        .and_then(|s| s.as_arr())
        .and_then(|s| s.first())
        .and_then(|s| s.get("value"))
        .and_then(|v| v.as_num())
        .expect("spawn family present");
    assert_eq!(spawns, stats.spawns as f64);
}
