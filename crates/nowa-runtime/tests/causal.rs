//! End-to-end causal-profile tests: real scheduler runs, reconstructed DAG.
//!
//! The trace events carry causal identity (frame ids, steal provenance),
//! so [`nowa_trace::CausalProfile`] can replay the per-worker deques and
//! rebuild the fork/join DAG. Against a live runtime the reconstruction
//! must be *complete* (no drops, every steal matched to its spawn edge)
//! and must agree with the scheduler's own counters — the same
//! conservation laws `runtime.rs` asserts on [`StatsSnapshot`], but now
//! derived independently from the event stream.

#![cfg(feature = "trace")]

use nowa_runtime::{api, Config, Runtime};
use nowa_trace::CausalProfile;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// Runs `f` under tracing with a ring big enough to hold every event, and
/// returns the reconstructed profile plus the scheduler's own counters.
fn profiled<R: Send>(
    workers: usize,
    config: Config,
    f: impl FnOnce() -> R + Send,
) -> (R, CausalProfile, nowa_runtime::StatsSnapshot) {
    let rt = Runtime::new(config.tracing(true).trace_ring(1 << 18)).unwrap();
    assert_eq!(rt.workers(), workers);
    let out = rt.run(f);
    let stats = rt.stats();
    let report = rt.trace_report().expect("tracing configured");
    let profile = CausalProfile::from_workers(&report.workers);
    (out, profile, stats)
}

#[test]
fn reconstruction_is_complete_and_matches_scheduler_counters() {
    let (out, profile, stats) = profiled(4, Config::with_workers(4), || fib(20));
    assert_eq!(out, 6765);
    assert_eq!(profile.dropped, 0, "ring sized to hold the full run");
    assert!(
        profile.complete(),
        "no unmatched pops/steals on a lossless trace: {profile:?}"
    );
    // The event stream and the relaxed counters are independent records of
    // the same run; they must tell the same story.
    assert_eq!(profile.spawns, stats.spawns);
    assert_eq!(profile.steals, stats.steals);
    assert_eq!(profile.fast_pops, stats.fast_pops);
    assert_eq!(profile.own_takes, stats.own_takes);
    assert_eq!(profile.joins, stats.joins);
    assert_eq!(profile.suspensions, stats.suspensions);
    // Conservation: every steal event paired with exactly one spawn edge.
    assert_eq!(profile.matched_steals, profile.steals);
    assert_eq!(profile.unmatched_steals, 0);
    assert_eq!(
        profile.spawns,
        profile.fast_pops + profile.steals + profile.own_takes,
        "every offered continuation consumed exactly once"
    );
    // The work/span laws: T∞ ≤ T1, parallelism ≥ 1.
    assert!(profile.t1_ns > 0);
    assert!(profile.span_ns > 0 && profile.span_ns <= profile.t1_ns);
    assert!(profile.parallelism() >= 1.0 - 1e-9);
    assert_eq!(profile.critical.span_ns, profile.span_ns);
    // Steal-edge statistics exist iff steals happened.
    assert_eq!(profile.steal_edges.len() as u64, profile.matched_steals);
    assert_eq!(profile.time_in_deque.count, profile.matched_steals);
}

#[test]
fn single_worker_run_has_no_steal_edges() {
    let (out, profile, stats) = profiled(1, Config::with_workers(1), || fib(16));
    assert_eq!(out, 987);
    assert_eq!(profile.dropped, 0);
    assert!(profile.complete(), "{profile:?}");
    assert_eq!(profile.steals, 0);
    assert!(profile.steal_edges.is_empty());
    assert_eq!(profile.spawns, stats.spawns);
    // T1/T∞ is the *program's* inherent parallelism (Cilkview-style), not
    // the achieved speedup: even on one worker, fib's wide DAG must show
    // parallelism well above 1.
    assert!(profile.parallelism() > 1.0, "{profile:?}");
    // And no steal edge can sit on the critical path of a 1-worker run.
    assert_eq!(profile.critical.steal_edges, 0);
}

/// Forced steal failures (chaos) perturb *which* steals succeed, not the
/// conservation law: every successful steal still pairs with exactly one
/// spawn edge in the reconstruction.
#[cfg(feature = "chaos")]
#[test]
fn steal_conservation_holds_under_forced_steal_failures() {
    use nowa_runtime::ChaosConfig;
    for seed in [0xBEEF_u64, 0xCAFE, 0x5EED] {
        let mut chaos = ChaosConfig::with_seed(seed);
        chaos.steal_fail = 16384; // 25% of steal attempts forced to fail
        let (out, profile, stats) = profiled(4, Config::with_workers(4).chaos(chaos), || fib(18));
        assert_eq!(out, 2584);
        assert_eq!(profile.dropped, 0, "seed {seed:#x}");
        assert_eq!(profile.unmatched_steals, 0, "seed {seed:#x}: {profile:?}");
        assert_eq!(profile.matched_steals, profile.steals, "seed {seed:#x}");
        assert_eq!(profile.steals, stats.steals, "seed {seed:#x}");
        assert_eq!(
            profile.spawns,
            profile.fast_pops + profile.steals + profile.own_takes,
            "seed {seed:#x}: conservation"
        );
    }
}
