//! Structured-cancellation, deadline and shutdown integration tests.
//!
//! The cancellation model under test (DESIGN.md §6f):
//!
//! * cancelling a region is a cooperative latch — running strands unwind
//!   with a typed [`Cancelled`] payload at their next checkpoint,
//!   not-yet-started children are skipped, and the first recorded reason
//!   wins (double-cancel is an idempotent no-op);
//! * a region suspended at `sync` is *aborted*, CQS-style: the last
//!   joiner's zero-crossing retires the suspension exactly once and wakes
//!   the continuation specifically to unwind — no worker ever blocks on a
//!   cancelled join;
//! * a real fault (a child panic that is not itself a `Cancelled` unwind)
//!   displaces a stored cancellation payload — cancellation must never
//!   mask the bug that raced with it;
//! * `Runtime::shutdown(timeout)` cancels the root scope, drains, and
//!   either joins every worker (`Ok`) or reports the stragglers in a typed
//!   [`ShutdownError`];
//! * under `--features chaos`, forced cancellations at the steal / sync /
//!   suspend boundaries replay bit-identically for a fixed seed.

use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Once};
use std::time::{Duration, Instant};

use nowa_runtime::{api, CancelReason, Cancelled, Config, Flavor, Region, Runtime};

/// Silences the default panic hook for this suite's deliberate payloads
/// (cancellation unwinds, `Boom` test payloads, the "runtime is shut
/// down" rejection) so expected panics don't spray backtraces.
fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let expected = p.downcast_ref::<Cancelled>().is_some()
                || p.downcast_ref::<Boom>().is_some()
                || p.downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("runtime is shut down"));
            if !expected {
                default(info);
            }
        }));
    });
}

/// Drop-counting panic payload (same idiom as `panics.rs`).
struct Boom {
    drops: &'static AtomicU32,
}

impl Drop for Boom {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

const BOTH_FLAVORS: [Flavor; 2] = [Flavor::NOWA, Flavor::FIBRIL];

/// Extracts the cancellation reason from a caught unwind payload.
fn reason_of(payload: &(dyn std::any::Any + Send)) -> Option<CancelReason> {
    payload.downcast_ref::<Cancelled>().map(|c| c.reason)
}

#[test]
fn token_cancel_unwinds_cooperative_loop() {
    quiet_expected_panics();
    for flavor in BOTH_FLAVORS {
        let rt = Runtime::new(Config::with_workers(2).flavor(flavor)).unwrap();
        let (tx, rx) = mpsc::channel();
        // An external canceller: the token is Send + Sync and outlives the
        // region (the scope cell is Arc'd).
        let canceller = std::thread::spawn(move || {
            let token: nowa_runtime::CancelToken = rx.recv().unwrap();
            std::thread::sleep(Duration::from_millis(20));
            let first = token.cancel();
            let second = token.cancel();
            (token, first, second)
        });
        let out = rt.run(move || {
            catch_unwind(AssertUnwindSafe(|| {
                let region = Region::cancellable();
                tx.send(
                    region
                        .cancel_token()
                        .expect("cancellable region has a token"),
                )
                .unwrap();
                loop {
                    region.checkpoint();
                    std::hint::spin_loop();
                }
            }))
        });
        let payload = out.expect_err("checkpoint loop must unwind");
        assert_eq!(
            reason_of(&*payload),
            Some(CancelReason::Token),
            "{}: wrong payload",
            flavor.name()
        );
        let (token, first, second) = canceller.join().unwrap();
        assert!(first, "first cancel latches the scope");
        assert!(!second, "second cancel is an idempotent no-op");
        assert!(token.is_cancelled());
        // The runtime survives a cancelled region.
        assert_eq!(rt.run(|| 42), 42);
        assert!(
            rt.stats().cancels >= 1,
            "{}: no cancel counted",
            flavor.name()
        );
    }
}

#[test]
fn deadline_cancels_at_checkpoint() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(2)).unwrap();
    let started = Instant::now();
    let out = rt.run(|| {
        catch_unwind(|| {
            let region = Region::with_deadline(Duration::from_millis(30));
            loop {
                region.checkpoint();
                std::hint::spin_loop();
            }
        })
    });
    let payload = out.expect_err("deadline must fire");
    assert_eq!(reason_of(&*payload), Some(CancelReason::Deadline));
    assert!(
        started.elapsed() >= Duration::from_millis(25),
        "deadline fired early: {:?}",
        started.elapsed()
    );
    assert_eq!(rt.run(|| 7), 7);
}

/// Cancelling a region whose main path is *suspended* at `sync` must not
/// block any worker: the last joiner retires the suspension and resumes
/// the continuation specifically to unwind (the abort path).
#[test]
fn cancel_during_suspended_sync_aborts() {
    quiet_expected_panics();
    for flavor in BOTH_FLAVORS {
        // The suspension needs the continuation stolen before the child
        // finishes; retry a few times in case a loaded machine delays the
        // thief. The §6g split layer is disabled so the lone push is
        // public immediately — under lazy promotion a single spawn whose
        // child blocks stays private unless a thief signalled hunger
        // first, and this test is about the cancel/abort handoff, not
        // promotion policy.
        let mut aborted = false;
        for _ in 0..5 {
            let rt = Runtime::new(
                Config::with_workers(2)
                    .flavor(flavor)
                    .split(nowa_runtime::SplitConfig::disabled()),
            )
            .unwrap();
            let (tx, rx) = mpsc::channel();
            let canceller = std::thread::spawn(move || {
                let token: nowa_runtime::CancelToken = rx.recv().unwrap();
                std::thread::sleep(Duration::from_millis(30));
                token.cancel();
            });
            let out = rt.run(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    let region = Region::cancellable();
                    tx.send(region.cancel_token().unwrap()).unwrap();
                    // SAFETY: the region is not moved; nothing borrowed
                    // from the loop frame crosses the spawn.
                    unsafe {
                        region.spawn(|| std::thread::sleep(Duration::from_millis(100)));
                    }
                    // The thief steals this continuation, reaches the sync
                    // with the child still sleeping, and suspends. The
                    // cancel lands mid-suspension; the child's join then
                    // resumes us into the cancelled scope.
                    region.sync();
                }))
            });
            canceller.join().unwrap();
            let payload = out.expect_err("cancelled region must unwind");
            assert_eq!(
                reason_of(&*payload),
                Some(CancelReason::Token),
                "{}: wrong payload",
                flavor.name()
            );
            assert_eq!(rt.run(|| 1), 1, "{}: runtime wedged", flavor.name());
            let stats = rt.stats();
            if stats.suspensions >= 1 && stats.aborts >= 1 {
                aborted = true;
                break;
            }
        }
        assert!(
            aborted,
            "{}: no run ever aborted a suspended sync",
            flavor.name()
        );
    }
}

/// A real fault racing with cancellation must win: the stored `Cancelled`
/// payload is displaced by the child's organic panic.
#[test]
fn real_fault_displaces_cancellation_payload() {
    quiet_expected_panics();
    static DROPS: AtomicU32 = AtomicU32::new(0);
    for flavor in BOTH_FLAVORS {
        let before = DROPS.load(Ordering::SeqCst);
        let rt = Runtime::new(Config::with_workers(1).flavor(flavor)).unwrap();
        let (tx, rx) = mpsc::channel();
        let canceller = std::thread::spawn(move || {
            let token: nowa_runtime::CancelToken = rx.recv().unwrap();
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
        });
        let out = rt.run(move || {
            catch_unwind(AssertUnwindSafe(|| {
                let region = Region::cancellable();
                tx.send(region.cancel_token().unwrap()).unwrap();
                // SAFETY: region not moved; the payload is Send.
                unsafe {
                    region.spawn(|| {
                        // Outlive the cancel, then fault for real.
                        std::thread::sleep(Duration::from_millis(50));
                        panic_any(Boom { drops: &DROPS });
                    });
                }
                region.sync();
            }))
        });
        canceller.join().unwrap();
        let payload = out.expect_err("faulting region must unwind");
        assert!(
            payload.downcast_ref::<Boom>().is_some(),
            "{}: cancellation masked the real fault",
            flavor.name()
        );
        drop(payload);
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            before + 1,
            "{}: payload leaked or double-dropped",
            flavor.name()
        );
        assert_eq!(rt.run(|| 9), 9);
    }
}

/// An organic sibling panic latches the region scope: children not yet
/// started are skipped, and the token observes the cancellation.
#[test]
fn sibling_panic_cancels_region_and_skips_children() {
    quiet_expected_panics();
    static DROPS: AtomicU32 = AtomicU32::new(0);
    static SECOND_RAN: AtomicU32 = AtomicU32::new(0);
    let rt = Runtime::new(Config::with_workers(1)).unwrap();
    let (tx, rx) = mpsc::channel();
    let out = rt.run(move || {
        catch_unwind(AssertUnwindSafe(|| {
            let region = Region::cancellable();
            tx.send(region.cancel_token().unwrap()).unwrap();
            // SAFETY: region not moved; payload and counters are Send.
            unsafe {
                region.spawn(|| panic_any(Boom { drops: &DROPS }));
                // One worker: the panic above has already been recorded by
                // the time the continuation resumes, so this child must be
                // skipped, not started.
                region.spawn(|| {
                    SECOND_RAN.store(1, Ordering::SeqCst);
                });
            }
            region.sync();
        }))
    });
    let token: nowa_runtime::CancelToken = rx.recv().unwrap();
    let payload = out.expect_err("sibling panic must propagate");
    assert!(payload.downcast_ref::<Boom>().is_some());
    assert_eq!(
        SECOND_RAN.load(Ordering::SeqCst),
        0,
        "flagged frame spawned anyway"
    );
    assert!(
        token.is_cancelled(),
        "organic panic must cancel the enclosing region"
    );
}

/// The first recorded reason wins: a token cancel latched before the
/// deadline fires keeps `CancelReason::Token` even after the deadline
/// elapses.
#[test]
fn first_cancel_reason_wins() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(2)).unwrap();
    let out = rt.run(|| {
        catch_unwind(|| {
            let region = Region::with_deadline(Duration::from_millis(10));
            let token = region.cancel_token().unwrap();
            assert!(token.cancel(), "first cancel latches");
            assert!(!token.cancel(), "double cancel is a no-op");
            // Let the deadline expire too; it must not overwrite Token.
            std::thread::sleep(Duration::from_millis(40));
            region.checkpoint();
            unreachable!("checkpoint must raise");
        })
    });
    let payload = out.expect_err("cancelled region must unwind");
    assert_eq!(reason_of(&*payload), Some(CancelReason::Token));
}

#[test]
fn shutdown_drained_runtime_is_ok_and_idempotent() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(3)).unwrap();
    assert_eq!(rt.run(|| fib(16)), 987);
    assert_eq!(rt.shutdown(Duration::from_secs(5)), Ok(()));
    // Memoized: the second call reports the same verdict without re-joining.
    assert_eq!(rt.shutdown(Duration::from_secs(5)), Ok(()));
    // New work is rejected loudly, not queued into a dead runtime.
    let rejected = catch_unwind(AssertUnwindSafe(|| rt.run(|| 1)));
    let payload = rejected.expect_err("run after shutdown must panic");
    assert_eq!(
        payload.downcast_ref::<&str>().copied(),
        Some("runtime is shut down")
    );
}

/// Shutdown cancels in-flight cooperative work through the root scope:
/// every region (scoped or not) chains up to it.
#[test]
fn shutdown_cancels_cooperative_work() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(2)).unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            rt.run(|| {
                catch_unwind(|| {
                    // A plain region adopts the ambient (root) scope —
                    // shutdown reaches it without any token plumbing.
                    let region = Region::new();
                    loop {
                        region.checkpoint();
                        std::hint::spin_loop();
                    }
                })
            })
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rt.shutdown(Duration::from_secs(5)), Ok(()));
        let payload = handle.join().unwrap().expect_err("loop must unwind");
        assert_eq!(reason_of(&*payload), Some(CancelReason::Shutdown));
    });
}

/// A worker stuck in uncancellable code past the deadline is reported in
/// the typed error, with a usable Display.
#[test]
fn shutdown_timeout_reports_stuck_workers() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(2)).unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            // Uncancellable: a blocking sleep never checkpoints.
            rt.run(|| std::thread::sleep(Duration::from_millis(400)))
        });
        std::thread::sleep(Duration::from_millis(50));
        let err = rt
            .shutdown(Duration::from_millis(100))
            .expect_err("a sleeping worker cannot drain in 100ms");
        assert!(!err.stuck.is_empty(), "no stuck worker reported: {err:?}");
        let rendered = err.to_string();
        assert!(
            rendered.contains("shutdown incomplete"),
            "unhelpful display: {rendered}"
        );
        // The straggler finishes its task and exits; the run completes.
        handle.join().unwrap();
    });
}

/// Forced cancellations (`--features chaos`) replay bit-identically: one
/// worker makes the schedule deterministic, so outcome and injection
/// counters must match across same-seed runs — and at least one seed must
/// actually cancel.
#[cfg(feature = "chaos")]
#[test]
fn forced_cancellation_replays_deterministically() {
    quiet_expected_panics();
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let run_once = |seed: u64| {
        let chaos = nowa_runtime::ChaosConfig {
            force_cancel: 4096,
            ..nowa_runtime::ChaosConfig::with_seed(seed)
        };
        let rt = Runtime::new(Config::with_workers(1).chaos(chaos)).unwrap();
        let outcome = rt.run(|| {
            catch_unwind(|| {
                let region = Region::cancellable();
                // The whole tree runs under the region's scope; a forced
                // cancellation at any sync boundary unwinds it.
                let n = fib(12);
                region.sync();
                n
            })
        });
        let outcome = match outcome {
            Ok(n) => Ok(n),
            Err(payload) => Err(reason_of(&*payload)),
        };
        (outcome, rt.chaos_stats().expect("chaos configured"))
    };
    let mut cancelled_somewhere = false;
    for seed in 0..6u64 {
        let first = run_once(seed);
        let second = run_once(seed);
        assert_eq!(first, second, "seed {seed} did not replay");
        match first.0 {
            Ok(n) => assert_eq!(n, 144, "seed {seed} corrupted the result"),
            Err(reason) => {
                assert_eq!(reason, Some(CancelReason::Token), "seed {seed}");
                cancelled_somewhere = true;
            }
        }
    }
    assert!(
        cancelled_somewhere,
        "no seed fired a forced cancellation at 1/16 per sync"
    );
}

/// A worker busy unwinding cancelled regions is making progress — the
/// stall watchdog must stay silent (regression: cancels/aborts count
/// toward `WorkerStats::progress`).
#[test]
fn watchdog_quiet_while_unwinding_cancellations() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(1).watchdog(Duration::from_millis(40))).unwrap();
    rt.run(|| {
        let region = Region::cancellable();
        region.cancel_token().unwrap().cancel();
        let until = Instant::now() + Duration::from_millis(250);
        while Instant::now() < until {
            // Every checkpoint raises; every raise is progress.
            let out = catch_unwind(AssertUnwindSafe(|| region.checkpoint()));
            assert!(out.is_err());
        }
    });
    assert!(rt.stats().cancels > 0, "the loop never raised");
    assert_eq!(
        rt.watchdog_reports(),
        0,
        "watchdog flagged a worker that was unwinding cancellations"
    );
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
    a + b
}
