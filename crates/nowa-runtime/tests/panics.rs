//! Panic-propagation and stall-watchdog hardening tests.
//!
//! The basic "one child panics" paths are covered in `runtime.rs`; this
//! suite exercises the nastier corners of the failure model:
//!
//! * two children of the *same* frame panic — exactly one payload is
//!   re-thrown, the other is dropped (not leaked, not aborted on);
//! * a panic captured before the parent suspends at sync crosses the
//!   suspension and is re-thrown when the join resumes the continuation,
//!   possibly on a different worker;
//! * the stall watchdog reports a worker that stops making progress and
//!   stays silent on a healthy run.
//!
//! Everything runs under both the NOWA (wait-free) and FIBRIL (locked)
//! join protocols — panic bookkeeping lives above the protocol layer and
//! must behave identically under both.

use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;
use std::time::Duration;

use nowa_runtime::{api, Config, Flavor, Runtime};

/// Silences the default panic hook for this suite's deliberate payloads so
/// the expected panics don't spray backtraces over the test output.
fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Boom>().is_none() {
                default(info);
            }
        }));
    });
}

/// Drop-counting panic payload: every `Boom` ever thrown must eventually be
/// dropped exactly once, whether it won the first-panic race or lost it.
struct Boom {
    tag: &'static str,
    drops: &'static AtomicU32,
}

impl Drop for Boom {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

const BOTH_FLAVORS: [Flavor; 2] = [Flavor::NOWA, Flavor::FIBRIL];

#[test]
fn both_children_panic_single_worker_first_wins() {
    quiet_expected_panics();
    static DROPS: AtomicU32 = AtomicU32::new(0);
    for flavor in BOTH_FLAVORS {
        let before = DROPS.load(Ordering::SeqCst);
        let rt = Runtime::new(Config::with_workers(1).flavor(flavor)).unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.run(|| {
                api::join3(
                    || {
                        panic_any(Boom {
                            tag: "first",
                            drops: &DROPS,
                        })
                    },
                    || {
                        panic_any(Boom {
                            tag: "second",
                            drops: &DROPS,
                        })
                    },
                    || (),
                );
            })
        }));
        let payload = result.expect_err("both children panicked, none propagated");
        let boom = payload
            .downcast::<Boom>()
            .expect("payload must be the child's Boom, unmodified");
        // One worker executes the children in spawn order, so the winner of
        // the first-panic race is deterministic: the first child.
        assert_eq!(boom.tag, "first", "flavor {}", flavor.name());
        // The losing payload was dropped when its `set_panic` found the
        // slot taken; only the re-thrown one is still alive.
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 1);
        drop(boom);
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 2, "payload leaked");
        // The runtime survives.
        assert_eq!(rt.run(|| 21 * 2), 42);
    }
}

#[test]
fn both_children_panic_multi_worker_no_leak() {
    quiet_expected_panics();
    static DROPS: AtomicU32 = AtomicU32::new(0);
    for flavor in BOTH_FLAVORS {
        // With thieves around, either child may reach `set_panic` first;
        // the invariant is one payload out, one payload dropped, zero leaks.
        for _ in 0..20 {
            let before = DROPS.load(Ordering::SeqCst);
            let rt = Runtime::new(Config::with_workers(4).flavor(flavor)).unwrap();
            let result = catch_unwind(AssertUnwindSafe(|| {
                rt.run(|| {
                    api::join3(
                        || {
                            panic_any(Boom {
                                tag: "a",
                                drops: &DROPS,
                            })
                        },
                        || {
                            panic_any(Boom {
                                tag: "b",
                                drops: &DROPS,
                            })
                        },
                        || (),
                    );
                })
            }));
            let boom = result
                .expect_err("no panic propagated")
                .downcast::<Boom>()
                .expect("payload must be a Boom");
            assert!(boom.tag == "a" || boom.tag == "b");
            assert_eq!(DROPS.load(Ordering::SeqCst) - before, 1);
            drop(boom);
            assert_eq!(DROPS.load(Ordering::SeqCst) - before, 2, "payload leaked");
        }
    }
}

#[test]
fn panic_crosses_suspended_sync() {
    quiet_expected_panics();
    static DROPS: AtomicU32 = AtomicU32::new(0);
    for flavor in BOTH_FLAVORS {
        // The spawned child sleeps long enough for a thief to steal the
        // continuation, run `b`, and suspend at the sync with the child
        // still outstanding. The child then panics; its join is the last
        // arrival, so it resumes the suspended continuation (on whichever
        // worker ran the child) and `propagate` re-throws there.
        let rt = Runtime::new(Config::with_workers(2).flavor(flavor)).unwrap();
        let before = DROPS.load(Ordering::SeqCst);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.run(|| {
                // Let the thief finish starting up and sweep our (empty)
                // deque first: with split deques the sweep raises the
                // hunger flag, so the spawn's push below promotes the
                // continuation where a thief can actually reach it. Without
                // the grace period the push can race ahead of the thief's
                // first sweep on small hosts and the continuation stays
                // private for the whole window.
                std::thread::sleep(Duration::from_millis(10));
                api::join2(
                    || {
                        std::thread::sleep(Duration::from_millis(50));
                        panic_any(Boom {
                            tag: "late child",
                            drops: &DROPS,
                        });
                    },
                    || (),
                );
            })
        }));
        let boom = result
            .expect_err("late child panic did not propagate")
            .downcast::<Boom>()
            .expect("payload must be the child's Boom");
        assert_eq!(boom.tag, "late child", "flavor {}", flavor.name());
        drop(boom);
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 1, "payload leaked");
        let stats = rt.stats();
        assert!(
            stats.suspensions >= 1,
            "sync never suspended — the panic did not cross a suspension: {stats:?}"
        );
        assert!(
            stats.sync_resumes >= 1,
            "suspended sync was never resumed by the last join: {stats:?}"
        );
        assert_eq!(rt.run(|| 21 * 2), 42);
    }
}

#[test]
fn watchdog_reports_stalled_worker() {
    // A root task that sleeps far past the threshold pins its worker
    // without bumping any progress counter — exactly a stall.
    let rt = Runtime::new(Config::with_workers(2).watchdog(Duration::from_millis(40))).unwrap();
    rt.run(|| std::thread::sleep(Duration::from_millis(250)));
    assert!(
        rt.watchdog_reports() >= 1,
        "watchdog missed a 250ms stall with a 40ms threshold"
    );
}

#[test]
fn watchdog_quiet_on_healthy_run() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let rt = Runtime::new(Config::with_workers(2).watchdog(Duration::from_millis(500))).unwrap();
    assert_eq!(rt.run(|| fib(20)), 6765);
    // Idle workers tick their search loop, busy workers bump real
    // counters; nobody should look stalled.
    assert_eq!(rt.watchdog_reports(), 0, "false-positive stall report");
}
