//! Async surface integration tests: the §6h reactor/timer/waker bridge
//! under its edge cases.
//!
//! The hazardous configurations: a waker firing from outside the runtime
//! while *every* worker is parked (the only sleeper may be the claimed
//! epoll poller, which the idle engine cannot see — the eventfd kick is
//! the only signal that reaches it); a timer due while the runtime's
//! workers are tied up in a suspended sync; a cancellation that must
//! unwind a strand parked on I/O that will never arrive; and the chaos
//! reactor sites (spurious wakes, injected `EINTR`) armed over a real
//! serving workload.

#[cfg(feature = "chaos")]
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once};
use std::task::{Poll, Waker};
use std::time::{Duration, Instant};

use nowa_runtime::{
    api, time, AsyncFd, CancelReason, Cancelled, Config, IdleConfig, Region, Runtime,
};

fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                default(info);
            }
        }));
    });
}

/// Park eagerly with a `max_park` so long that any lost wake (futex *or*
/// eventfd kick) blows the wall-clock bounds below deterministically.
fn eager_park() -> IdleConfig {
    IdleConfig {
        spin_sweeps: 0,
        yield_sweeps: 0,
        steal_retries: 2,
        wake_threshold: 1,
        max_park: Duration::from_secs(5),
    }
}

/// A future completed by an external thread through its stored waker.
#[derive(Default)]
struct Gate {
    fired: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl Gate {
    fn open(&self) {
        self.fired.store(true, Ordering::Release);
        if let Some(w) = self.waker.lock().unwrap().take() {
            w.wake();
        }
    }

    async fn wait(self: Arc<Self>) {
        std::future::poll_fn(|cx| {
            if self.fired.load(Ordering::Acquire) {
                return Poll::Ready(());
            }
            *self.waker.lock().unwrap() = Some(cx.waker().clone());
            // Re-check after publishing the waker: an `open` racing the
            // store above may have missed it.
            if self.fired.load(Ordering::Acquire) {
                return Poll::Ready(());
            }
            Poll::Pending
        })
        .await
    }
}

/// An external waker must reach a fully-parked runtime. With one worker
/// the parked worker *is* the claimed epoll poller — no futex sleeper
/// exists, so only the eventfd self-wake path can deliver the wake. With
/// more workers the same wake races the poller claim from either side.
/// `max_park` is 5 s; finishing in a fraction of that proves the kick
/// (not the timeout backstop) delivered it.
#[test]
fn external_waker_reaches_fully_parked_runtime() {
    for workers in [1usize, 4] {
        let rt = Runtime::new(Config::with_workers(workers).idle(eager_park())).unwrap();
        let gate = Arc::new(Gate::default());
        let opener = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                // Give every worker time to descend into its park (the
                // poller claim happens on the way down).
                std::thread::sleep(Duration::from_millis(60));
                gate.open();
            })
        };
        let t0 = Instant::now();
        rt.run({
            let gate = gate.clone();
            move || nowa_runtime::block_on(gate.wait())
        });
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "{workers} workers: the external wake missed the parked poller \
             and only the max_park timeout recovered it ({:?})",
            t0.elapsed()
        );
        opener.join().unwrap();
    }
}

/// A timer must fire while a sync is suspended: one worker is pinned in a
/// blocking child, the other suspends the stolen continuation at the sync
/// and descends idle — it must claim the reactor and serve the due timer
/// instead of napping through it.
#[test]
fn timer_fires_during_suspended_sync() {
    let rt = Runtime::new(Config::with_workers(2).idle(eager_park())).unwrap();
    let woke_after = rt.run(|| {
        let region = pin!(Region::cancellable());
        let region = region.as_ref();
        let t0 = Instant::now();
        let timer = region.spawn_async(async move {
            time::sleep(Duration::from_millis(20)).await;
            t0.elapsed()
        });
        // Pin the owner in uncancellable blocking code long past the
        // timer's deadline; the thief runs the trivial leg and suspends
        // at the sync with the child outstanding.
        api::join2(|| std::thread::sleep(Duration::from_millis(150)), || ());
        region.block_on(timer)
    });
    assert!(
        woke_after >= Duration::from_millis(20),
        "timer fired early: {woke_after:?}"
    );
    assert!(
        woke_after < Duration::from_millis(120),
        "timer was only served after the blocking child released its \
         worker — the idle worker napped through the due wheel slot \
         ({woke_after:?})"
    );
}

/// `timeout` must bound a future that never resolves, and must not clip
/// one that does.
#[test]
fn timeout_bounds_forever_pending_io() {
    let rt = Runtime::new(Config::with_workers(2).idle(eager_park())).unwrap();
    rt.run(|| {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let fd = AsyncFd::new(a).unwrap();
        let out = nowa_runtime::block_on(time::timeout(Duration::from_millis(30), async {
            fd.readable().await.ok();
        }));
        assert!(out.is_err(), "nothing was ever written: must elapse");
        let quick = nowa_runtime::block_on(time::timeout(Duration::from_secs(5), async { 6 * 7 }));
        assert_eq!(quick, Ok(42), "a ready future must not be clipped");
        drop(b);
    });
}

/// Cancelling a region whose strand is parked on I/O that never arrives:
/// the token latch must broadcast through the async waiters, the parked
/// `block_on` must observe its scope chain and unwind with the typed
/// payload — not hang until the fd produces bytes (it never will).
#[test]
fn cancel_unwinds_parked_io_future() {
    quiet_expected_panics();
    let rt = Runtime::new(Config::with_workers(2).idle(eager_park())).unwrap();
    let (tx, rx) = mpsc::channel();
    let canceller = std::thread::spawn(move || {
        let token: nowa_runtime::CancelToken = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert!(token.cancel(), "first cancel latches");
    });
    let t0 = Instant::now();
    let out = rt.run(move || {
        catch_unwind(AssertUnwindSafe(|| {
            let region = Region::cancellable();
            tx.send(region.cancel_token().expect("cancellable region"))
                .unwrap();
            let (a, _keep_alive) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            let fd = AsyncFd::new(a).unwrap();
            region.block_on(async {
                fd.readable().await.ok();
                unreachable!("nothing ever arrives on this socket");
            })
        }))
    });
    let payload = out.expect_err("cancelled I/O wait must unwind");
    let cancelled = payload
        .downcast_ref::<Cancelled>()
        .expect("typed Cancelled payload");
    assert_eq!(cancelled.reason, CancelReason::Token);
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "the cancel broadcast missed the parked strand; only a timeout \
         backstop recovered it ({:?})",
        t0.elapsed()
    );
    canceller.join().unwrap();
}

/// Serving workload used by the chaos replay test: one echo handler, one
/// external client pushing `count` frames and checking each echo.
#[cfg(feature = "chaos")]
fn echo_round_trip(rt: &Runtime, count: usize) {
    let (server, mut client) = UnixStream::pair().unwrap();
    server.set_nonblocking(true).unwrap();
    let client_thread = std::thread::spawn(move || {
        let mut buf = [0u8; 8];
        for i in 0..count as u64 {
            client.write_all(&i.to_le_bytes()).unwrap();
            client.read_exact(&mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), i * 3, "echo corrupted");
        }
        let _ = client.shutdown(std::net::Shutdown::Write);
    });
    let served = rt.run(move || {
        nowa_runtime::block_on(async move {
            let fd = AsyncFd::new(server).unwrap();
            let mut served = 0u64;
            let mut buf = [0u8; 8];
            'conn: loop {
                let mut got = 0;
                while got < buf.len() {
                    match (&mut fd.get_ref()).read(&mut buf[got..]) {
                        Ok(0) => break 'conn,
                        Ok(n) => got += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            fd.readable().await.unwrap();
                        }
                        Err(e) => panic!("server read: {e}"),
                    }
                }
                let v = u64::from_le_bytes(buf) * 3;
                let out = v.to_le_bytes();
                let mut sent = 0;
                while sent < out.len() {
                    match (&mut fd.get_ref()).write(&out[sent..]) {
                        Ok(n) => sent += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            fd.writable().await.unwrap();
                        }
                        Err(e) => panic!("server write: {e}"),
                    }
                }
                served += 1;
            }
            served
        })
    });
    assert_eq!(served, count as u64, "requests lost");
    client_thread.join().unwrap();
}

/// The reactor chaos sites armed hard over a real serving workload: 25%
/// of polls turn spurious (no `epoll_wait`, zero events) and 25% report
/// an injected `EINTR`. Readiness must still be delivered exactly once
/// per edge and timers must still fire — the workload completes with
/// correct results on every replay of the seed. (Poll visit *counts* are
/// wall-clock dependent, so — as with the idle sites — the gate here is
/// replayed correctness, not snapshot equality; see `ChaosConfig`.)
#[cfg(feature = "chaos")]
#[test]
fn serving_survives_reactor_chaos() {
    use nowa_runtime::ChaosConfig;

    for replay in 0..2 {
        let mut chaos = ChaosConfig::with_seed(0xEB0_11E7);
        chaos.reactor_spurious_wake = 16384; // 25% of polls
        chaos.reactor_eintr = 16384; // 25% of the rest
        let rt = Runtime::new(Config::with_workers(2).idle(eager_park()).chaos(chaos)).unwrap();
        echo_round_trip(&rt, 50);
        // Timers under the same injection: a bounded sleep still lands.
        let t0 = Instant::now();
        rt.run(|| nowa_runtime::block_on(time::sleep(Duration::from_millis(20))));
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "replay {replay}: sleep returned early"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "replay {replay}: chaos reactor faults stalled the timer wheel \
             ({:?})",
            t0.elapsed()
        );
        let snap = rt.chaos_stats().expect("chaos configured");
        assert!(
            snap.ticks.iter().sum::<u64>() > 0,
            "replay {replay}: chaos sites never visited"
        );
    }
}
