//! Loom models for the runtime's lock-free protocols.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nowa-runtime --test loom --release
//! ```
//!
//! Seven protocols are modeled, each against the *real* implementation (the
//! `crate::sync` shim swaps `core::sync::atomic` for loom's atomics under
//! `--cfg loom`, so the code under test is byte-for-byte the shipping
//! protocol logic):
//!
//! 1. the wait-free `I_max` sync counter (Fig. 6's hazardous race, §IV-B),
//!    driven through `flavor::pop_or_join` / `sync_restore` over a real
//!    Chase–Lev deque;
//! 2. the eventcount idle engine (`IdleState`) — the announce/validate/park
//!    vs. publish/wake handshake whose failure mode is a lost wakeup;
//! 3. the MPMC segment injector (`Injector`), with loom-shrunk segments so
//!    the boundary paths are in reach;
//! 4. the SNZI tree's ½-state arrival handshake;
//! 5. the abortable-suspension handoff of the cancellation layer — a
//!    suspended sync raced by its last joiner and a canceller latching
//!    the region's (all-Relaxed) cancel flag; the suspension must be
//!    retired exactly once and never resumed with torn context;
//! 6. the async wake-state handoff (§6h) — a parking `block_on` strand
//!    raced by concurrent wakers; the continuation must be resumed
//!    exactly once, a wake arriving before the park must not be lost,
//!    and whoever resumes must see the parker's staged context;
//! 7. the reactor poller claim (§6h) — at most one worker may sit in
//!    `epoll_wait`, and a release must publish the outgoing poller's
//!    duty-state writes to the next claimant.
//!
//! Each passing model is paired with a `*_canary` that re-implements the
//! protocol core with one ordering deliberately weakened and asserts (via
//! `#[should_panic]`) that the checker catches the resulting bug — proof
//! the models explore the interleavings they claim to.

#![cfg(loom)]

use loom::sync::Arc;
use nowa_runtime::flavor::{self, new_deque, Flavor, ProtocolKind, Rec};
use nowa_runtime::idle::IdleState;
use nowa_runtime::injector::Injector;
use nowa_runtime::reactor::PollerSlot;
use nowa_runtime::record::{AfterChild, Frame, SpawnRecord, I_MAX, SUSP_IDLE};
use nowa_runtime::task::{WakeClaim, WakeState};
use nowa_runtime::worker::RootTask;
use nowa_runtime::Snzi;
use nowa_runtime::SplitConfig;

// ---------------------------------------------------------------------------
// 1. The wait-free sync counter (Fig. 6 / §IV-B)
// ---------------------------------------------------------------------------

/// The paper's hazardous race (Fig. 6), end to end on the real protocol
/// functions over a real Chase–Lev deque. The owner spawns (push), runs
/// the child inline, then `pop_or_join`s; a thief races the steal. On a
/// successful steal the thief *becomes* the main flow and runs the
/// explicit sync (precheck, then restore `N_r = N_r' − (I_max − α)`),
/// while the owner's pop-miss path performs the wait-free child join
/// (`fetch_sub(1)`). The pop and the decrement are not atomic together —
/// the race the `I_max` arming turns benign — and exactly one side must
/// conclude "sync condition holds" and resume the continuation.
#[test]
fn sync_counter_exactly_one_resumes() {
    loom::model(|| {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Arc::new(Frame::new());
        let (dq, st) = new_deque(Flavor::NOWA, 4, SplitConfig::disabled());
        // The record outlives both threads' use: the thief is joined
        // before it drops.
        let rec = SpawnRecord::new(&*frame);
        assert!(flavor::push(&dq, Rec::from_ref(&rec)).offered);

        // Thief: on a successful steal (which does the α fork
        // bookkeeping), run the stolen continuation to the explicit sync.
        let thief = {
            let frame = frame.clone();
            loom::thread::spawn(move || {
                flavor::steal_from(p, &st)
                    .success()
                    .map(|_| flavor::sync_precheck(p, &frame) || flavor::sync_restore(p, &frame))
            })
        };

        // Owner: the child returned; reclaim the continuation or join.
        let after = flavor::pop_or_join(p, &dq, &frame);
        let thief_resumed = thief.join().unwrap();

        match (after, thief_resumed) {
            // Fast path: pop won (or the thief's CAS lost → Retry); the
            // owner continues, nobody touched the counter.
            (AfterChild::Continue, None) => {}
            // Stolen. The owner joined; either its decrement found the
            // restored counter at zero (owner resumes the suspended sync)
            // or the thief's precheck/restore found all children joined
            // (thief proceeds past the sync) — never both, never neither.
            (AfterChild::OutOfWork, Some(true)) => {}
            (AfterChild::ResumeSync, Some(false)) => {}
            other => panic!(
                "sync condition must be claimed exactly once, got \
                 (owner, thief) = {other:?}"
            ),
        }
    });
}

/// The same hazardous race with the split layer *enabled* (§6g): the spawn
/// lands in the owner-private segment, invisible to the thief, and the
/// wake path's promotion (`force_promote`, the scheduler's
/// `promote_on_wake` step) races the thief's sweep. Whether the thief's
/// hunger store lands before the push (hungry promotion) or the explicit
/// promotion moves the record, the continuation must still be claimed by
/// exactly one of {owner pop, thief steal} and the sync condition by
/// exactly one side — the `I_max` arming must not care which path made
/// the record public.
#[test]
fn sync_counter_exactly_one_resumes_with_promotion() {
    loom::model(|| {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Arc::new(Frame::new());
        let split = SplitConfig {
            enabled: true,
            promote_batch: 1024, // no boundary promotion: hunger or force only
            promote_on_wake: true,
        };
        let (dq, st) = new_deque(Flavor::NOWA, 4, split);
        // The record outlives both threads' use: the thief is joined
        // before it drops.
        let rec = SpawnRecord::new(&*frame);

        let thief = {
            let frame = frame.clone();
            loom::thread::spawn(move || {
                flavor::steal_from(p, &st)
                    .success()
                    .map(|_| flavor::sync_precheck(p, &frame) || flavor::sync_restore(p, &frame))
            })
        };

        // Owner: spawn (private unless the thief's hunger landed first),
        // then the wake path's promotion, then the child returns.
        let out = flavor::push(&dq, Rec::from_ref(&rec));
        assert!(out.offered);
        let moved = out.promoted + flavor::force_promote(&dq, 1);
        assert_eq!(moved, 1, "the lone record is promoted exactly once");
        let after = flavor::pop_or_join(p, &dq, &frame);
        let thief_resumed = thief.join().unwrap();

        match (after, thief_resumed) {
            (AfterChild::Continue, None) => {}
            (AfterChild::OutOfWork, Some(true)) => {}
            (AfterChild::ResumeSync, Some(false)) => {}
            other => panic!(
                "sync condition must be claimed exactly once, got \
                 (owner, thief) = {other:?}"
            ),
        }
    });
}

/// The suspension handoff (Eq. 5): continuation stolen, the main flow
/// reaches the sync and restores `N_r = N_r' − (I_max − α)` concurrently
/// with the child's join decrement. Exactly one of {restore, join} must
/// observe zero and resume the suspended sync continuation.
#[test]
fn sync_counter_suspension_handoff() {
    loom::model(|| {
        let frame = Arc::new(Frame::new());
        // Steal already happened: α = 1, one child outstanding.
        frame
            .join
            .alpha
            .store(1, loom::sync::atomic::Ordering::Relaxed);

        let joiner = {
            let frame = frame.clone();
            loom::thread::spawn(move || {
                // Child join: one wait-free RMW (flavor.rs pop-miss path).
                let post = frame
                    .join
                    .counter
                    .fetch_sub(1, loom::sync::atomic::Ordering::AcqRel)
                    - 1;
                post == 0 // ResumeSync
            })
        };

        // Main flow at the explicit sync.
        let main_resumes = if flavor::sync_precheck(ProtocolKind::NowaWaitFree, &frame) {
            true // no suspension needed
        } else {
            flavor::sync_restore(ProtocolKind::NowaWaitFree, &frame)
        };
        let child_resumes = joiner.join().unwrap();

        assert!(
            usize::from(main_resumes) + usize::from(child_resumes) == 1,
            "exactly one side must resume the sync continuation \
             (main={main_resumes}, child={child_resumes})"
        );
    });
}

/// Payload visibility through the join: the child's result store (Relaxed)
/// must be visible to whoever resumes the sync, via the AcqRel decrement /
/// Acquire precheck pairing. This is the reason those orderings exist.
#[test]
fn sync_counter_join_publishes_child_result() {
    loom::model(|| {
        let frame = Arc::new(Frame::new());
        let result = Arc::new(loom::sync::atomic::AtomicU64::new(0));
        frame
            .join
            .alpha
            .store(1, loom::sync::atomic::Ordering::Relaxed);

        let joiner = {
            let frame = frame.clone();
            let result = result.clone();
            loom::thread::spawn(move || {
                // The child writes its result, then joins.
                result.store(42, loom::sync::atomic::Ordering::Relaxed);
                let post = frame
                    .join
                    .counter
                    .fetch_sub(1, loom::sync::atomic::Ordering::AcqRel)
                    - 1;
                post == 0
            })
        };

        let main_resumes = flavor::sync_precheck(ProtocolKind::NowaWaitFree, &frame)
            || flavor::sync_restore(ProtocolKind::NowaWaitFree, &frame);
        let child_resumes = joiner.join().unwrap();
        if main_resumes {
            assert!(!child_resumes);
            assert_eq!(
                result.load(loom::sync::atomic::Ordering::Relaxed),
                42,
                "sync resumption must see the joined child's result"
            );
        }
    });
}

/// CANARY: the same handoff with the joiner's decrement weakened to
/// Relaxed. The result store can then still be in flight when the main
/// flow's precheck observes the counter — the resumed sync reads a stale
/// result. The checker must catch this.
#[test]
#[should_panic(expected = "stale child result")]
fn sync_counter_relaxed_join_canary_fails() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicI64, AtomicU64, Ordering};
        let counter = Arc::new(AtomicI64::new(I_MAX));
        let result = Arc::new(AtomicU64::new(0));
        let alpha = 1i64;

        let joiner = {
            let counter = counter.clone();
            let result = result.clone();
            loom::thread::spawn(move || {
                result.store(42, Ordering::Relaxed);
                // BUG: Relaxed instead of AcqRel.
                counter.fetch_sub(1, Ordering::Relaxed);
            })
        };

        // sync_precheck with the real Acquire load.
        if counter.load(Ordering::Acquire) == I_MAX - alpha {
            assert_eq!(result.load(Ordering::Relaxed), 42, "stale child result");
        }
        joiner.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// 2. The eventcount idle engine
// ---------------------------------------------------------------------------

/// The lost-wakeup window: a consumer announces, re-scans its work source,
/// and parks *untimed*; a producer publishes work and calls `wake_one`.
/// Whatever the interleaving, the consumer must either see the flag in its
/// re-scan or be woken out of the park — an unwoken untimed sleeper is
/// reported by the model as a deadlock, so mere termination of this model
/// proves the protocol closes the window.
#[test]
fn idle_no_lost_wakeup() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, Ordering};
        let idle = Arc::new(IdleState::new(2));
        let work = Arc::new(AtomicU32::new(0));

        let producer = {
            let idle = idle.clone();
            let work = work.clone();
            loom::thread::spawn(move || {
                work.store(1, Ordering::Release);
                // Producer-side discipline: wake whenever a sleeper may
                // exist. (The real spawn path gates on `sleepers() != 0`,
                // a Relaxed load whose one residual miss window is closed
                // by the bounded park timeout — modeled separately below.)
                idle.wake_one();
            })
        };

        // Consumer: announce → validate (re-scan) → park or cancel.
        let epoch = idle.announce(0);
        if work.load(Ordering::Acquire) != 0 {
            if idle.cancel(0) {
                // A wake already claimed us; pass it on (protocol contract).
                idle.wake_one();
            }
        } else {
            // u64::MAX = untimed park: if the producer's wake can be lost,
            // this blocks forever and the model reports a deadlock.
            let _ = idle.park(0, epoch, u64::MAX, false);
        }
        producer.join().unwrap();

        assert_eq!(
            work.load(Ordering::Acquire),
            1,
            "a departed consumer always sees the published work"
        );
        assert_eq!(idle.sleepers(), 0, "every announce departed exactly once");
    });
}

/// The residual hole of the Relaxed producer-side `sleepers()` gate, made
/// benign by the bounded park timeout: with a *timed* park the model may
/// let the consumer sleep through a missed wake, but it must then depart
/// via the timeout (at quiescence) and re-scan — no deadlock, no missed
/// work. This is the belt-and-braces path the `IdleConfig::max_park`
/// bound exists for.
#[test]
fn idle_timed_park_bounds_the_relaxed_gate_hole() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, Ordering};
        let idle = Arc::new(IdleState::new(2));
        let work = Arc::new(AtomicU32::new(0));

        let producer = {
            let idle = idle.clone();
            let work = work.clone();
            loom::thread::spawn(move || {
                work.store(1, Ordering::Release);
                // The real hot path: only wake when the Relaxed load sees
                // a sleeper. This CAN miss a concurrent announce.
                if idle.sleepers() != 0 {
                    idle.wake_one();
                }
            })
        };

        let epoch = idle.announce(0);
        if work.load(Ordering::Acquire) != 0 {
            if idle.cancel(0) {
                idle.wake_one();
            }
        } else {
            // Finite timeout: the model lets this time out at quiescence.
            let _ = idle.park(0, epoch, 1_000_000, false);
        }
        producer.join().unwrap();

        // After departing (woken, epoch-aborted, or timed out) the re-scan
        // sees the work.
        assert_eq!(work.load(Ordering::Acquire), 1);
        assert_eq!(idle.sleepers(), 0);
    });
}

/// Targeted-wake exclusivity: two untimed sleepers, a waker hammering
/// `wake_one`. Each claim pairs with exactly one announce (a double-claim
/// is impossible — the slot CAS `WAITING → NOTIFIED` consumes the claim),
/// every parked sleeper is eventually woken (deadlock-freedom is the
/// checked property: an unwoken untimed sleeper would be reported), and
/// the sleeper accounting returns to zero.
#[test]
fn idle_wake_one_claims_exactly_one() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, Ordering};
        let idle = Arc::new(IdleState::new(2));
        let departed: Arc<[AtomicU32; 2]> = Arc::new([AtomicU32::new(0), AtomicU32::new(0)]);

        let sleepers: Vec<_> = (0..2)
            .map(|i| {
                let idle = idle.clone();
                let departed = departed.clone();
                loom::thread::spawn(move || {
                    let epoch = idle.announce(i);
                    // A sleeper whose epoch validation fails (the waker's
                    // bump raced ahead) departs on its own; one parked in
                    // the futex must be claimed and woken.
                    let woken = idle.park(i, epoch, u64::MAX, false);
                    departed[i].store(1, Ordering::Release);
                    woken
                })
            })
            .collect();

        // Keep waking until both sleepers have genuinely departed. The
        // flags only ever go 0 → 1, so a stale read just loops once more.
        let mut claims = 0;
        loop {
            if idle.wake_one().is_some() {
                claims += 1;
            }
            if departed[0].load(Ordering::Acquire) == 1 && departed[1].load(Ordering::Acquire) == 1
            {
                break;
            }
            loom::thread::yield_now();
        }
        for s in sleepers {
            let _ = s.join().unwrap();
        }
        assert!(claims <= 2, "a wake claim pairs with exactly one announce");
        assert_eq!(idle.sleepers(), 0, "every announce departed exactly once");
    });
}

/// CANARY: the eventcount with the consumer's validation re-scan removed —
/// announce then park blindly. The producer's flag store + conditional
/// wake can then both miss (store ordered after the consumer's last look,
/// Relaxed sleeper gate reads 0), leaving the consumer asleep forever:
/// the model must report the deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn idle_no_validation_canary_deadlocks() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, Ordering};
        let idle = Arc::new(IdleState::new(2));
        let work = Arc::new(AtomicU32::new(0));

        let producer = {
            let idle = idle.clone();
            let work = work.clone();
            loom::thread::spawn(move || {
                work.store(1, Ordering::Release);
                if idle.sleepers() != 0 {
                    idle.wake_one();
                }
            })
        };

        // BUG: no re-scan between announce and park.
        let epoch = idle.announce(0);
        let _ = idle.park(0, epoch, u64::MAX, false);
        producer.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// 3. The MPMC segment injector
// ---------------------------------------------------------------------------

fn counting_task(counter: &Arc<loom::sync::atomic::AtomicU64>, value: u64) -> RootTask {
    let counter = counter.clone();
    RootTask {
        run: Box::new(move || {
            counter.fetch_add(value, loom::sync::atomic::Ordering::Relaxed);
        }),
    }
}

/// Two producers race slot claims (including across the loom-shrunk
/// segment boundary: SEG_CAP = 2, so three pushes exercise `advance_enq`)
/// while a consumer drains: every task transferred exactly once, the
/// publish/claim handshake never yields a stale closure.
#[test]
fn injector_mpmc_exactly_once() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU64, Ordering};
        let q = Arc::new(Injector::new());
        let sum = Arc::new(AtomicU64::new(0));

        let p1 = {
            let q = q.clone();
            let sum = sum.clone();
            loom::thread::spawn(move || {
                assert!(q.push(counting_task(&sum, 1)));
                assert!(q.push(counting_task(&sum, 2)));
            })
        };
        let p2 = {
            let q = q.clone();
            let sum = sum.clone();
            loom::thread::spawn(move || {
                assert!(q.push(counting_task(&sum, 4)));
            })
        };
        p1.join().unwrap();
        p2.join().unwrap();

        // Drain (single consumer thread — the interesting races are the
        // producer slot claims and the publish window spin in pop).
        let mut seen = 0;
        while let Some(t) = q.pop() {
            (t.run)();
            seen += 1;
        }
        assert_eq!(seen, 3, "every push popped exactly once");
        assert_eq!(sum.load(Ordering::Relaxed), 7, "payloads intact");
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    });
}

/// Producer/consumer race on the publish window: the consumer can claim a
/// slot index before the producer's pointer store lands and must spin it
/// out, never return a null-derived task or drop one.
#[test]
fn injector_concurrent_push_pop() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU64, Ordering};
        let q = Arc::new(Injector::new());
        let sum = Arc::new(AtomicU64::new(0));

        let producer = {
            let q = q.clone();
            let sum = sum.clone();
            loom::thread::spawn(move || {
                assert!(q.push(counting_task(&sum, 1)));
            })
        };

        // The consumer polls concurrently; `None` is legitimate (the push
        // may not have happened yet), a popped task must be the real one.
        if let Some(t) = q.pop() {
            (t.run)();
            assert_eq!(sum.load(Ordering::Relaxed), 1, "complete payload");
        }
        producer.join().unwrap();

        // Post-join drain: whatever the poll missed is still there.
        while let Some(t) = q.pop() {
            (t.run)();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 1, "exactly-once transfer");
    });
}

/// CANARY: the injector's slot handshake with the producer's publishing
/// store weakened to Relaxed. The consumer's Acquire spin then no longer
/// orders the closure's contents, and the model's explored interleavings
/// include one where the claimed payload is stale.
#[test]
#[should_panic(expected = "torn payload")]
fn injector_relaxed_publish_canary_fails() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
        // Modeled mini-slot: payload word + pointer-published cell, the
        // injector's push/pop handshake reduced to its essence.
        let payload = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(AtomicPtr::new(core::ptr::null_mut::<u64>()));

        let producer = {
            let payload = payload.clone();
            let slot = slot.clone();
            loom::thread::spawn(move || {
                payload.store(42, Ordering::Relaxed);
                // BUG: Relaxed instead of Release — the payload store can
                // be reordered after the publication.
                slot.store(Box::into_raw(Box::new(7u64)), Ordering::Relaxed);
            })
        };

        let p = slot.load(Ordering::Acquire);
        if !p.is_null() {
            assert_eq!(payload.load(Ordering::Relaxed), 42, "torn payload");
        }
        producer.join().unwrap();
        // Post-join the publication is ordered; reclaim it.
        let p = slot.load(Ordering::Acquire);
        drop(unsafe { Box::from_raw(p) });
    });
}

// ---------------------------------------------------------------------------
// 4. The SNZI tree
// ---------------------------------------------------------------------------

/// Concurrent first-arrivals through distinct leaves: the ½-state
/// handshake must leave the root indicator set while any surplus is held
/// and clear once balanced. `Snzi::new(2)` gives a 3-node tree (two
/// leaves, one internal) over the root counter — deep enough to exercise
/// `parent_arrive` propagation and the undo loop.
#[test]
fn snzi_concurrent_arrivals_exact_indicator() {
    loom::model(|| {
        let s = Arc::new(Snzi::new(2));
        let other = {
            let s = s.clone();
            loom::thread::spawn(move || {
                s.arrive(1);
                assert!(s.query(), "own surplus outstanding");
                s.depart(1);
            })
        };
        s.arrive(0);
        assert!(s.query(), "own surplus outstanding");
        s.depart(0);
        other.join().unwrap();
        assert!(!s.query(), "balanced traffic ends at zero");
    });
}

/// Same-leaf contention: two threads arriving at one leaf race the ½→1
/// promotion; the helper path and the undo loop must keep the parent's
/// count exact.
#[test]
fn snzi_same_leaf_half_state_race() {
    loom::model(|| {
        let s = Arc::new(Snzi::new(2));
        let other = {
            let s = s.clone();
            loom::thread::spawn(move || {
                s.arrive(0);
                s.depart(0);
            })
        };
        s.arrive(0);
        assert!(s.query());
        s.depart(0);
        other.join().unwrap();
        assert!(!s.query());
    });
}

/// Cross-thread handoff: an arrival on one thread departed by another
/// (after a release/acquire handshake) — the query must stay exact.
#[test]
fn snzi_handoff_preserves_indicator() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, Ordering};
        let s = Arc::new(Snzi::new(2));
        let ready = Arc::new(AtomicU32::new(0));

        let departer = {
            let s = s.clone();
            let ready = ready.clone();
            loom::thread::spawn(move || {
                while ready.load(Ordering::Acquire) == 0 {
                    loom::thread::yield_now();
                }
                assert!(s.query(), "handed-off surplus is visible");
                s.depart(0);
                assert!(!s.query());
            })
        };
        s.arrive(0);
        ready.store(1, Ordering::Release);
        departer.join().unwrap();
    });
}

/// CANARY: a bare (non-SNZI) root counter with the arrival's increment
/// weakened to Relaxed: the indicator can be observed set while the
/// arriving strand's payload write is still unordered — the exact
/// visibility bug the root counter's AcqRel traffic prevents.
#[test]
#[should_panic(expected = "surplus payload lost")]
fn snzi_relaxed_arrive_canary_fails() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicI64, AtomicU64, Ordering};
        let root = Arc::new(AtomicI64::new(0));
        let payload = Arc::new(AtomicU64::new(0));

        let arriver = {
            let root = root.clone();
            let payload = payload.clone();
            loom::thread::spawn(move || {
                payload.store(1, Ordering::Relaxed);
                // BUG: Relaxed arrive — the payload write is not released
                // to a querier that acquires the indicator.
                root.fetch_add(1, Ordering::Relaxed);
            })
        };

        if root.load(Ordering::Acquire) != 0 {
            assert_eq!(payload.load(Ordering::Relaxed), 1, "surplus payload lost");
        }
        arriver.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// 5. The abortable-suspension handoff (cancellation layer)
// ---------------------------------------------------------------------------

/// A suspended sync raced by its last joiner and a canceller. The main
/// flow publishes its pre-suspension context, then suspends via the real
/// `sync_restore`; the last child's wait-free decrement races it; a third
/// thread latches the region's cancel flag exactly as `CancelCell` does
/// (an all-Relaxed monotonic latch — the flag publishes nothing but
/// itself; effects ride the join counter's AcqRel chain). Checked:
///
/// * the suspension is retired **exactly once** — either by the restore's
///   own zero-crossing or by the joiner's (`retire_suspension`'s AcqRel
///   swap makes the claim exclusive), never both, never neither;
/// * whichever side resumes sees the suspender's context writes — an
///   abort wakes the continuation to *unwind*, which still walks frames
///   the pre-suspension writes describe, so torn context is unsafe even
///   on the cancellation path;
/// * no party ever blocks: cancellation never adds a wait to the
///   wait-free join (the canceller returns immediately, the joiner's
///   classification is one Relaxed load).
#[test]
fn cancel_abort_retires_suspension_exactly_once() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
        let p = ProtocolKind::NowaWaitFree;
        let frame = Arc::new(Frame::new());
        // Continuation already stolen: α = 1, one child outstanding.
        frame.join.alpha.store(1, Ordering::Relaxed);
        // The suspender's pre-suspension writes (sync_ctx / stack analog).
        let ctx = Arc::new(AtomicU64::new(0));
        // The region's cancel flag, latched as `CancelCell::cancel` does.
        let cancel = Arc::new(AtomicU32::new(0));

        let canceller = {
            let cancel = cancel.clone();
            loom::thread::spawn(move || {
                let _ = cancel.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
            })
        };
        let joiner = {
            let frame = frame.clone();
            let ctx = ctx.clone();
            let cancel = cancel.clone();
            loom::thread::spawn(move || {
                // Last child join: the wait-free decrement (flavor.rs
                // pop-miss path), then the abort classification the
                // scheduler's `resume_sync` performs.
                let post = frame.join.counter.fetch_sub(1, Ordering::AcqRel) - 1;
                if post == 0 {
                    assert!(
                        flavor::retire_suspension(&frame),
                        "zero-crossing found no parked suspension"
                    );
                    assert_eq!(
                        ctx.load(Ordering::Relaxed),
                        42,
                        "resumed a suspension with torn context"
                    );
                    // Abort vs. normal resume: a classification only —
                    // both paths resume the continuation; neither blocks.
                    Some(cancel.load(Ordering::Relaxed) != 0)
                } else {
                    None
                }
            })
        };

        // Main flow: context writes, then the sync (precheck or suspend).
        ctx.store(42, Ordering::Relaxed);
        let main_resumes = flavor::sync_precheck(p, &frame) || flavor::sync_restore(p, &frame);
        let joiner_resumed = joiner.join().unwrap();
        canceller.join().unwrap();

        assert_eq!(
            usize::from(main_resumes) + usize::from(joiner_resumed.is_some()),
            1,
            "the suspension must be claimed exactly once \
             (main={main_resumes}, joiner={joiner_resumed:?})"
        );
        assert_eq!(
            frame.join.susp.load(Ordering::Relaxed),
            SUSP_IDLE,
            "every claim must return the suspension machine to idle"
        );
    });
}

/// CANARY: the handoff reduced to its essential publication chain, with
/// that chain weakened. The shipping code is belt-and-braces — the
/// suspender's context is released both by `sync_restore`'s Release store
/// of the suspension flag *and* by the counter's AcqRel traffic — so this
/// model strips the counter down to a pure Relaxed count (no release) and
/// weakens the suspension publication to Relaxed: the retirer's AcqRel
/// swap then orders nothing, and the model finds an interleaving where a
/// cancelled suspension is woken to unwind over torn context.
#[test]
#[should_panic(expected = "torn context")]
fn cancel_abort_relaxed_publish_canary_fails() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
        let counter = Arc::new(AtomicI64::new(I_MAX));
        let susp = Arc::new(AtomicU32::new(0));
        let ctx = Arc::new(AtomicU64::new(0));
        let alpha = 1i64;

        let suspender = {
            let counter = counter.clone();
            let susp = susp.clone();
            let ctx = ctx.clone();
            loom::thread::spawn(move || {
                ctx.store(42, Ordering::Relaxed);
                // BUG: Relaxed instead of Release — the context writes are
                // not ordered before the suspension becomes claimable.
                susp.store(1, Ordering::Relaxed);
                // Reduced model: the restore is a bare count (the real
                // one's AcqRel is the redundancy being stripped).
                counter.fetch_sub(I_MAX - alpha, Ordering::Relaxed);
            })
        };

        // Joiner: decrement, retire on the zero-crossing, resume.
        let post = counter.fetch_sub(1, Ordering::Relaxed) - 1;
        if post == 0 && susp.swap(0, Ordering::AcqRel) == 1 {
            assert_eq!(ctx.load(Ordering::Relaxed), 42, "torn context");
        }
        suspender.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// 6. The async wake-state handoff (§6h)
// ---------------------------------------------------------------------------

/// Exactly-once resume under waker races: one parking strand, two
/// concurrent wakers (an I/O dispatch and a timer fire, say). Whatever
/// the interleaving, the continuation is resumed exactly once — either a
/// waker `Claimed` the parked cell (and the worker popping the ready
/// queue performs `resume_begin`), or the wake landed first as a flag and
/// the parker's failed `park_publish` self-resumes. Never both, never
/// neither, and the resumer always sees the parker's staged context
/// (the `ctx`/`stack` analog) through the publish/claim pairing.
#[test]
fn wake_state_exactly_once_resume() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
        let ws = Arc::new(WakeState::new());
        // The parker's pre-park writes (the captured continuation).
        let ctx = Arc::new(AtomicU64::new(0));
        // Each waker publishes a readiness event before its wake — the
        // thing a self-resuming parker's re-poll must observe.
        let ready_events = Arc::new(AtomicU32::new(0));

        let wakers: Vec<_> = (0..2)
            .map(|_| {
                let ws = ws.clone();
                let ctx = ctx.clone();
                let ready_events = ready_events.clone();
                loom::thread::spawn(move || {
                    ready_events.fetch_add(1, Ordering::Relaxed);
                    match ws.wake_claim() {
                        WakeClaim::Claimed => {
                            // This thread now owns the continuation: the
                            // real waker pushes a ReadyCell; the popping
                            // worker runs `resume_begin` and walks the
                            // published context. Model both steps here.
                            assert_eq!(
                                ctx.load(Ordering::Relaxed),
                                42,
                                "claimed a continuation with torn context"
                            );
                            ws.resume_begin();
                            true
                        }
                        WakeClaim::Flagged | WakeClaim::Stale => false,
                    }
                })
            })
            .collect();

        // Parker: stage the continuation, then publish.
        ctx.store(42, Ordering::Relaxed);
        let self_resumed = if ws.park_publish() {
            false // parked; ownership is with the next claimer
        } else {
            // A wake raced in first: the failed CAS's Acquire edge must
            // order the flagging waker's readiness event before our
            // re-poll.
            assert!(
                ready_events.load(Ordering::Relaxed) >= 1,
                "self-resume re-poll missed the waker's readiness"
            );
            ws.resume_begin();
            true
        };

        let claims = wakers
            .into_iter()
            .map(|w| w.join().unwrap())
            .filter(|&claimed| claimed)
            .count();
        assert_eq!(
            usize::from(self_resumed) + claims,
            1,
            "the continuation must be resumed exactly once \
             (self={self_resumed}, claims={claims})"
        );
    });
}

/// The lost-wake window on the park edge: a single waker firing entirely
/// before, entirely after, or interleaved with the park. The wake must
/// never vanish — exactly one of {the parker's `park_publish` fails (it
/// keeps ownership and self-resumes), the waker `Claimed` the parked
/// cell} holds, and a `Claimed` waker sees the staged context.
#[test]
fn wake_state_wake_before_park_not_lost() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
        let ws = Arc::new(WakeState::new());
        let ctx = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicU32::new(0));

        let waker = {
            let ws = ws.clone();
            let ctx = ctx.clone();
            let ready = ready.clone();
            loom::thread::spawn(move || {
                ready.store(1, Ordering::Relaxed);
                let claim = ws.wake_claim();
                if claim == WakeClaim::Claimed {
                    assert_eq!(
                        ctx.load(Ordering::Relaxed),
                        42,
                        "claimed a continuation with torn context"
                    );
                    ws.resume_begin();
                }
                claim
            })
        };

        ctx.store(42, Ordering::Relaxed);
        let parked = ws.park_publish();
        if !parked {
            assert_eq!(
                ready.load(Ordering::Relaxed),
                1,
                "self-resume re-poll missed the waker's readiness"
            );
            ws.resume_begin();
        }
        let claim = waker.join().unwrap();

        // One wake, one park attempt: a `Stale` outcome is impossible and
        // the wake is consumed by exactly one side.
        assert_ne!(claim, WakeClaim::Stale, "the only wake turned stale");
        assert_eq!(
            usize::from(!parked) + usize::from(claim == WakeClaim::Claimed),
            1,
            "the wake must be consumed exactly once \
             (parked={parked}, claim={claim:?})"
        );
    });
}

/// CANARY: the handoff with the parker's publish CAS weakened to Relaxed.
/// The staged context is then unordered against the state transition, and
/// a claiming waker can resume a continuation whose `ctx`/`stack` writes
/// are still in flight. The checker must find that interleaving.
#[test]
#[should_panic(expected = "torn continuation")]
fn wake_state_relaxed_publish_canary_fails() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
        const RUNNING: u32 = 0;
        const PARKED: u32 = 1;
        const NOTIFIED: u32 = 2;
        let state = Arc::new(AtomicU32::new(RUNNING));
        let ctx = Arc::new(AtomicU64::new(0));

        let parker = {
            let state = state.clone();
            let ctx = ctx.clone();
            loom::thread::spawn(move || {
                ctx.store(42, Ordering::Relaxed);
                // BUG: Relaxed instead of Release — the staged context is
                // not published with the PARKED transition.
                let _ =
                    state.compare_exchange(RUNNING, PARKED, Ordering::Relaxed, Ordering::Relaxed);
            })
        };

        // Waker: the real claim CAS (AcqRel), as in `wake_claim`.
        if state
            .compare_exchange(PARKED, NOTIFIED, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            assert_eq!(ctx.load(Ordering::Relaxed), 42, "torn continuation");
        }
        parker.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// 7. The reactor poller claim (§6h)
// ---------------------------------------------------------------------------

/// Mutual exclusion of the poller slot: two workers descend idle and race
/// the claim. At most one may sit in `epoll_wait` at a time (two
/// concurrent pollers would steal each other's events), and `is_poller`
/// must agree with the holder while the slot is held. Sequential
/// claim→release→claim handoff is legal; concurrent holding is not.
#[test]
fn reactor_poller_claim_is_exclusive() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, Ordering};
        let slot = Arc::new(PollerSlot::new());
        // Detector: set while a claimant believes it is the sole poller.
        // The Relaxed flag traffic is ordered by the claim/release SeqCst
        // edges themselves — which is exactly the property under test.
        let in_epoll = Arc::new(AtomicU32::new(0));

        let workers: Vec<_> = (0..2)
            .map(|i| {
                let slot = slot.clone();
                let in_epoll = in_epoll.clone();
                loom::thread::spawn(move || {
                    if slot.try_claim(i) {
                        assert!(slot.is_poller(i), "claimant not visible as poller");
                        assert!(!slot.is_poller(1 - i), "two workers read as poller");
                        assert_eq!(
                            in_epoll.swap(1, Ordering::Relaxed),
                            0,
                            "two pollers inside epoll_wait"
                        );
                        in_epoll.store(0, Ordering::Relaxed);
                        slot.release();
                        true
                    } else {
                        false
                    }
                })
            })
            .collect();

        let wins = workers
            .into_iter()
            .map(|w| w.join().unwrap())
            .filter(|&won| won)
            .count();
        assert!(wins >= 1, "an uncontended-or-raced CAS on 0 must admit one");
        assert!(!slot.claimed(), "every claim released exactly once");
    });
}

/// Claim handoff publishes duty state: the outgoing poller's writes
/// (timer-wheel advances, dispatched readiness) must be visible to the
/// next claimant — the release store is what the successful claim CAS
/// reads, forming the ordering edge.
#[test]
fn reactor_poller_release_publishes_duty_state() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU64, Ordering};
        let slot = Arc::new(PollerSlot::new());
        let duty = Arc::new(AtomicU64::new(0));

        // Outgoing poller: claimed before the successor exists.
        assert!(slot.try_claim(0));
        let successor = {
            let slot = slot.clone();
            let duty = duty.clone();
            loom::thread::spawn(move || {
                // Spin for the slot as park_worker's idle descent would
                // (the model yield bounds the spin at quiescence).
                while !slot.try_claim(1) {
                    loom::thread::yield_now();
                }
                assert_eq!(
                    duty.load(Ordering::Relaxed),
                    42,
                    "next poller missed the outgoing poller's duty state"
                );
                slot.release();
            })
        };
        duty.store(42, Ordering::Relaxed);
        slot.release();
        successor.join().unwrap();
        assert!(!slot.claimed());
    });
}

/// CANARY: the same handoff with the release weakened to Relaxed. The
/// duty-state writes are then unordered against the slot becoming free,
/// and the next claimant can observe stale duty state — the exact bug the
/// SeqCst release prevents.
#[test]
#[should_panic(expected = "stale poller duty state")]
fn reactor_poller_relaxed_release_canary_fails() {
    loom::model(|| {
        use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
        let slot = Arc::new(AtomicU32::new(0));
        let duty = Arc::new(AtomicU64::new(0));

        assert!(slot
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok());
        let successor = {
            let slot = slot.clone();
            let duty = duty.clone();
            loom::thread::spawn(move || {
                while slot
                    .compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    loom::thread::yield_now();
                }
                assert_eq!(duty.load(Ordering::Relaxed), 42, "stale poller duty state");
            })
        };
        duty.store(42, Ordering::Relaxed);
        // BUG: Relaxed instead of the SeqCst (Release-or-stronger) store —
        // the duty write is not published with the slot.
        slot.store(0, Ordering::Relaxed);
        successor.join().unwrap();
    });
}
