//! Structured cancellation: scopes, tokens, reasons, and deadlines.
//!
//! A cancellation *scope* is one atomic flag (`CancelCell`) plus a link
//! to the enclosing scope. Every frame records the innermost scope
//! governing it (`FrameCore::scope`), so a cooperative checkpoint is one
//! relaxed load of the innermost flag on the hot path; the parent chain is
//! only walked while that flag still reads live, and a hit on an ancestor
//! is *path-shortened* into the innermost cell so every later checkpoint
//! in the subtree hits on the first load.
//!
//! The flag is a monotonic latch and deliberately carries no ordering
//! obligations: no data is published *through* it. Cancellation's effects
//! (child unwinds, join-counter retirement, panic payloads) all
//! synchronize through the wait-free sync counter's AcqRel algebra and the
//! frame panic mutex, exactly as ordinary completion does. DESIGN.md §6f
//! spells the argument out; §7b carries the audit rows.
//!
//! Cancellation is *cooperative*: a checkpoint that observes a cancelled
//! scope unwinds its strand with the typed [`Cancelled`] payload, which
//! the ordinary panic-propagation machinery carries to the region root.
//! Nothing is ever torn down preemptively — a suspended continuation
//! parked at `sync` is resumed ("aborted") by its last joining child's
//! counter zero-crossing, never unwound in place (its children hold
//! pointers into its stack).

use crate::sync::{AtomicU32, Ordering};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Why a scope was cancelled. The first cause wins and sticks; later
/// cancellations of the same scope are idempotent no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called on the region's token.
    Token = 1,
    /// The region's [`Region::with_deadline`](crate::api::Region::with_deadline)
    /// deadline expired.
    Deadline = 2,
    /// A sibling strand in the region panicked; the region cancels the
    /// rest of its tree so the panic surfaces promptly.
    SiblingPanic = 3,
    /// The runtime is shutting down
    /// ([`Runtime::shutdown`](crate::Runtime::shutdown)).
    Shutdown = 4,
}

/// Flag value meaning "live, not cancelled".
pub(crate) const SCOPE_LIVE: u32 = 0;

impl CancelReason {
    /// Reason from its flag encoding.
    pub(crate) fn from_flag(v: u32) -> Option<CancelReason> {
        match v {
            1 => Some(CancelReason::Token),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::SiblingPanic),
            4 => Some(CancelReason::Shutdown),
            _ => None,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CancelReason::Token => "token",
            CancelReason::Deadline => "deadline",
            CancelReason::SiblingPanic => "sibling-panic",
            CancelReason::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed panic payload a cancelled strand unwinds with.
///
/// Checkpoints raise it via `panic_any`; the runtime's ordinary
/// panic-propagation machinery carries it to the cancelled region's root,
/// where [`Region::sync`](crate::api::Region::sync) / `join*` rethrow it.
/// Catch it with `downcast_ref::<Cancelled>()` to distinguish cooperative
/// cancellation from a real fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// The first cause recorded on the governing scope.
    pub reason: CancelReason,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cancelled ({})", self.reason)
    }
}

/// One cancellation flag plus the link to the enclosing scope.
///
/// `parent` is fixed at creation and never mutated; only `flag` is shared
/// state. The runtime root cell (owned by `Shared`) has a null parent and
/// terminates every chain, so unscoped frames see a chain of depth one.
pub(crate) struct CancelCell {
    flag: AtomicU32,
    parent: *const CancelCell,
}

// SAFETY: `flag` is an atomic and `parent` is immutable after
// construction. The raw parent pointer is only dereferenced by
// `cancelled_chain`, whose safety contract requires the whole chain to be
// alive — guaranteed structurally because checkpoints only run inside the
// dynamic extent of every enclosing region (see the type-level docs).
unsafe impl Send for CancelCell {}
// SAFETY: as for `Send`.
unsafe impl Sync for CancelCell {}

impl CancelCell {
    /// A live cell chained under `parent` (null for the runtime root).
    pub(crate) fn new(parent: *const CancelCell) -> CancelCell {
        CancelCell {
            flag: AtomicU32::new(SCOPE_LIVE),
            parent,
        }
    }

    /// Latches `reason` onto the cell. First cause wins; a second call is
    /// an idempotent no-op. Returns whether this call did the latching.
    pub(crate) fn cancel(&self, reason: CancelReason) -> bool {
        // Relaxed: the flag is a monotonic latch publishing nothing but
        // itself; cancellation's effects synchronize through the join
        // counter and panic mutex (module docs).
        self.flag
            .compare_exchange(
                SCOPE_LIVE,
                reason as u32,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// This cell's own state: one relaxed load, no chain walk.
    // lint: hot-path
    #[inline(always)]
    pub(crate) fn local(&self) -> Option<CancelReason> {
        CancelReason::from_flag(self.flag.load(Ordering::Relaxed))
    }

    /// The enclosing cell this one is chained under (null for the root or
    /// a standalone scope created outside a runtime).
    pub(crate) fn parent(&self) -> *const CancelCell {
        self.parent
    }
}

/// Walks the scope chain from `cell` to the root, returning the innermost
/// recorded reason. A hit on an ancestor is path-shortened into `cell` so
/// the next checkpoint in this subtree hits on its first load.
///
/// # Safety
///
/// Every cell on the chain must be alive. This holds whenever `cell` is a
/// frame's governing scope and the caller is executing inside that frame:
/// each ancestor cell is owned by an enclosing region (or by the runtime's
/// `Shared`) whose dynamic extent contains the caller.
pub(crate) unsafe fn cancelled_chain(cell: *const CancelCell) -> Option<CancelReason> {
    let mut cur = cell;
    while !cur.is_null() {
        // SAFETY: alive per the function contract.
        let c = unsafe { &*cur };
        if let Some(reason) = c.local() {
            if cur != cell {
                // SAFETY: `cell` is the head of the same live chain.
                unsafe { &*cell }.cancel(reason);
            }
            return Some(reason);
        }
        cur = c.parent;
    }
    None
}

/// Cancels the innermost *region* scope governing a frame: a no-op when
/// `scope` is null or the runtime root itself (unscoped code must not
/// cancel the whole runtime). Used by panic→cancel-siblings and the
/// chaos force-cancel sites.
///
/// # Safety
///
/// As for [`cancelled_chain`]: `scope` must be a live frame's governing
/// scope (or null).
pub(crate) unsafe fn cancel_enclosing_region(
    scope: *const CancelCell,
    shared: &crate::worker::Shared,
    reason: CancelReason,
) {
    let root: *const CancelCell = &shared.cancel_root;
    if scope.is_null() || core::ptr::eq(scope, root) {
        return;
    }
    // SAFETY: live per the function contract.
    if unsafe { (*scope).cancel(reason) } {
        // Strands of this region parked in `block_on` have no checkpoint
        // to trip; broadcast so they re-check their scope chains. (Cells
        // of unrelated scopes wake spuriously, re-poll, and re-park.)
        shared.async_waiters.wake_all();
        shared.reactor.kick_if_claimed();
    }
}

/// Raises the typed [`Cancelled`] unwind. Out of line: checkpoints stay
/// one load + one predictable branch on the never-cancelled path.
#[cold]
#[inline(never)]
pub(crate) fn raise(reason: CancelReason) -> ! {
    std::panic::panic_any(Cancelled { reason })
}

/// The Arc'd owner of a cancellable region's cell. Regions hold the Arc;
/// tokens clone it; the deadline queue holds a Weak.
pub(crate) struct ScopeHandle {
    pub(crate) cell: CancelCell,
}

/// A clonable, sendable handle that cancels one region.
///
/// Obtained from [`Region::cancel_token`](crate::api::Region::cancel_token).
/// Cancelling is idempotent and purely cooperative: running strands unwind
/// at their next checkpoint with a [`Cancelled`] payload, not-yet-started
/// children are skipped, and a continuation suspended at `sync` is aborted
/// by its last joining child without blocking any worker.
#[derive(Clone)]
pub struct CancelToken {
    pub(crate) scope: Arc<ScopeHandle>,
    /// The owning runtime, used to broadcast to parked async strands on
    /// latch. Weak: a token must not keep a dropped runtime's shared
    /// state alive, and cancelling after shutdown degrades to the plain
    /// flag store.
    pub(crate) shared: Weak<crate::worker::Shared>,
}

impl CancelToken {
    /// Cancels the region ([`CancelReason::Token`]). Returns `true` if
    /// this call latched the cancellation, `false` if the region was
    /// already cancelled (double-cancel is an idempotent no-op).
    pub fn cancel(&self) -> bool {
        let latched = self.scope.cell.cancel(CancelReason::Token);
        if latched {
            if let Some(shared) = self.shared.upgrade() {
                // Strands of this region parked in `block_on` have no
                // checkpoint to trip; wake them so they re-check their
                // scope chains (see `cancel_enclosing_region`).
                shared.async_waiters.wake_all();
                shared.reactor.kick_if_claimed();
            }
        }
        latched
    }

    /// Whether the region's own scope has been cancelled (any cause).
    pub fn is_cancelled(&self) -> bool {
        self.scope.cell.local().is_some()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Pending region deadlines, fired by the watchdog thread.
///
/// A `Weak` per armed region: a region that completes before its deadline
/// drops the strong count and the entry prunes itself on the next sweep,
/// so completed regions cost nothing and are never touched again.
#[derive(Default)]
pub(crate) struct DeadlineQueue {
    entries: parking_lot::Mutex<Vec<(Weak<ScopeHandle>, Instant)>>,
    /// Signalled on arm and on shutdown so the watchdog re-plans its nap.
    pub(crate) cv: parking_lot::Condvar,
}

impl DeadlineQueue {
    /// Arms `scope` to be cancelled at `at`.
    pub(crate) fn arm(&self, scope: &Arc<ScopeHandle>, at: Instant) {
        self.entries.lock().push((Arc::downgrade(scope), at));
        self.cv.notify_one();
    }

    /// Fires every expired deadline, prunes dead entries, and returns the
    /// next pending expiry (if any) plus how many scopes were latched —
    /// a non-zero count tells the watchdog to broadcast to parked async
    /// strands, which have no checkpoint to trip on their own. Called from
    /// the watchdog loop.
    pub(crate) fn fire_due(&self, now: Instant) -> (Option<Instant>, usize) {
        let mut entries = self.entries.lock();
        let mut next: Option<Instant> = None;
        let mut fired = 0usize;
        entries.retain(|(weak, at)| {
            let Some(scope) = weak.upgrade() else {
                return false;
            };
            if *at <= now {
                scope.cell.cancel(CancelReason::Deadline);
                fired += 1;
                return false;
            }
            next = Some(next.map_or(*at, |n| n.min(*at)));
            true
        });
        (next, fired)
    }

    /// Parks the watchdog on the queue's condvar for `dur`; wakes early
    /// when a new deadline is armed or shutdown notifies.
    pub(crate) fn wait(&self, dur: std::time::Duration) {
        let mut entries = self.entries.lock();
        let _ = self.cv.wait_for(&mut entries, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins_and_sticks() {
        let cell = CancelCell::new(std::ptr::null());
        assert_eq!(cell.local(), None);
        assert!(cell.cancel(CancelReason::Deadline));
        assert!(
            !cell.cancel(CancelReason::Token),
            "double-cancel is a no-op"
        );
        assert_eq!(cell.local(), Some(CancelReason::Deadline));
    }

    #[test]
    fn chain_walk_path_shortens() {
        let root = CancelCell::new(std::ptr::null());
        let mid = CancelCell::new(&root);
        let leaf = CancelCell::new(&mid);
        // SAFETY: all three cells are alive on this stack frame.
        assert_eq!(unsafe { cancelled_chain(&leaf) }, None);
        root.cancel(CancelReason::Shutdown);
        // SAFETY: as above.
        let hit = unsafe { cancelled_chain(&leaf) };
        assert_eq!(hit, Some(CancelReason::Shutdown));
        // The hit was copied into the leaf: one load now suffices.
        assert_eq!(leaf.local(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn reason_flag_roundtrip() {
        for r in [
            CancelReason::Token,
            CancelReason::Deadline,
            CancelReason::SiblingPanic,
            CancelReason::Shutdown,
        ] {
            assert_eq!(CancelReason::from_flag(r as u32), Some(r));
            assert!(!r.name().is_empty());
        }
        assert_eq!(CancelReason::from_flag(SCOPE_LIVE), None);
        assert_eq!(CancelReason::from_flag(99), None);
    }

    #[test]
    fn deadline_queue_fires_due_and_prunes_dead() {
        let q = DeadlineQueue::default();
        let now = Instant::now();
        let live = Arc::new(ScopeHandle {
            cell: CancelCell::new(std::ptr::null()),
        });
        let dead = Arc::new(ScopeHandle {
            cell: CancelCell::new(std::ptr::null()),
        });
        let future = Arc::new(ScopeHandle {
            cell: CancelCell::new(std::ptr::null()),
        });
        q.arm(&live, now);
        q.arm(&dead, now);
        q.arm(&future, now + std::time::Duration::from_secs(60));
        drop(dead); // region completed before its deadline
        let (next, fired) = q.fire_due(now);
        assert_eq!(live.cell.local(), Some(CancelReason::Deadline));
        assert_eq!(future.cell.local(), None, "future deadline untouched");
        assert_eq!(next, Some(now + std::time::Duration::from_secs(60)));
        assert_eq!(fired, 1, "the pruned entry doesn't count as fired");
    }
}
