//! # nowa-runtime — a wait-free continuation-stealing concurrency platform
//!
//! Reproduction of *“Nowa: A Wait-Free Continuation-Stealing Concurrency
//! Platform”* (Schmaus et al., IPDPS 2021): a fully-strict fork/join
//! runtime with randomised work-stealing, genuine continuation stealing on
//! fiber stacks, a practical cactus-stack implementation, and — the paper's
//! contribution — **wait-free strand coordination**: the hazardous race
//! between a worker's `popBottom()` and the sync-condition counter (Fig. 6)
//! is turned benign by arming the counter with `I_max` and restoring
//! `N_r = N_r' − (I_max − α)` at the explicit sync point (§IV-B), so no
//! locks are needed in the runtime's outer layer. Combined with the
//! lock-free Chase–Lev deque this yields the paper's synergy (§IV-C).
//!
//! ## Quick start
//!
//! ```
//! use nowa_runtime::{api, Config, Runtime};
//!
//! fn fib(n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
//!     a + b
//! }
//!
//! let rt = Runtime::new(Config::with_workers(2)).unwrap();
//! assert_eq!(rt.run(|| fib(16)), 987);
//! // Serial elision: outside the runtime the same code runs serially.
//! assert_eq!(fib(10), 55);
//! ```
//!
//! ## Flavors
//!
//! The evaluation compares runtime systems; [`Flavor`] reproduces the axis:
//! wait-free Nowa protocol vs. Fibril-style locking, over CL / THE / ABP /
//! locked deques. See [`flavor`].
//!
//! ## Caveats (inherent to continuation stealing)
//!
//! Code between a spawn and its sync may migrate between OS threads. The
//! safe combinators ([`api`]) bound everything that crosses by `Send`;
//! the raw [`api::Region`] API documents the obligations it cannot check.
//! Thread-locals must not be relied upon across spawn/sync points.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod cancel;
pub mod chaos;
pub mod config;
pub mod flavor;
pub mod foreign;
pub mod frame;
pub mod idle;
pub mod injector;
#[cfg(all(test, not(loom)))]
mod layout;
mod obs;
pub mod reactor;
pub mod record;
pub mod runtime;
pub mod scheduler;
pub mod slice;
pub mod snzi;
pub mod stats;
mod sync;
pub mod task;
pub mod time;
mod watchdog;
pub mod worker;

pub use api::{
    for_each, in_task, join2, join3, join4, map_reduce, par_for, par_map, worker_index, Region,
};
pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use config::{ChaosConfig, Config, IdleConfig, SplitConfig};
pub use flavor::{DequeKind, Flavor, ProtocolKind};
pub use foreign::ForeignForkJoin;
pub use nowa_context::{MadvisePolicy, StackError};
pub use reactor::AsyncFd;
pub use runtime::{Runtime, RuntimeError, ShutdownError};
pub use snzi::Snzi;
pub use stats::StatsSnapshot;
pub use task::{block_on, JoinHandle};
pub use time::{sleep, timeout, Elapsed};
