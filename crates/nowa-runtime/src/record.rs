//! Spawn records and join state — the objects that flow through the deques.

use crate::sync::{AtomicI64, AtomicU32};
use nowa_context::{RawContext, Stack};
// The Fibril-style locked protocol is a baseline, not a verification
// target: its mutex stays `parking_lot` even under loom (the loom models
// only exercise the wait-free protocol's atomics).
use parking_lot::Mutex;

use crate::frame::FrameCore;

/// The arbitrarily large initial value of the sync-condition counter
/// (the paper's `I_max`, §IV-B). Phase 1 keeps the counter at
/// `N_r' = I_max − ω`; the explicit sync restores `N_r = N_r' − (I_max − α)`.
pub const I_MAX: i64 = i64::MAX;

/// [`JoinState::susp`]: no suspension is parked at the explicit sync.
pub const SUSP_IDLE: u32 = 0;
/// [`JoinState::susp`]: the main path has suspended at the explicit sync
/// and exactly one party (last joiner or the restoring sync itself) may
/// claim the resume by swapping the state back to [`SUSP_IDLE`].
pub const SUSP_SUSPENDED: u32 = 1;

/// Join state for the Fibril-style lock-based protocol (Listing 2).
#[derive(Debug, Default)]
pub struct LockedJoin {
    /// Number of active parallel strands (`N_r = α − ω`).
    pub count: i64,
    /// True once the main path suspended at the explicit sync point.
    pub suspended: bool,
}

/// Per-frame join state, holding the fields for both protocols.
///
/// A frame lives for the duration of one spawning-function instance; keeping
/// both protocols' fields (24 bytes of atomics + a word-sized mutex) costs
/// nothing measurable and lets every runtime flavor share one frame layout,
/// so records, deques and the scheduler need no per-protocol
/// monomorphisation.
///
/// # Layout
///
/// Hot/cold split across cache-line groups (the Beat-style layout pass,
/// DESIGN.md §6g): the wait-free protocol's atomics (`counter`, `alpha`,
/// `susp`) — hammered by joiners and the owner on every spawn/join — sit
/// alone on the first 128-byte line; the lock-based baseline's mutex (cold
/// for every Nowa flavor) starts on the second. `repr(C)` plus the
/// explicit pad make the grouping a compile-time guarantee (asserted
/// below and in `layout.rs`), not an optimizer courtesy. Under loom the
/// layout attributes drop away: loom's atomics have model-sized layouts.
#[cfg_attr(not(loom), repr(C, align(128)))]
pub struct JoinState {
    /// Nowa's sync-condition counter. `N_r'` in phase 1; `N_r` after the
    /// restore at the explicit sync point.
    pub counter: AtomicI64,
    /// Nowa's forked-task count `α`. Only the main-path control flow
    /// increments it (Invariant II), so `Relaxed` suffices; atomicity is
    /// only needed because the main path migrates between OS threads.
    pub alpha: AtomicU32,
    /// Explicit suspension state machine ([`SUSP_IDLE`] /
    /// [`SUSP_SUSPENDED`]), making the counter algebra's implicit
    /// "exactly one party resumes a suspension" guarantee assertable —
    /// the abortable-suspension protocol's "retired exactly once"
    /// invariant (DESIGN.md §6f) is precisely "the `swap(SUSP_IDLE)`
    /// returns [`SUSP_SUSPENDED`] exactly once per suspension".
    ///
    /// The suspending sync stores [`SUSP_SUSPENDED`] *before* its
    /// counter restore; the zero-crossing winner (last joiner, or the
    /// restore itself) swaps it back. Visibility rides the counter's
    /// AcqRel chain: the store is sequenced before the restoring
    /// `fetch_sub`, and a joiner only consults `susp` after its own
    /// `fetch_sub` observed the restored count.
    pub susp: AtomicU32,
    #[cfg(not(loom))]
    _hot_pad: [u8; 112],
    /// The lock-based protocol's guarded count.
    pub locked: Mutex<LockedJoin>,
}

#[cfg(not(loom))]
const _: () = {
    // The wait-free atomics share the first cache line; the baseline's
    // mutex starts on the second. A new field that silently lands between
    // them breaks these asserts, not the benchmark numbers.
    assert!(core::mem::offset_of!(JoinState, counter) == 0);
    assert!(core::mem::offset_of!(JoinState, alpha) == 8);
    assert!(core::mem::offset_of!(JoinState, susp) == 12);
    assert!(core::mem::offset_of!(JoinState, locked) == 128);
    assert!(core::mem::align_of::<JoinState>() == 128);
    assert!(core::mem::size_of::<JoinState>() == 256);
};

impl JoinState {
    /// Fresh join state: counter armed at `I_max`, nothing forked.
    pub fn new() -> JoinState {
        JoinState {
            counter: AtomicI64::new(I_MAX),
            alpha: AtomicU32::new(0),
            susp: AtomicU32::new(SUSP_IDLE),
            #[cfg(not(loom))]
            _hot_pad: [0; 112],
            locked: Mutex::new(LockedJoin::default()),
        }
    }
}

impl Default for JoinState {
    fn default() -> Self {
        JoinState::new()
    }
}

/// The per-spawning-function frame: protocol state + suspension state.
///
/// Created by the spawning function (e.g. inside [`join2`](crate::api::join2))
/// in its own stack frame and **never moved** while spawns of the region are
/// outstanding — records hold raw pointers to it.
///
/// `repr(C)` keeps the two aligned groups in declaration order, so the
/// frame's line map is: core hot line, core cold line(s), join hot line,
/// join cold line (asserted in `layout.rs`).
#[cfg_attr(not(loom), repr(C))]
pub struct Frame {
    /// Protocol-independent suspension/panic state.
    pub core: FrameCore,
    /// Join-counter state.
    pub join: JoinState,
}

impl Frame {
    /// A fresh frame, ready for its first spawn region.
    pub fn new() -> Frame {
        Frame {
            core: FrameCore::new(),
            join: JoinState::new(),
        }
    }
}

impl Default for Frame {
    fn default() -> Self {
        Frame::new()
    }
}

/// A continuation offered to thieves (the item type of all deques).
///
/// Lives in the spawn wrapper's stack frame on the *parent's* stack; the
/// record is owned by exactly one party at a time:
///
/// 1. the spawning control flow, from construction until `push`;
/// 2. the deque, until `pop` (fast path) or a successful `steal`;
/// 3. the consumer, which resumes `ctx` and thereby hands the record back
///    to the spawn wrapper's post-capture code.
///
/// Cache-line aligned: a record is the one object both a thief and the
/// owner touch around a steal, and the deques move only its address — one
/// line holds all three fields, and no record shares its line with
/// neighbouring parent-stack data.
#[repr(C, align(128))]
pub struct SpawnRecord {
    /// The captured parent continuation (filled by `capture_and_run_on`).
    pub ctx: RawContext,
    /// The frame whose spawn produced this continuation.
    pub frame: *const Frame,
    /// The stack the parent frame lives on. Travels with the continuation:
    /// whoever resumes `ctx` executes on this stack (cf. Listing 2's
    /// `f->stack = victim->stack`).
    pub stack: Option<Stack>,
}

impl SpawnRecord {
    /// A record for `frame`, not yet captured.
    pub fn new(frame: *const Frame) -> SpawnRecord {
        SpawnRecord {
            ctx: RawContext::null(),
            frame,
            stack: None,
        }
    }
}

/// Outcome of the post-child `pop_or_join` step (Fig. 5 lines 4–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfterChild {
    /// `popBottom()` returned our continuation: proceed (fast path).
    Continue,
    /// Continuation stolen; we joined as the **last** child of a frame
    /// suspended at its explicit sync: resume the sync continuation.
    ResumeSync,
    /// Continuation stolen; siblings outstanding: the worker is out of work.
    OutOfWork,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Ordering;

    #[test]
    fn join_state_starts_at_imax() {
        let j = JoinState::new();
        assert_eq!(j.counter.load(Ordering::Relaxed), I_MAX);
        assert_eq!(j.alpha.load(Ordering::Relaxed), 0);
        assert_eq!(j.susp.load(Ordering::Relaxed), SUSP_IDLE);
        assert_eq!(j.locked.lock().count, 0);
        assert!(!j.locked.lock().suspended);
    }

    #[test]
    fn record_starts_uncaptured() {
        let frame = Frame::new();
        let rec = SpawnRecord::new(&frame);
        assert!(rec.ctx.is_null());
        assert!(rec.stack.is_none());
        assert_eq!(rec.frame, &frame as *const Frame);
    }
}
