//! The epoll reactor: I/O readiness and timers for the async surface.
//!
//! There is exactly ONE reactor per runtime and NO dedicated reactor
//! thread. A worker that would otherwise futex-park (PR 3's idle engine)
//! first tries to claim the poller slot; the claimant sleeps in
//! `epoll_wait` instead of on a futex, with its timeout clamped to
//! `min(IdleConfig::max_park, next timer deadline)`. Everything the idle
//! engine documents about bounded parks applies verbatim: the claim/release
//! handshake has a store-buffering window (a producer can miss the poller
//! exactly as it can miss a futex sleeper), and the bounded timeout is the
//! belt-and-braces backstop for it.
//!
//! Readiness is level-triggered with one-shot *interest*: a direction's
//! `IN`/`OUT` bit is armed only while a waker is parked on it and disarmed
//! at dispatch, so a ready-but-unserviced fd does not spin the poller.
//! `ERR`/`HUP`/`RDHUP` wake both directions — the woken task re-runs its
//! syscall and observes the real error or EOF itself; the reactor never
//! interprets errors on a task's behalf.
//!
//! Cross-thread wakes reach a sleeping poller through an `eventfd` kick,
//! coalesced by an armed flag so a storm of wakes costs one `write(2)`.
//! The kick carries the cookie `KICK`; real fds carry a generation-tagged
//! slab key, so a stale event for a recycled slot is dropped on the floor
//! instead of waking a stranger.

use core::future::Future;
use core::pin::Pin;
use core::task::{Context, Poll, Waker};
use std::io;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

use nowa_context::sys::{self, epoll, EpollEvent, EpollWait};

use crate::chaos;
use crate::obs;
use crate::stats::WorkerStats;
use crate::sync::{AtomicU32, Ordering};
use crate::time::TimerWheel;
use crate::worker::{current_worker, Shared, Worker};

/// Event-cookie for the kick eventfd; real sources use slab keys, which
/// never reach this value (the slab would exhaust memory first).
const KICK: u64 = u64::MAX;

/// Events fetched per `epoll_wait`. Spillover is not lost — level-triggered
/// epoll re-reports anything still ready on the next poll.
const MAX_EVENTS: usize = 64;

/// One direction (read or write) of a registered source.
#[derive(Default)]
struct Direction {
    /// Readiness observed by a dispatch and not yet consumed by a poll.
    ready: bool,
    /// The waker parked on this direction, if any. Its presence is what
    /// arms the corresponding `IN`/`OUT` interest bit.
    waker: Option<Waker>,
}

/// A registered fd.
struct Source {
    fd: i32,
    read: Direction,
    write: Direction,
}

impl Source {
    /// The epoll interest mask implied by the parked wakers. `RDHUP` is
    /// always on so a peer shutdown wakes waiters even with no bit armed.
    fn interest(&self) -> u32 {
        let mut bits = epoll::RDHUP;
        if self.read.waker.is_some() {
            bits |= epoll::IN;
        }
        if self.write.waker.is_some() {
            bits |= epoll::OUT;
        }
        bits
    }
}

/// Slab slot: a generation counter (bumped on free) plus the occupant.
/// Keys are `(gen << 32) | index`, so an event fetched just before a
/// deregistration cannot be misdelivered to the slot's next tenant.
struct Slot {
    gen: u32,
    source: Option<Source>,
}

#[derive(Default)]
struct SourceSlab {
    slots: Vec<Slot>,
    free: Vec<usize>,
}

impl SourceSlab {
    fn insert(&mut self, source: Source) -> u64 {
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i].source = Some(source);
                i
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    source: Some(source),
                });
                self.slots.len() - 1
            }
        };
        ((self.slots[index].gen as u64) << 32) | index as u64
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut Source> {
        let index = (key & 0xffff_ffff) as usize;
        let gen = (key >> 32) as u32;
        let slot = self.slots.get_mut(index)?;
        if slot.gen != gen {
            return None;
        }
        slot.source.as_mut()
    }

    fn remove(&mut self, key: u64) -> Option<Source> {
        let index = (key & 0xffff_ffff) as usize;
        let gen = (key >> 32) as u32;
        let slot = self.slots.get_mut(index)?;
        if slot.gen != gen {
            return None;
        }
        let src = slot.source.take();
        if src.is_some() {
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(index);
        }
        src
    }
}

/// Which direction a future is parked on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Read,
    Write,
}

/// The poller-claim slot: `0` free, `index + 1` claimed by worker
/// `index`. At most one worker sits in `epoll_wait` at a time; everyone
/// else futex-parks as before. Encoding the index lets the watchdog
/// classify the poller as healthy the same way it treats futex-parked
/// workers.
///
/// A standalone type (rather than a bare field of `Reactor`) so the
/// loom models can drive the *real* claim/release protocol without an
/// epoll instance — see `tests/loom.rs`.
pub struct PollerSlot {
    slot: AtomicU32,
}

impl Default for PollerSlot {
    fn default() -> Self {
        PollerSlot::new()
    }
}

impl PollerSlot {
    /// A free slot.
    pub fn new() -> PollerSlot {
        PollerSlot {
            slot: AtomicU32::new(0),
        }
    }

    /// Tries to claim the slot for worker `index`. SeqCst on purpose: the
    /// claim must be totally ordered against producers'
    /// [`claimed`](PollerSlot::claimed) loads the same way the idle engine
    /// orders announce against wake scans — the remaining store-buffering
    /// window is bounded by the poll timeout.
    pub fn try_claim(&self, index: usize) -> bool {
        // ordering: §7b "reactor poller claim".
        let tag = (index as u32).saturating_add(1);
        self.slot
            .compare_exchange(0, tag, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether worker `index` currently holds the slot. Used by the
    /// watchdog: the poller's progress counter is frozen inside
    /// `epoll_wait` exactly like a futex-parked worker's, and must not
    /// read as a stall.
    pub fn is_poller(&self, index: usize) -> bool {
        // ordering: §7b "reactor poller claim" — monitoring-only load; a
        // racy read here only delays or spares one watchdog report.
        self.slot.load(Ordering::SeqCst) == (index as u32).saturating_add(1)
    }

    /// Whether *any* worker currently holds the slot (the
    /// `kick_if_claimed` producer-side gate).
    pub fn claimed(&self) -> bool {
        // ordering: §7b "reactor poller claim" — SeqCst load pairs with
        // the claim CAS; a miss in the store-buffering window is recovered
        // by the bounded poll timeout.
        self.slot.load(Ordering::SeqCst) != 0
    }

    /// Releases the slot (claimant only). The SeqCst store also publishes
    /// the outgoing poller's duty-state writes (timer-wheel advances,
    /// dispatched readiness) to the next claimant, whose claim CAS reads
    /// the `0` this stores.
    pub fn release(&self) {
        // ordering: §7b "reactor poller claim" — SeqCst store pairs with
        // the claim CAS and the `claimed` load.
        self.slot.store(0, Ordering::SeqCst);
    }
}

/// The per-runtime reactor. See the module docs for the ownership model.
pub(crate) struct Reactor {
    epfd: i32,
    kick_fd: i32,
    /// See [`PollerSlot`].
    poller: PollerSlot,
    /// Kick coalescing: 1 while a `write(2)` to the eventfd is outstanding
    /// (not yet drained), so kick storms cost one syscall per poll cycle.
    kick_armed: AtomicU32,
    sources: parking_lot::Mutex<SourceSlab>,
    /// The timer wheel rides the reactor: its next deadline clamps the
    /// poll timeout and every poll advances it.
    pub(crate) timers: TimerWheel,
}

impl Reactor {
    pub(crate) fn new() -> Result<Reactor, sys::SysError> {
        let epfd = sys::epoll_create1()?;
        let kick_fd = match sys::eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close(epfd);
                return Err(e);
            }
        };
        let ev = EpollEvent {
            events: epoll::IN,
            data: KICK,
        };
        if let Err(e) = sys::epoll_ctl(epfd, epoll::CTL_ADD, kick_fd, &ev) {
            sys::close(kick_fd);
            sys::close(epfd);
            return Err(e);
        }
        Ok(Reactor {
            epfd,
            kick_fd,
            poller: PollerSlot::new(),
            kick_armed: AtomicU32::new(0),
            sources: parking_lot::Mutex::new(SourceSlab::default()),
            timers: TimerWheel::new(),
        })
    }

    // ---- poller claim ----------------------------------------------------

    /// Tries to become the poller; see [`PollerSlot::try_claim`].
    pub(crate) fn try_claim(&self, index: usize) -> bool {
        self.poller.try_claim(index)
    }

    /// Whether worker `index` holds the slot; see [`PollerSlot::is_poller`].
    pub(crate) fn is_poller(&self, index: usize) -> bool {
        self.poller.is_poller(index)
    }

    /// Releases the poller slot; see [`PollerSlot::release`].
    pub(crate) fn release(&self) {
        self.poller.release()
    }

    // ---- kicks -----------------------------------------------------------

    /// Wakes the poller out of `epoll_wait` (or makes its next wait return
    /// immediately). Coalesced: only the 0→1 arming transition pays the
    /// `write(2)`.
    pub(crate) fn kick(&self) {
        // ordering: §7b "kick coalescing" — Release so the work made
        // visible before the kick (ready push, timer insert) is ordered
        // before the flag a drain will clear.
        if self.kick_armed.swap(1, Ordering::Release) == 0 {
            let buf = 1u64.to_ne_bytes();
            let _ = sys::write_raw(self.kick_fd, &buf);
        }
    }

    /// [`Reactor::kick`], but only when a poller is (or may be) sleeping.
    /// Producers that found no futex sleeper call this: the poller does not
    /// announce to the idle engine, so `sleepers() == 0` does not mean
    /// "nobody is parked".
    pub(crate) fn kick_if_claimed(&self) {
        if self.poller.claimed() {
            self.kick();
        }
    }

    fn drain_kick(&self) {
        let mut buf = [0u8; 8];
        let _ = sys::read_raw(self.kick_fd, &mut buf);
        // ordering: §7b "kick coalescing" — Release store after the drain;
        // a kicker that still sees 1 is coalesced into the poll cycle that
        // is already awake and about to re-scan every work source.
        self.kick_armed.store(0, Ordering::Release);
    }

    // ---- source registration --------------------------------------------

    /// Registers `fd` (which must already be non-blocking) and returns its
    /// generation-tagged key. Interest starts at `RDHUP` only; directions
    /// arm themselves when a future parks on them.
    pub(crate) fn register(&self, fd: i32) -> Result<u64, sys::SysError> {
        let mut slab = self.sources.lock();
        let key = slab.insert(Source {
            fd,
            read: Direction::default(),
            write: Direction::default(),
        });
        let ev = EpollEvent {
            events: epoll::RDHUP,
            data: key,
        };
        if let Err(e) = sys::epoll_ctl(self.epfd, epoll::CTL_ADD, fd, &ev) {
            slab.remove(key);
            return Err(e);
        }
        Ok(key)
    }

    /// Deregisters a source. Any parked wakers are woken (spuriously —
    /// their next poll re-runs the I/O and observes whatever the fd says).
    pub(crate) fn deregister(&self, key: u64) {
        let mut woken: [Option<Waker>; 2] = [None, None];
        {
            let mut slab = self.sources.lock();
            if let Some(mut src) = slab.remove(key) {
                let ev = EpollEvent { events: 0, data: 0 };
                let _ = sys::epoll_ctl(self.epfd, epoll::CTL_DEL, src.fd, &ev);
                woken[0] = src.read.waker.take();
                woken[1] = src.write.waker.take();
            }
        }
        for w in woken.into_iter().flatten() {
            w.wake();
        }
    }

    /// One readiness poll for `key`/`dir`: consumes pending readiness or
    /// parks `cx`'s waker and arms the interest bit.
    fn poll_direction(&self, key: u64, dir: Dir, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let mut slab = self.sources.lock();
        let src = slab
            .get_mut(key)
            .expect("nowa reactor: polled a deregistered source (stale key)");
        let slot = match dir {
            Dir::Read => &mut src.read,
            Dir::Write => &mut src.write,
        };
        if slot.ready {
            slot.ready = false;
            return Poll::Ready(Ok(()));
        }
        let had_waker = slot.waker.is_some();
        slot.waker = Some(cx.waker().clone());
        if !had_waker {
            // Arm the direction's interest bit. Level-triggered: if the fd
            // is already ready the next poll reports it immediately.
            let ev = EpollEvent {
                events: src.interest(),
                data: key,
            };
            if let Err(e) = sys::epoll_ctl(self.epfd, epoll::CTL_MOD, src.fd, &ev) {
                let slot = match dir {
                    Dir::Read => &mut src.read,
                    Dir::Write => &mut src.write,
                };
                slot.waker = None;
                return Poll::Ready(Err(io::Error::from_raw_os_error(e.0)));
            }
        }
        Poll::Pending
    }

    /// Delivers one fetched event: marks directions ready, collects their
    /// wakers, disarms the delivered interest bits.
    fn dispatch(&self, key: u64, bits: u32, wakers: &mut Vec<Waker>) {
        let mut slab = self.sources.lock();
        let Some(src) = slab.get_mut(key) else {
            // Deregistered between fetch and dispatch (or a recycled slot):
            // the generation tag caught it; drop the event.
            return;
        };
        let fatal = bits & (epoll::ERR | epoll::HUP | epoll::RDHUP) != 0;
        if fatal || bits & epoll::IN != 0 {
            src.read.ready = true;
            if let Some(w) = src.read.waker.take() {
                wakers.push(w);
            }
        }
        if fatal || bits & epoll::OUT != 0 {
            src.write.ready = true;
            if let Some(w) = src.write.waker.take() {
                wakers.push(w);
            }
        }
        // Disarm what was delivered — readiness is now latched in the
        // slab, and level-triggered epoll would otherwise re-report it
        // every poll until the task re-polls.
        let ev = EpollEvent {
            events: src.interest(),
            data: key,
        };
        let _ = sys::epoll_ctl(self.epfd, epoll::CTL_MOD, src.fd, &ev);
    }

    // ---- the poll itself -------------------------------------------------

    /// One reactor poll, run by the claimed poller in place of a futex
    /// park. Waits up to `timeout_ms` (already clamped to `max_park` and
    /// the next timer deadline by the caller), dispatches I/O readiness,
    /// advances the timer wheel, and returns how many wakeups it produced.
    ///
    /// # Safety
    /// `worker` must be the calling thread's live worker.
    pub(crate) unsafe fn poll(&self, worker: *mut Worker, timeout_ms: u64) -> usize {
        let mut wakers: Vec<Waker> = Vec::new();
        let mut dispatched = 0usize;
        // SAFETY: `worker` is the calling thread's live worker (caller
        // contract).
        if unsafe { chaos::on_reactor_eintr(worker) } {
            // Modelled EINTR: the syscall is skipped entirely and the poll
            // behaves as an interrupted wait (timers still advance below).
        } else if unsafe { chaos::on_reactor_poll(worker) } {
            // Modelled spurious wakeup: zero events without blocking.
        } else {
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout = timeout_ms.min(i32::MAX as u64) as i32;
            match sys::epoll_wait(self.epfd, &mut events, Some(timeout)) {
                EpollWait::Ready(n) => {
                    for ev in &events[..n] {
                        // EpollEvent is packed on x86_64: copy fields out
                        // rather than referencing them in place.
                        let (bits, data) = (ev.events, ev.data);
                        if data == KICK {
                            self.drain_kick();
                        } else {
                            self.dispatch(data, bits, &mut wakers);
                            dispatched += 1;
                        }
                    }
                }
                EpollWait::Interrupted => {}
            }
        }
        let fired = self.timers.advance(Instant::now());
        let timer_count = fired.len();
        // Wake everything outside the slab lock (a wake may re-enter the
        // reactor to re-arm, e.g. a Sleep future's re-registration).
        for w in wakers {
            w.wake();
        }
        for w in fired {
            w.wake();
        }
        // SAFETY: `worker` is the calling thread's live worker (caller
        // contract), so dereferencing it for stats and trace hooks is sound.
        unsafe {
            WorkerStats::bump(&(*worker).stats().reactor_polls);
            if dispatched > 0 {
                WorkerStats::add(&(*worker).stats().reactor_events, dispatched as u64);
            }
            if timer_count > 0 {
                WorkerStats::add(&(*worker).stats().timer_fires, timer_count as u64);
                obs::on_timer_fire(worker, timer_count as u64);
            }
            obs::on_reactor_poll(worker, dispatched as u64);
        }
        dispatched + timer_count
    }

    /// Timer-only advance for threads that are not workers (the watchdog
    /// sweep). Bounds timer staleness when every worker is busy and nobody
    /// has polled in a while — the same role the watchdog already plays for
    /// region deadlines.
    pub(crate) fn advance_timers_external(&self) {
        for w in self.timers.advance(Instant::now()) {
            w.wake();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close(self.kick_fd);
        sys::close(self.epfd);
    }
}

// SAFETY: every field is either plain-old-data fds, an atomic, a Mutex, or
// the internally synchronised timer wheel; all cross-thread access goes
// through those.
unsafe impl Send for Reactor {}
// SAFETY: same argument as `Send` above — shared access synchronises
// through the atomics, the sources Mutex and the timer wheel's own locks.
unsafe impl Sync for Reactor {}

// ---- public async fd surface --------------------------------------------

/// An fd registered with the runtime's reactor.
///
/// Wraps any [`AsRawFd`] I/O object whose fd is **non-blocking** (the
/// caller sets that up; the reactor only reports readiness). Futures from
/// [`readable`](AsyncFd::readable) / [`writable`](AsyncFd::writable)
/// resolve when the fd is (or may be) ready — the task then re-runs its
/// syscall and treats `WouldBlock` as "wait again", the standard
/// level-triggered loop.
///
/// Dropping the `AsyncFd` deregisters the fd and wakes any parked waiters.
pub struct AsyncFd<T: AsRawFd> {
    io: T,
    key: u64,
    shared: Arc<Shared>,
}

impl<T: AsRawFd> AsyncFd<T> {
    /// Registers `io`'s fd with the runtime reactor.
    ///
    /// # Panics
    /// Panics when called outside a runtime worker (the reactor lives on
    /// the runtime).
    pub fn new(io: T) -> io::Result<AsyncFd<T>> {
        let worker = current_worker();
        assert!(
            !worker.is_null(),
            "nowa AsyncFd::new requires a runtime worker (the reactor lives on the runtime)"
        );
        // SAFETY: non-null means the calling thread's live worker.
        let shared = unsafe { (*worker).shared.clone() };
        let key = shared
            .reactor
            .register(io.as_raw_fd())
            .map_err(|e| io::Error::from_raw_os_error(e.0))?;
        Ok(AsyncFd { io, key, shared })
    }

    /// The wrapped I/O object.
    pub fn get_ref(&self) -> &T {
        &self.io
    }

    /// Mutable access to the wrapped I/O object.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.io
    }

    /// Resolves when the fd is readable (or has hung up / errored — the
    /// caller's next read observes which).
    pub fn readable(&self) -> Readiness<'_, T> {
        Readiness {
            fd: self,
            dir: Dir::Read,
        }
    }

    /// Resolves when the fd is writable (or has hung up / errored).
    pub fn writable(&self) -> Readiness<'_, T> {
        Readiness {
            fd: self,
            dir: Dir::Write,
        }
    }
}

impl<T: AsRawFd> Drop for AsyncFd<T> {
    fn drop(&mut self) {
        self.shared.reactor.deregister(self.key);
    }
}

/// Future of one readiness edge on an [`AsyncFd`] direction.
pub struct Readiness<'a, T: AsRawFd> {
    fd: &'a AsyncFd<T>,
    dir: Dir,
}

impl<T: AsRawFd> Future for Readiness<'_, T> {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        self.fd
            .shared
            .reactor
            .poll_direction(self.fd.key, self.dir, cx)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn slab_keys_are_generation_tagged() {
        let mut slab = SourceSlab::default();
        let k1 = slab.insert(Source {
            fd: 3,
            read: Direction::default(),
            write: Direction::default(),
        });
        assert!(slab.get_mut(k1).is_some());
        assert!(slab.remove(k1).is_some(), "first removal succeeds");
        assert!(slab.get_mut(k1).is_none(), "stale key misses");
        let k2 = slab.insert(Source {
            fd: 4,
            read: Direction::default(),
            write: Direction::default(),
        });
        assert_ne!(k1, k2, "recycled slot carries a new generation");
        assert!(slab.get_mut(k1).is_none(), "old key still misses");
        assert_eq!(slab.get_mut(k2).unwrap().fd, 4);
    }

    #[test]
    fn interest_follows_parked_wakers() {
        let mut src = Source {
            fd: 0,
            read: Direction::default(),
            write: Direction::default(),
        };
        assert_eq!(src.interest(), epoll::RDHUP, "idle source: RDHUP only");
        src.read.waker = Some(noop_waker());
        assert_eq!(src.interest(), epoll::RDHUP | epoll::IN);
        src.write.waker = Some(noop_waker());
        assert_eq!(src.interest(), epoll::RDHUP | epoll::IN | epoll::OUT);
    }

    fn noop_waker() -> Waker {
        use core::task::{RawWaker, RawWakerVTable};
        const VTABLE: RawWakerVTable = RawWakerVTable::new(
            |_| RawWaker::new(core::ptr::null(), &VTABLE),
            |_| {},
            |_| {},
            |_| {},
        );
        // SAFETY: every vtable entry is a no-op.
        unsafe { Waker::from_raw(RawWaker::new(core::ptr::null(), &VTABLE)) }
    }
}
