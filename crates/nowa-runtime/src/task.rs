//! The waker bridge: a suspended continuation as a `std::task::Waker`.
//!
//! `block_on` polls a `Future` on the calling strand. When the future
//! returns `Pending`, the strand's continuation is captured exactly as an
//! explicit sync suspension is ([`crate::scheduler`]): the blocked stack
//! moves into an `AsyncCell`, the worker switches to a fresh stack and
//! descends into the work-finding loop. The `Waker` handed to the future
//! is a reference-counted view of that same cell — *a suspended Nowa
//! continuation is a waker*. Waking claims the parked continuation through
//! a three-state handoff and enqueues it on the runtime's ready queue,
//! where any worker resumes it (the continuation migrates like any stolen
//! continuation; DESIGN.md §6h).
//!
//! # The wake-state handoff
//!
//! The cell's `state` word is the entire protocol (modeled in
//! `tests/loom.rs`, audited in DESIGN.md §7b):
//!
//! ```text
//! RUNNING ──park_publish──▶ PARKED ──wake_claim──▶ NOTIFIED ──resume_begin──▶ RUNNING
//!    │                                                ▲
//!    └────────────wake_claim (flag)───────────────────┘
//! ```
//!
//! * The parker captures its context *first*, then publishes `PARKED`.
//!   A failed publish means a wake already flagged the cell — the parker
//!   still owns the continuation and resumes itself in place (no lost
//!   wake, no double resume).
//! * Exactly one waker can claim `PARKED → NOTIFIED`; every other waker
//!   sees `NOTIFIED` (or `RUNNING`, which it merely flags) and does
//!   nothing. The claim is what makes enqueueing the cell on the ready
//!   queue exactly-once.
//! * The resumed strand swaps `NOTIFIED → RUNNING` before re-polling, so
//!   a wake that lands *during* the poll is preserved for the next park
//!   attempt.
//!
//! Cancellation composes at the same point as the sync path: every
//! resumption (and first poll) begins with a cooperative checkpoint
//! against the cell's recorded scope, so cancelling a region (token,
//! deadline, sibling panic, shutdown) unwinds its parked async strands as
//! soon as the cancel broadcast wakes them (`AsyncWaiters`).

use crate::sync::{AtomicU32, Ordering};
use core::cell::{Cell, UnsafeCell};
use core::ffi::c_void;
use core::future::Future;
use core::pin::Pin;
use core::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::sync::{Arc, Weak};

use nowa_context::{capture_and_run_on, resume, RawContext, Stack};

use crate::cancel::{self, CancelCell};
use crate::chaos;
use crate::obs;
use crate::stats::WorkerStats;
use crate::worker::{current_worker, find_work, AbortOnUnwind, Shared, Worker};

/// The strand is executing (initial state, and while polling).
pub const ASYNC_RUNNING: u32 = 0;
/// The continuation is captured in the cell and owned by the next claimer.
pub const ASYNC_PARKED: u32 = 1;
/// A wake has been consumed: either a claimer owns the continuation or the
/// still-running strand will observe the flag at its next park attempt.
pub const ASYNC_NOTIFIED: u32 = 2;
/// The future completed (or unwound); all further wakes are no-ops.
pub const ASYNC_DONE: u32 = 3;

/// What a [`WakeState::wake_claim`] achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeClaim {
    /// The caller claimed the parked continuation and must schedule it.
    Claimed,
    /// The strand was still running; the wake was latched for its next
    /// park attempt. Nothing to schedule.
    Flagged,
    /// A wake was already pending (or the future is done); no-op.
    Stale,
}

/// The wake-state word, factored out of `AsyncCell` so the protocol can
/// run under loom unmodified (`tests/loom.rs` models it exhaustively).
pub struct WakeState {
    state: AtomicU32,
}

impl Default for WakeState {
    fn default() -> Self {
        WakeState::new()
    }
}

impl WakeState {
    /// A fresh state word: [`ASYNC_RUNNING`].
    pub fn new() -> WakeState {
        WakeState {
            state: AtomicU32::new(ASYNC_RUNNING),
        }
    }

    /// Parker side: publishes the captured continuation. `true` means the
    /// cell is now `PARKED` and owned by the next claimer; `false` means a
    /// wake raced in first — the parker keeps ownership and must resume
    /// itself.
    // lint: hot-path
    #[inline]
    pub fn park_publish(&self) -> bool {
        // Release on success: publishes the ctx/stack writes the parker
        // staged into the cell to whichever thread later claims it (the
        // claimer's Acquire in `wake_claim` pairs with this). Acquire on
        // failure: the parker is about to self-resume and re-poll, and
        // must observe whatever the flagging waker published before its
        // wake (e.g. an I/O readiness flag).
        self.state
            .compare_exchange(
                ASYNC_RUNNING,
                ASYNC_PARKED,
                Ordering::Release,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Waker side: consumes one wake. See [`WakeClaim`].
    // lint: hot-path
    #[inline]
    pub fn wake_claim(&self) -> WakeClaim {
        // ordering: the initial load is Relaxed — every decision is
        // re-validated by a CAS below, which carries the ordering.
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            match cur {
                ASYNC_PARKED => {
                    // AcqRel: Acquire pairs with the parker's Release
                    // publish (the claimer — or the worker it hands the
                    // cell to via the ready queue's own Release/Acquire
                    // edge — reads ctx/stack); Release orders the waker's
                    // prior writes (readiness flags, received data) before
                    // the state change the resumed strand Acquires.
                    match self.state.compare_exchange(
                        ASYNC_PARKED,
                        ASYNC_NOTIFIED,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return WakeClaim::Claimed,
                        Err(now) => cur = now,
                    }
                }
                ASYNC_RUNNING => {
                    // Release: the strand that loses its `park_publish`
                    // CAS to this flag Acquires it and must see the
                    // waker's prior writes when it re-polls.
                    match self.state.compare_exchange(
                        ASYNC_RUNNING,
                        ASYNC_NOTIFIED,
                        Ordering::Release,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return WakeClaim::Flagged,
                        Err(now) => cur = now,
                    }
                }
                _ => return WakeClaim::Stale,
            }
        }
    }

    /// Resumed strand: consumes the pending notification before the next
    /// poll, so wakes landing mid-poll are preserved for the next park.
    // lint: hot-path
    #[inline]
    pub fn resume_begin(&self) {
        // Acquire: pairs with the waker's Release in `wake_claim` — the
        // re-poll must observe the readiness the waker published.
        self.state.swap(ASYNC_RUNNING, Ordering::Acquire);
    }

    /// The future completed (or its strand is unwinding): latch the
    /// terminal state so late wakers are no-ops.
    #[inline]
    pub fn complete(&self) {
        // ordering: Relaxed — nothing is published through the terminal
        // latch; late wakers merely observe "nothing to do".
        self.state.store(ASYNC_DONE, Ordering::Relaxed);
    }
}

/// One parked (or parking) `block_on` continuation.
///
/// Shared between the suspended strand (which owns `ctx`/`stack` while the
/// state is not `PARKED`), the wakers cloned from its `Waker`, and the
/// ready queue. The state machine above is what arbitrates ownership: the
/// `UnsafeCell`s are only touched by whichever side currently owns the
/// continuation.
pub(crate) struct AsyncCell {
    /// The handoff word.
    pub(crate) state: WakeState,
    /// The captured continuation (valid while parked).
    ctx: UnsafeCell<RawContext>,
    /// The suspended strand's stack (present while parked).
    stack: UnsafeCell<Option<Stack>>,
    /// The cancellation scope governing the strand; re-established as the
    /// resuming worker's ambient scope, checked at every re-poll.
    scope: Cell<*const CancelCell>,
    /// The runtime, for the wake path (ready queue + idle/reactor kick).
    /// Weak: the runtime may die while external wakers still exist.
    shared: Weak<Shared>,
    /// This cell's slot in [`AsyncWaiters`], for deregistration.
    registry_slot: Cell<usize>,
}

// SAFETY: the wake-state machine serializes all access to the UnsafeCells
// (exactly one side owns the continuation at any instant — see the module
// docs); `scope`/`registry_slot` are only touched by the owning strand.
unsafe impl Send for AsyncCell {}
// SAFETY: as for `Send`.
unsafe impl Sync for AsyncCell {}

impl AsyncCell {
    fn new(shared: Weak<Shared>, scope: *const CancelCell) -> AsyncCell {
        AsyncCell {
            state: WakeState::new(),
            ctx: UnsafeCell::new(RawContext::null()),
            stack: UnsafeCell::new(None),
            scope: Cell::new(scope),
            shared,
            registry_slot: Cell::new(usize::MAX),
        }
    }
}

/// Trace identity of a cell: address-derived, like `nowa_trace::frame_id`.
#[inline]
fn cell_id(cell: *const AsyncCell) -> u64 {
    cell as usize as u64
}

/// A claimed continuation travelling through the ready queue.
pub(crate) struct ReadyCell(pub(crate) Arc<AsyncCell>);

/// Delivers one consumed wake to `cell`: claims the parked continuation
/// and schedules it, or latches the flag for a still-running strand.
pub(crate) fn wake_cell(cell: &Arc<AsyncCell>) {
    match cell.state.wake_claim() {
        WakeClaim::Claimed => {
            if let Some(shared) = cell.shared.upgrade() {
                // `push` only fails once the injector is closed for
                // shutdown; the parked continuation is then unreachable by
                // design (shutdown cancel-broadcast already unwound it).
                if shared.ready.push(ReadyCell(cell.clone())) {
                    crate::worker::wake_for_ready(&shared);
                }
            }
            // Runtime gone: every worker has exited, so the continuation
            // is unreachable anyway (shutdown cancel-broadcasts and
            // drains roots before the last `Shared` reference drops).
        }
        WakeClaim::Flagged | WakeClaim::Stale => {}
    }
}

// ---- RawWaker plumbing over Arc<AsyncCell> ----

const CELL_VTABLE: RawWakerVTable =
    RawWakerVTable::new(cell_clone, cell_wake, cell_wake_by_ref, cell_drop);

fn cell_raw(cell: Arc<AsyncCell>) -> RawWaker {
    RawWaker::new(Arc::into_raw(cell) as *const (), &CELL_VTABLE)
}

// SAFETY: `data` must come from `Arc::into_raw` in `cell_raw` (the vtable
// is only ever paired with such pointers); clones by bumping the count.
unsafe fn cell_clone(data: *const ()) -> RawWaker {
    // SAFETY: `data` came from `Arc::into_raw` in `cell_raw`.
    unsafe { Arc::increment_strong_count(data as *const AsyncCell) };
    RawWaker::new(data, &CELL_VTABLE)
}

// SAFETY: `data` must come from `Arc::into_raw` in `cell_raw`; consumes
// the reference it stands for (RawWaker `wake` contract).
unsafe fn cell_wake(data: *const ()) {
    // SAFETY: consumes the reference `data` stands for.
    let cell = unsafe { Arc::from_raw(data as *const AsyncCell) };
    wake_cell(&cell);
}

// SAFETY: `data` must come from `Arc::into_raw` in `cell_raw`; borrows
// without consuming (ManuallyDrop keeps the count).
unsafe fn cell_wake_by_ref(data: *const ()) {
    // SAFETY: borrows without consuming; ManuallyDrop keeps the count.
    let cell = core::mem::ManuallyDrop::new(unsafe { Arc::from_raw(data as *const AsyncCell) });
    wake_cell(&cell);
}

// SAFETY: `data` must come from `Arc::into_raw` in `cell_raw`; consumes
// the reference it stands for (RawWaker `drop` contract).
unsafe fn cell_drop(data: *const ()) {
    // SAFETY: consumes the reference `data` stands for.
    drop(unsafe { Arc::from_raw(data as *const AsyncCell) });
}

fn waker_of(cell: &Arc<AsyncCell>) -> Waker {
    // SAFETY: the vtable upholds the RawWaker contract over Arc counts.
    unsafe { Waker::from_raw(cell_raw(cell.clone())) }
}

// ---- the registry used by the cancellation broadcast ----

/// Every live `block_on` cell of a runtime, so cancellation events (token,
/// deadline, sibling panic, shutdown) can wake parked async strands — a
/// parked future has no child whose join would abort it, unlike a
/// suspended sync, so cancellation must deliver its own wake.
///
/// A slab of `Weak`s: completed strands deregister eagerly, and a dead
/// entry found during a broadcast is skipped. Mutex'd — registration is
/// once per `block_on`, broadcasts are rare (cancellation events only).
#[derive(Default)]
pub(crate) struct AsyncWaiters {
    slots: parking_lot::Mutex<WaiterSlab>,
}

#[derive(Default)]
struct WaiterSlab {
    entries: Vec<Option<Weak<AsyncCell>>>,
    free: Vec<usize>,
}

impl AsyncWaiters {
    fn register(&self, cell: &Arc<AsyncCell>) -> usize {
        let mut slab = self.slots.lock();
        let weak = Arc::downgrade(cell);
        match slab.free.pop() {
            Some(slot) => {
                slab.entries[slot] = Some(weak);
                slot
            }
            None => {
                slab.entries.push(Some(weak));
                slab.entries.len() - 1
            }
        }
    }

    fn deregister(&self, slot: usize) {
        let mut slab = self.slots.lock();
        slab.entries[slot] = None;
        slab.free.push(slot);
    }

    /// Wakes every registered cell (spuriously, from the future's point of
    /// view): each resumed strand re-checks its scope chain and unwinds if
    /// cancelled, or re-polls and re-parks if its own scope is untouched.
    pub(crate) fn wake_all(&self) {
        // Collect first, wake outside the lock: a wake may run arbitrary
        // downstream code (idle wakes, reactor kicks).
        let cells: Vec<Arc<AsyncCell>> = {
            let slab = self.slots.lock();
            slab.entries
                .iter()
                .flatten()
                .filter_map(Weak::upgrade)
                .collect()
        };
        for cell in &cells {
            wake_cell(cell);
        }
    }
}

/// Deregisters the cell when the `block_on` frame leaves — normally or by
/// unwinding (cancellation raises straight through `block_on`).
struct DeregisterOnDrop {
    cell: Arc<AsyncCell>,
}

impl Drop for DeregisterOnDrop {
    fn drop(&mut self) {
        self.cell.state.complete();
        if let Some(shared) = self.cell.shared.upgrade() {
            shared
                .async_waiters
                .deregister(self.cell.registry_slot.get());
        }
    }
}

// ---- the park/resume machinery (mirrors scheduler::sync_execute) ----

/// Arguments shipped from `park_on` to `park_body`.
struct ParkArgs {
    worker: *mut Worker,
    cell: *const AsyncCell,
}

/// Captures the calling strand into `cell` and descends into the
/// work-finding loop; returns when a waker's claim resumed the
/// continuation — possibly on a different OS thread.
///
/// # Safety
/// Must run on a worker thread owning `worker`, with the `current_stack`
/// invariant holding; `cell` must be this strand's live cell in state
/// `RUNNING` or `NOTIFIED`.
unsafe fn park_on(worker: *mut Worker, cell: &AsyncCell) {
    unsafe {
        // Stage a fresh stack for the work-finding loop, exactly like the
        // sync suspension path.
        chaos::on_stack_get(worker);
        let fresh = (*worker).cache.get();
        let fresh_top = fresh.top();
        debug_assert!((*worker).incoming_stack.is_none());
        (*worker).incoming_stack = Some(fresh);
        let mut args = ParkArgs { worker, cell };

        let payload = capture_and_run_on(
            cell.ctx.get(),
            fresh_top,
            park_body,
            &mut args as *mut ParkArgs as *mut c_void,
        );

        // ---- resumed: a wake was claimed for us.
        let worker = payload as *mut Worker;
        debug_assert!((*worker).current_stack.is_none());
        (*worker).current_stack = (*cell.stack.get()).take();
        debug_assert!((*worker).current_stack.is_some());
        if let Some(stack) = (*worker).pending_recycle.take() {
            (*worker).cache.put(stack);
        }
    }
}

// SAFETY: callers: invoked only via `capture_and_run_on` with `arg` pointing
// at the `ParkArgs` staged in the parking frame, which stays alive until a
// claimer resumes the continuation.
unsafe extern "C" fn park_body(arg: *mut c_void) -> ! {
    let _guard = AbortOnUnwind;
    unsafe {
        let args = &mut *(arg as *mut ParkArgs);
        let worker = args.worker;
        let cell = args.cell;
        WorkerStats::bump(&(*worker).stats().async_parks);
        obs::on_async_park(worker, cell_id(cell));

        // Move the blocked stack into the cell and release the unused
        // space below the captured stack pointer (§V-B, as for sync).
        let blocked = (*worker)
            .current_stack
            .take()
            .expect("parking control flow runs on a tracked stack");
        let sp = (*(*cell).ctx.get()).0;
        debug_assert!(blocked.contains(sp));
        let madvise = {
            let w: &Worker = &*worker;
            w.shared.config.madvise
        };
        blocked.release_below(sp, madvise);
        *(*cell).stack.get() = Some(blocked);
        (*worker).current_stack = (*worker).incoming_stack.take();

        if (*cell).state.park_publish() {
            find_work()
        }
        // A wake raced in while we were capturing (it saw RUNNING and
        // could only flag): the continuation is still ours — resume it in
        // place on the fresh stack.
        resume_ready(worker, cell)
    }
}

/// Resumes a claimed (or self-claimed) parked continuation. Diverges.
///
/// # Safety
/// The caller must own the continuation exclusively: either it popped the
/// cell from the ready queue (a `wake_claim` → `Claimed` edge put it
/// there), or it is the parker itself after a failed `park_publish`.
pub(crate) unsafe fn resume_ready(worker: *mut Worker, cell: *const AsyncCell) -> ! {
    unsafe {
        WorkerStats::bump(&(*worker).stats().async_resumes);
        obs::on_async_resume(worker, cell_id(cell));
        // The strand's governing scope becomes this worker's ambient, so
        // frames created after the resume inherit it.
        (*worker).cancel_scope = (*cell).scope.get();
        debug_assert!((*worker).pending_recycle.is_none());
        (*worker).pending_recycle = (*worker).current_stack.take();
        let ctx = *(*cell).ctx.get();
        debug_assert!(!ctx.is_null());
        resume(ctx, worker as *mut c_void)
    }
}

// ---- block_on ----

/// Runs a future to completion on the calling strand.
///
/// On a runtime worker, `Pending` parks the strand's *continuation* behind
/// the future's waker — the worker itself immediately returns to stealing,
/// and the continuation resumes on whichever worker dequeues the wake (so
/// the future and its output must be `Send`). The strand stays inside the
/// fork/join tree: it keeps its cancellation scope, and a cancelled scope
/// unwinds the strand with [`crate::Cancelled`] at the next wake.
///
/// Off-runtime the calling OS thread simply blocks (futex park) between
/// polls — useful for driving runtime-independent futures from tests; I/O
/// and timer futures need a runtime worker and panic elsewhere.
///
/// ```
/// let rt = nowa_runtime::Runtime::with_workers(2).unwrap();
/// let out = rt.run(|| nowa_runtime::task::block_on(async { 6 * 7 }));
/// assert_eq!(out, 42);
/// ```
pub fn block_on<F>(fut: F) -> F::Output
where
    F: Future + Send,
    F::Output: Send,
{
    let worker = current_worker();
    if worker.is_null() {
        return block_on_thread(fut);
    }
    // SAFETY: non-null means the calling thread's live worker.
    unsafe { block_on_worker(worker, fut) }
}

/// The worker-path `block_on`: poll → park → resume loop.
///
/// # Safety
/// `worker` must be the calling thread's live worker.
unsafe fn block_on_worker<F>(worker: *mut Worker, fut: F) -> F::Output
where
    F: Future + Send,
    F::Output: Send,
{
    // SAFETY: live worker per the function contract.
    let (shared_weak, scope) = unsafe {
        let w: &Worker = &*worker;
        (Arc::downgrade(&w.shared), w.cancel_scope)
    };
    let cell = Arc::new(AsyncCell::new(shared_weak, scope));
    // SAFETY: still the same live worker (no capture point since entry).
    unsafe {
        let w: &Worker = &*worker;
        cell.registry_slot
            .set(w.shared.async_waiters.register(&cell));
    }
    let _dereg = DeregisterOnDrop { cell: cell.clone() };
    let waker = waker_of(&cell);
    let mut cx = Context::from_waker(&waker);
    let mut fut = core::pin::pin!(fut);
    loop {
        // Cooperative checkpoint: first poll and every resumption. The
        // scope chain is live while this strand runs (block_on executes
        // inside the dynamic extent of every enclosing region).
        if let Some(reason) = unsafe { cancel::cancelled_chain(cell.scope.get()) } {
            // The `_dereg` guard completes the cell and deregisters it as
            // the raise unwinds through us.
            crate::api::raise_cancelled(core::ptr::null(), reason);
        }
        if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
            return out;
        }
        // SAFETY: re-derived live worker; the poll above may contain
        // capture points (nested joins inside the future), so the entry
        // `worker` must not be reused here.
        unsafe { park_on(current_worker(), &cell) };
        // Consume the notification before re-polling so a wake landing
        // mid-poll is preserved for the next park attempt.
        cell.state.resume_begin();
    }
}

// ---- the off-runtime fallback ----

/// A plain futex thread-parker backing `block_on` off-runtime.
struct ThreadWaker {
    /// 0 = idle, 1 = notified.
    state: AtomicU32,
}

const THREAD_VTABLE: RawWakerVTable =
    RawWakerVTable::new(thread_clone, thread_wake, thread_wake_by_ref, thread_drop);

fn thread_notify(parker: &ThreadWaker) {
    // Release pairs with the parker's Acquire CAS: the poll after the wake
    // must see what the waker published.
    parker.state.store(1, Ordering::Release);
    crate::sync::futex_wake(&parker.state, 1);
}

// SAFETY: `data` must come from `Arc::into_raw` in `block_on_thread` (the
// vtable is only ever paired with such pointers); clones by bumping the
// count.
unsafe fn thread_clone(data: *const ()) -> RawWaker {
    // SAFETY: `data` came from `Arc::into_raw` below.
    unsafe { Arc::increment_strong_count(data as *const ThreadWaker) };
    RawWaker::new(data, &THREAD_VTABLE)
}

// SAFETY: `data` must come from `Arc::into_raw` in `block_on_thread`;
// consumes the reference it stands for (RawWaker `wake` contract).
unsafe fn thread_wake(data: *const ()) {
    // SAFETY: consumes the reference `data` stands for.
    let parker = unsafe { Arc::from_raw(data as *const ThreadWaker) };
    thread_notify(&parker);
}

// SAFETY: `data` must come from `Arc::into_raw` in `block_on_thread`;
// borrows without consuming (ManuallyDrop keeps the count).
unsafe fn thread_wake_by_ref(data: *const ()) {
    // SAFETY: borrows without consuming.
    let parker = core::mem::ManuallyDrop::new(unsafe { Arc::from_raw(data as *const ThreadWaker) });
    thread_notify(&parker);
}

// SAFETY: `data` must come from `Arc::into_raw` in `block_on_thread`;
// consumes the reference it stands for (RawWaker `drop` contract).
unsafe fn thread_drop(data: *const ()) {
    // SAFETY: consumes the reference `data` stands for.
    drop(unsafe { Arc::from_raw(data as *const ThreadWaker) });
}

/// Off-runtime `block_on`: the OS thread futex-parks between polls.
fn block_on_thread<F: Future>(fut: F) -> F::Output {
    let parker = Arc::new(ThreadWaker {
        state: AtomicU32::new(0),
    });
    // SAFETY: the vtable upholds the RawWaker contract over Arc counts.
    let waker = unsafe {
        Waker::from_raw(RawWaker::new(
            Arc::into_raw(parker.clone()) as *const (),
            &THREAD_VTABLE,
        ))
    };
    let mut cx = Context::from_waker(&waker);
    let mut fut = core::pin::pin!(fut);
    loop {
        if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
            return out;
        }
        // Acquire pairs with the waker's Release store.
        while parker
            .state
            .compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            crate::sync::futex_wait(&parker.state, 0, None);
        }
    }
}

// ---- spawn_async join handle ----

/// Completion slot shared between a spawned async strand and its
/// [`JoinHandle`].
pub(crate) struct JoinInner<T> {
    /// 0 = pending, 1 = value stored. The Acquire/Release pair on this
    /// word is what publishes `value` to the awaiting side.
    done: AtomicU32,
    value: parking_lot::Mutex<Option<T>>,
    /// The awaiting side's waker, registered on a pending poll.
    waker: parking_lot::Mutex<Option<Waker>>,
}

impl<T> JoinInner<T> {
    fn complete(&self, value: T) {
        *self.value.lock() = Some(value);
        // Release: publishes the value write above to the Acquire load in
        // `JoinHandle::poll`.
        self.done.store(1, Ordering::Release);
        // Take-then-wake after the flag: a poller that registered before
        // our take gets woken; one that registers after will re-check
        // `done` and see 1 (no lost completion).
        let waker = self.waker.lock().take();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Awaitable handle to a strand spawned with
/// [`Region::spawn_async`](crate::api::Region::spawn_async).
///
/// Awaiting yields the future's output. Dropping the handle detaches it:
/// the strand still runs to completion and is still joined by the region's
/// sync; only the output is discarded.
///
/// # Panics
/// Awaiting panics if the handle is polled again after completion, or if
/// the spawned strand panicked (the panic itself propagates through the
/// region's sync; the handle then never completes — but the sibling-panic
/// cancellation broadcast wakes the awaiting strand to unwind, so no
/// deadlock results).
pub struct JoinHandle<T> {
    inner: Arc<JoinInner<T>>,
}

impl<T: Send> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        // Acquire pairs with the Release store in `complete`.
        if self.inner.done.load(Ordering::Acquire) == 1 {
            let value = self.inner.value.lock().take();
            return Poll::Ready(value.expect("JoinHandle polled after completion"));
        }
        *self.inner.waker.lock() = Some(cx.waker().clone());
        // Re-check after registering: `complete` may have taken the old
        // waker (or found none) between our load and our store.
        if self.inner.done.load(Ordering::Acquire) == 1 {
            let value = self.inner.value.lock().take();
            return Poll::Ready(value.expect("JoinHandle polled after completion"));
        }
        Poll::Pending
    }
}

/// Creates the linked (inner, handle) pair for `spawn_async`.
pub(crate) fn join_pair<T>() -> (Arc<JoinInner<T>>, JoinHandle<T>) {
    let inner = Arc::new(JoinInner {
        done: AtomicU32::new(0),
        value: parking_lot::Mutex::new(None),
        waker: parking_lot::Mutex::new(None),
    });
    let handle = JoinHandle {
        inner: inner.clone(),
    };
    (inner, handle)
}

/// Completes a spawned strand's handle (called from the spawn closure).
pub(crate) fn complete_join<T>(inner: &JoinInner<T>, value: T) {
    inner.complete(value);
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn wake_state_handoff_edges() {
        let ws = WakeState::new();
        // Running strand: wakes flag, further wakes are stale.
        assert_eq!(ws.wake_claim(), WakeClaim::Flagged);
        assert_eq!(ws.wake_claim(), WakeClaim::Stale);
        // The parker loses its publish to the flag and self-resumes.
        assert!(!ws.park_publish());
        ws.resume_begin();
        // Clean park: exactly one claim wins.
        assert!(ws.park_publish());
        assert_eq!(ws.wake_claim(), WakeClaim::Claimed);
        assert_eq!(ws.wake_claim(), WakeClaim::Stale);
        ws.resume_begin();
        // Terminal state absorbs everything.
        ws.complete();
        assert_eq!(ws.wake_claim(), WakeClaim::Stale);
        assert!(!ws.park_publish());
    }

    #[test]
    fn thread_block_on_drives_manual_future() {
        use crate::sync::{AtomicBool, Ordering as O};
        struct Yield {
            fired: AtomicBool,
        }
        impl Future for Yield {
            type Output = u32;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.fired.swap(true, O::Relaxed) {
                    Poll::Ready(7)
                } else {
                    // Wake from another thread after a delay, exercising
                    // the futex park (not just an immediate self-wake).
                    let waker = cx.waker().clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        waker.wake();
                    });
                    Poll::Pending
                }
            }
        }
        let out = block_on(Yield {
            fired: AtomicBool::new(false),
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn join_handle_completion_before_and_after_poll() {
        let (inner, handle) = join_pair::<u32>();
        complete_join(&inner, 11);
        assert_eq!(block_on(handle), 11);
    }
}
