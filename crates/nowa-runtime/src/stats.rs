//! Scheduler statistics, kept per worker to avoid false sharing.

use core::sync::atomic::{AtomicU64, Ordering};

/// Per-worker event counters. Each instance is cache-line padded; all
/// increments are `Relaxed` (statistics only, never synchronisation).
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Continuations offered to thieves (spawns).
    pub spawns: AtomicU64,
    /// Spawns whose continuation could not be offered (bounded deque full).
    pub unoffered: AtomicU64,
    /// Fast-path pops: the continuation was not stolen.
    pub fast_pops: AtomicU64,
    /// Successful steals from other workers.
    pub steals: AtomicU64,
    /// Steal attempts (including empty and retry outcomes).
    pub steal_attempts: AtomicU64,
    /// Local continuations taken by the work-finding loop.
    pub own_takes: AtomicU64,
    /// Child joins (continuation found stolen after child returned).
    pub joins: AtomicU64,
    /// Explicit syncs satisfied inline (no suspension).
    pub syncs_inline: AtomicU64,
    /// Explicit syncs that suspended the frame.
    pub suspensions: AtomicU64,
    /// Suspended sync continuations resumed by a last joiner.
    pub sync_resumes: AtomicU64,
    /// Root tasks executed.
    pub roots: AtomicU64,
}

impl WorkerStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// An aggregated snapshot over all workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Continuations offered to thieves (spawns).
    pub spawns: u64,
    /// Spawns that could not be offered (bounded deque full).
    pub unoffered: u64,
    /// Fast-path pops.
    pub fast_pops: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steal attempts.
    pub steal_attempts: u64,
    /// Local takes by the work-finding loop.
    pub own_takes: u64,
    /// Child joins.
    pub joins: u64,
    /// Inline syncs.
    pub syncs_inline: u64,
    /// Suspending syncs.
    pub suspensions: u64,
    /// Sync resumptions by last joiners.
    pub sync_resumes: u64,
    /// Root tasks executed.
    pub roots: u64,
}

impl StatsSnapshot {
    /// Aggregates per-worker counters.
    pub fn aggregate(stats: &[WorkerStats]) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for w in stats {
            s.spawns += w.spawns.load(Ordering::Relaxed);
            s.unoffered += w.unoffered.load(Ordering::Relaxed);
            s.fast_pops += w.fast_pops.load(Ordering::Relaxed);
            s.steals += w.steals.load(Ordering::Relaxed);
            s.steal_attempts += w.steal_attempts.load(Ordering::Relaxed);
            s.own_takes += w.own_takes.load(Ordering::Relaxed);
            s.joins += w.joins.load(Ordering::Relaxed);
            s.syncs_inline += w.syncs_inline.load(Ordering::Relaxed);
            s.suspensions += w.suspensions.load(Ordering::Relaxed);
            s.sync_resumes += w.sync_resumes.load(Ordering::Relaxed);
            s.roots += w.roots.load(Ordering::Relaxed);
        }
        s
    }

    /// Conservation invariant: every consumed continuation was either
    /// popped back by its pusher, stolen, or taken locally.
    pub fn continuations_consumed(&self) -> u64 {
        self.fast_pops + self.steals + self.own_takes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_workers() {
        let a = WorkerStats::default();
        let b = WorkerStats::default();
        a.spawns.store(3, Ordering::Relaxed);
        b.spawns.store(4, Ordering::Relaxed);
        a.steals.store(1, Ordering::Relaxed);
        let stats = [a, b];
        let s = StatsSnapshot::aggregate(&stats);
        assert_eq!(s.spawns, 7);
        assert_eq!(s.steals, 1);
    }

    #[test]
    fn padding_prevents_false_sharing() {
        assert!(core::mem::align_of::<WorkerStats>() >= 128);
    }
}
