//! Scheduler statistics, kept per worker to avoid false sharing.

use core::sync::atomic::{AtomicU64, Ordering};

/// Per-worker event counters. Each instance is cache-line padded; all
/// increments are `Relaxed` (statistics only, never synchronisation).
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Continuations offered to thieves (spawns).
    pub spawns: AtomicU64,
    /// Spawns whose continuation could not be offered (bounded deque full).
    pub unoffered: AtomicU64,
    /// Fast-path pops: the continuation was not stolen.
    pub fast_pops: AtomicU64,
    /// Successful steals from other workers.
    pub steals: AtomicU64,
    /// Steal attempts that found the victim's deque empty.
    pub steal_empty: AtomicU64,
    /// Steal attempts that lost a race and had to retry.
    pub steal_retry: AtomicU64,
    /// Local continuations taken by the work-finding loop.
    pub own_takes: AtomicU64,
    /// Child joins (continuation found stolen after child returned).
    pub joins: AtomicU64,
    /// Explicit syncs satisfied inline (no suspension).
    pub syncs_inline: AtomicU64,
    /// Explicit syncs that suspended the frame.
    pub suspensions: AtomicU64,
    /// Suspended sync continuations resumed by a last joiner.
    pub sync_resumes: AtomicU64,
    /// Cooperative checkpoints that raised cancellation (the strand
    /// started unwinding with a `Cancelled` payload).
    pub cancels: AtomicU64,
    /// Suspended syncs whose last joiner resumed them into a cancelled
    /// scope — the CQS-style abort path: the suspension was retired and
    /// the continuation woken specifically to unwind.
    pub aborts: AtomicU64,
    /// Root tasks executed.
    pub roots: AtomicU64,
    /// Futex parks entered by the idle engine (announce survived the
    /// validation re-scan and the worker actually waited).
    pub parks: AtomicU64,
    /// Targeted wakes issued by this worker's spawn/submit path.
    pub wakes_issued: AtomicU64,
    /// Parks that ended without a targeted wake (timeout, stale epoch, or
    /// an injected spurious return).
    pub wakes_spurious: AtomicU64,
    /// Nanoseconds spent inside futex parks.
    pub parked_ns: AtomicU64,
    /// Private→public promotion batches (split deque, §6g).
    pub promotions: AtomicU64,
    /// Items moved public by those batches.
    pub promoted_items: AtomicU64,
    /// Fast-path pops served entirely by the private segment — the pops
    /// that touched zero shared atomics.
    pub private_pops: AtomicU64,
    /// `block_on` continuations parked behind a waker (async surface).
    pub async_parks: AtomicU64,
    /// Parked async continuations resumed (by a claimer or in place after
    /// a lost publish race).
    pub async_resumes: AtomicU64,
    /// Reactor polls performed by this worker (epoll_wait + dispatch).
    pub reactor_polls: AtomicU64,
    /// I/O events dispatched by those polls.
    pub reactor_events: AtomicU64,
    /// Timer-wheel entries fired by this worker's reactor polls.
    pub timer_fires: AtomicU64,
    /// Work-finding loop iterations. Not part of [`StatsSnapshot`] (it's a
    /// liveness heartbeat, not a scheduling event): an idle worker still
    /// ticks every backoff period, so the stall watchdog can tell "parked
    /// and healthy" from "wedged".
    pub loop_ticks: AtomicU64,
}

impl WorkerStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter — the batch form of [`WorkerStats::bump`],
    /// used by the promotion bookkeeping.
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A monotonically increasing progress measure for the stall watchdog:
    /// any scheduling event or work-finding iteration advances it.
    pub fn progress(&self) -> u64 {
        self.loop_ticks
            .load(Ordering::Relaxed)
            .wrapping_add(self.spawns.load(Ordering::Relaxed))
            .wrapping_add(self.fast_pops.load(Ordering::Relaxed))
            .wrapping_add(self.joins.load(Ordering::Relaxed))
            .wrapping_add(self.syncs_inline.load(Ordering::Relaxed))
            .wrapping_add(self.suspensions.load(Ordering::Relaxed))
            .wrapping_add(self.sync_resumes.load(Ordering::Relaxed))
            // Async parking and resumption are progress for the same
            // reason suspensions are: the strand moved, it didn't wedge.
            .wrapping_add(self.async_parks.load(Ordering::Relaxed))
            .wrapping_add(self.async_resumes.load(Ordering::Relaxed))
            // Cancellation work is progress: a worker cooperatively
            // unwinding a cancelled subtree must not read as stalled.
            .wrapping_add(self.cancels.load(Ordering::Relaxed))
            .wrapping_add(self.aborts.load(Ordering::Relaxed))
            .wrapping_add(self.roots.load(Ordering::Relaxed))
            .wrapping_add(self.own_takes.load(Ordering::Relaxed))
            .wrapping_add(self.steals.load(Ordering::Relaxed))
    }
}

/// An aggregated snapshot over all workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Continuations offered to thieves (spawns).
    pub spawns: u64,
    /// Spawns that could not be offered (bounded deque full).
    pub unoffered: u64,
    /// Fast-path pops.
    pub fast_pops: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steal attempts that found an empty deque.
    pub steal_empty: u64,
    /// Steal attempts that lost a race and retried.
    pub steal_retry: u64,
    /// Local takes by the work-finding loop.
    pub own_takes: u64,
    /// Child joins.
    pub joins: u64,
    /// Inline syncs.
    pub syncs_inline: u64,
    /// Suspending syncs.
    pub suspensions: u64,
    /// Sync resumptions by last joiners.
    pub sync_resumes: u64,
    /// Cooperative checkpoints that raised cancellation.
    pub cancels: u64,
    /// Suspended syncs resumed into a cancelled scope (abort path).
    pub aborts: u64,
    /// Root tasks executed.
    pub roots: u64,
    /// Futex parks entered by the idle engine.
    pub parks: u64,
    /// Targeted wakes issued by spawn/submit paths.
    pub wakes_issued: u64,
    /// Parks that ended without a targeted wake.
    pub wakes_spurious: u64,
    /// Nanoseconds spent parked.
    pub parked_ns: u64,
    /// Private→public promotion batches (split deque).
    pub promotions: u64,
    /// Items moved public by promotion batches.
    pub promoted_items: u64,
    /// Fast-path pops served by the private segment.
    pub private_pops: u64,
    /// `block_on` continuations parked behind a waker.
    pub async_parks: u64,
    /// Parked async continuations resumed.
    pub async_resumes: u64,
    /// Reactor polls (epoll_wait + dispatch).
    pub reactor_polls: u64,
    /// I/O events dispatched by reactor polls.
    pub reactor_events: u64,
    /// Timer-wheel entries fired.
    pub timer_fires: u64,
}

impl StatsSnapshot {
    /// Aggregates per-worker counters.
    pub fn aggregate(stats: &[WorkerStats]) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for w in stats {
            s.spawns += w.spawns.load(Ordering::Relaxed);
            s.unoffered += w.unoffered.load(Ordering::Relaxed);
            s.fast_pops += w.fast_pops.load(Ordering::Relaxed);
            s.steals += w.steals.load(Ordering::Relaxed);
            s.steal_empty += w.steal_empty.load(Ordering::Relaxed);
            s.steal_retry += w.steal_retry.load(Ordering::Relaxed);
            s.own_takes += w.own_takes.load(Ordering::Relaxed);
            s.joins += w.joins.load(Ordering::Relaxed);
            s.syncs_inline += w.syncs_inline.load(Ordering::Relaxed);
            s.suspensions += w.suspensions.load(Ordering::Relaxed);
            s.sync_resumes += w.sync_resumes.load(Ordering::Relaxed);
            s.cancels += w.cancels.load(Ordering::Relaxed);
            s.aborts += w.aborts.load(Ordering::Relaxed);
            s.roots += w.roots.load(Ordering::Relaxed);
            s.parks += w.parks.load(Ordering::Relaxed);
            s.wakes_issued += w.wakes_issued.load(Ordering::Relaxed);
            s.wakes_spurious += w.wakes_spurious.load(Ordering::Relaxed);
            s.parked_ns += w.parked_ns.load(Ordering::Relaxed);
            s.promotions += w.promotions.load(Ordering::Relaxed);
            s.promoted_items += w.promoted_items.load(Ordering::Relaxed);
            s.private_pops += w.private_pops.load(Ordering::Relaxed);
            s.async_parks += w.async_parks.load(Ordering::Relaxed);
            s.async_resumes += w.async_resumes.load(Ordering::Relaxed);
            s.reactor_polls += w.reactor_polls.load(Ordering::Relaxed);
            s.reactor_events += w.reactor_events.load(Ordering::Relaxed);
            s.timer_fires += w.timer_fires.load(Ordering::Relaxed);
        }
        s
    }

    /// Adds another snapshot's counters into this one (e.g. to aggregate
    /// over several runtimes or benchmark runs).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.spawns += other.spawns;
        self.unoffered += other.unoffered;
        self.fast_pops += other.fast_pops;
        self.steals += other.steals;
        self.steal_empty += other.steal_empty;
        self.steal_retry += other.steal_retry;
        self.own_takes += other.own_takes;
        self.joins += other.joins;
        self.syncs_inline += other.syncs_inline;
        self.suspensions += other.suspensions;
        self.sync_resumes += other.sync_resumes;
        self.cancels += other.cancels;
        self.aborts += other.aborts;
        self.roots += other.roots;
        self.parks += other.parks;
        self.wakes_issued += other.wakes_issued;
        self.wakes_spurious += other.wakes_spurious;
        self.parked_ns += other.parked_ns;
        self.promotions += other.promotions;
        self.promoted_items += other.promoted_items;
        self.private_pops += other.private_pops;
        self.async_parks += other.async_parks;
        self.async_resumes += other.async_resumes;
        self.reactor_polls += other.reactor_polls;
        self.reactor_events += other.reactor_events;
        self.timer_fires += other.timer_fires;
    }

    /// Total steal attempts, successful or not.
    pub fn steal_attempts(&self) -> u64 {
        self.steals + self.steal_empty + self.steal_retry
    }

    /// Conservation invariant: every consumed continuation was either
    /// popped back by its pusher, stolen, or taken locally.
    pub fn continuations_consumed(&self) -> u64 {
        self.fast_pops + self.steals + self.own_takes
    }

    /// Fraction of steal attempts that succeeded (0 when none were made).
    pub fn steal_success_ratio(&self) -> f64 {
        let attempts = self.steal_attempts();
        if attempts == 0 {
            0.0
        } else {
            self.steals as f64 / attempts as f64
        }
    }

    /// Fraction of consumed continuations reclaimed on the fast path —
    /// popped back by their own spawner without any scheduling (0 when
    /// nothing was consumed). High values mean the paper's "work-first"
    /// discipline is holding: stealing stays the exception.
    pub fn fast_path_ratio(&self) -> f64 {
        let consumed = self.continuations_consumed();
        if consumed == 0 {
            0.0
        } else {
            self.fast_pops as f64 / consumed as f64
        }
    }

    /// Fraction of spawns whose continuation ever became publicly visible
    /// (0 when nothing was spawned). Low values mean the split layer is
    /// doing its job: most continuations lived and died in the private
    /// segment without a single shared-atomic store.
    pub fn promotion_ratio(&self) -> f64 {
        if self.spawns == 0 {
            0.0
        } else {
            self.promoted_items as f64 / self.spawns as f64
        }
    }

    /// Fraction of parks that ended by a targeted wake rather than a
    /// timeout/stale epoch (0 when no parks happened). High values mean
    /// the wake hook, not the `max_park` safety net, is doing the waking.
    pub fn targeted_wake_ratio(&self) -> f64 {
        if self.parks == 0 {
            0.0
        } else {
            (self.parks - self.wakes_spurious.min(self.parks)) as f64 / self.parks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_workers() {
        let a = WorkerStats::default();
        let b = WorkerStats::default();
        a.spawns.store(3, Ordering::Relaxed);
        b.spawns.store(4, Ordering::Relaxed);
        a.steals.store(1, Ordering::Relaxed);
        a.steal_empty.store(5, Ordering::Relaxed);
        b.steal_retry.store(2, Ordering::Relaxed);
        let stats = [a, b];
        let s = StatsSnapshot::aggregate(&stats);
        assert_eq!(s.spawns, 7);
        assert_eq!(s.steals, 1);
        assert_eq!(s.steal_empty, 5);
        assert_eq!(s.steal_retry, 2);
        assert_eq!(s.steal_attempts(), 8);
    }

    /// Watchdog regression: a worker that only cancels/aborts (cooperative
    /// unwinding of a cancelled subtree) must still read as progressing.
    #[test]
    fn cancellation_counts_as_progress() {
        let w = WorkerStats::default();
        let before = w.progress();
        w.cancels.fetch_add(1, Ordering::Relaxed);
        assert!(
            w.progress() > before,
            "cancel raise not counted as progress"
        );
        let before = w.progress();
        w.aborts.fetch_add(1, Ordering::Relaxed);
        assert!(
            w.progress() > before,
            "abort resume not counted as progress"
        );
    }

    #[test]
    fn padding_prevents_false_sharing() {
        assert!(core::mem::align_of::<WorkerStats>() >= 128);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = StatsSnapshot {
            spawns: 3,
            steals: 1,
            ..Default::default()
        };
        let b = StatsSnapshot {
            spawns: 4,
            steal_empty: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.spawns, 7);
        assert_eq!(a.steals, 1);
        assert_eq!(a.steal_empty, 2);
    }

    #[test]
    fn idle_counters_aggregate_and_merge() {
        let w = WorkerStats::default();
        w.parks.store(4, Ordering::Relaxed);
        w.wakes_issued.store(3, Ordering::Relaxed);
        w.wakes_spurious.store(1, Ordering::Relaxed);
        w.parked_ns.store(12_345, Ordering::Relaxed);
        let stats = [w];
        let mut s = StatsSnapshot::aggregate(&stats);
        assert_eq!(s.parks, 4);
        assert_eq!(s.wakes_issued, 3);
        assert_eq!(s.wakes_spurious, 1);
        assert_eq!(s.parked_ns, 12_345);
        assert!((s.targeted_wake_ratio() - 0.75).abs() < 1e-12);
        let other = StatsSnapshot {
            parks: 1,
            parked_ns: 5,
            ..Default::default()
        };
        s.merge(&other);
        assert_eq!(s.parks, 5);
        assert_eq!(s.parked_ns, 12_350);
        assert_eq!(StatsSnapshot::default().targeted_wake_ratio(), 0.0);
    }

    #[test]
    fn ratios() {
        let mut s = StatsSnapshot::default();
        assert_eq!(s.steal_success_ratio(), 0.0);
        assert_eq!(s.fast_path_ratio(), 0.0);
        s.steals = 1;
        s.steal_empty = 2;
        s.steal_retry = 1;
        s.fast_pops = 6;
        s.own_takes = 1;
        assert!((s.steal_success_ratio() - 0.25).abs() < 1e-12);
        // consumed = 6 + 1 + 1 = 8; fast-path share 6/8.
        assert!((s.fast_path_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn promotion_counters_aggregate_and_merge() {
        let w = WorkerStats::default();
        WorkerStats::add(&w.promotions, 2);
        WorkerStats::add(&w.promoted_items, 5);
        WorkerStats::bump(&w.private_pops);
        w.spawns.store(10, Ordering::Relaxed);
        let stats = [w];
        let mut s = StatsSnapshot::aggregate(&stats);
        assert_eq!(s.promotions, 2);
        assert_eq!(s.promoted_items, 5);
        assert_eq!(s.private_pops, 1);
        assert!((s.promotion_ratio() - 0.5).abs() < 1e-12);
        let other = StatsSnapshot {
            promotions: 1,
            promoted_items: 3,
            private_pops: 4,
            ..Default::default()
        };
        s.merge(&other);
        assert_eq!(s.promotions, 3);
        assert_eq!(s.promoted_items, 8);
        assert_eq!(s.private_pops, 5);
        assert_eq!(StatsSnapshot::default().promotion_ratio(), 0.0);
    }
}
