//! The safe fork/join surface.
//!
//! Continuation stealing means the code *after* a spawn may execute on a
//! different OS thread than the code before it. Rust's type system cannot
//! see the locals of an arbitrary spawning function, so the safe API is
//! built from combinators whose continuations are entirely made of
//! checkable closures:
//!
//! * [`join2`]/[`join3`]/[`join4`] — heterogeneous fork/join; the
//!   continuation after each spawned child is the next closure plus the
//!   join epilogue, all bounded `Send`.
//! * [`par_for`], [`map_reduce`], [`par_map`] — divide-and-conquer loops
//!   (the moral equivalent of `cilk_for`).
//!
//! Every combinator degrades to serial execution when called outside a
//! runtime worker — the *serial elision* of §V, for free.
//!
//! The linear loop-of-spawns shape of the paper's `foo()` (Fig. 4) and of
//! benchmarks like `nqueens` is available through the `unsafe`
//! [`Region`] API, which exposes the raw spawn/sync pair under a documented
//! contract.

use std::ops::Range;
use std::panic::resume_unwind;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cancel::{self, CancelCell, CancelReason, CancelToken, ScopeHandle};
use crate::foreign::{foreign_executor, foreign_join2};
use crate::obs;
use crate::record::Frame;
use crate::scheduler::{spawn_execute, sync_execute};
use crate::stats::WorkerStats;
use crate::worker::{current_worker, Worker};

/// True when the calling thread is a runtime worker executing a task.
pub fn in_task() -> bool {
    !current_worker().is_null()
}

/// The index of the worker executing the calling task, or `None` when the
/// calling thread is not a runtime worker.
///
/// The value identifies the worker of the *current* strand segment only:
/// code between a spawn and its sync may migrate between workers, so the
/// index may differ across those boundaries (re-query, never cache across
/// a join). Matches the `tid` tracks of the Chrome trace export.
pub fn worker_index() -> Option<usize> {
    let worker = current_worker();
    if worker.is_null() {
        None
    } else {
        // SAFETY: non-null means the pointer is the calling thread's live
        // worker; `index` is immutable after construction.
        Some(unsafe { (*worker).index })
    }
}

/// A raw pointer wrapper that asserts cross-thread transferability of the
/// pointee access it stands for.
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper itself carries no aliasing claims — each construction
// site asserts (and documents) that the pointee access it stands for is
// externally synchronised by the join protocol.
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

/// Syncs the frame when dropped — both on the normal path and when the
/// continuation unwinds, so no child strand can outlive the region's
/// borrows (fully-strict even under panics).
struct SyncOnDrop<'f> {
    frame: &'f Frame,
}

impl Drop for SyncOnDrop<'_> {
    fn drop(&mut self) {
        // SAFETY: we are the main-path control flow of this frame's region,
        // on a worker thread (the guard is only armed on the worker path).
        unsafe { sync_execute(self.frame) };
    }
}

/// Re-throws a panic captured from a child strand.
fn propagate(frame: &Frame) {
    if let Some(payload) = frame.core.take_panic() {
        resume_unwind(payload);
    }
}

/// Attributes and raises a cancellation unwind: bumps the cancel counter,
/// ticks the watchdog heartbeat (cooperative unwinding is forward
/// progress, not a stall) and emits the `Cancel` trace event.
#[cold]
#[inline(never)]
pub(crate) fn raise_cancelled(frame: *const Frame, reason: CancelReason) -> ! {
    let worker = current_worker();
    if !worker.is_null() {
        // SAFETY: non-null means the calling thread's live worker.
        unsafe {
            WorkerStats::bump(&(*worker).stats().cancels);
            WorkerStats::bump(&(*worker).stats().loop_ticks);
            obs::on_cancel(worker, frame);
        }
    }
    cancel::raise(reason)
}

/// Stamps `frame` with the worker's ambient cancellation scope and unwinds
/// with [`crate::Cancelled`] if that scope's chain is already cancelled —
/// the entry checkpoint of every safe combinator, placed *before* the sync
/// guard is armed so a cancelled entry unwinds with no children to wait
/// for. One relaxed load on the never-cancelled unscoped path.
///
/// # Safety
/// `worker` must be the calling thread's live worker, with no capture
/// point between its derivation and this call.
// lint: hot-path
#[inline]
unsafe fn adopt_scope_and_check(worker: *mut Worker, frame: &Frame) {
    // SAFETY: live worker per the function contract.
    let scope = unsafe { (*worker).cancel_scope };
    frame.core.scope.set(scope);
    // SAFETY: the ambient chain is live while this strand runs.
    if let Some(reason) = unsafe { cancel::cancelled_chain(scope) } {
        raise_cancelled(frame, reason);
    }
}

/// Cooperative checkpoint against the worker's ambient scope (no frame
/// involved); a no-op outside a runtime.
fn checkpoint_ambient() {
    let worker = current_worker();
    if worker.is_null() {
        return;
    }
    // SAFETY: non-null means the calling thread's live worker, and its
    // ambient chain is live while this strand runs.
    unsafe {
        let scope = (*worker).cancel_scope;
        if let Some(reason) = cancel::cancelled_chain(scope) {
            raise_cancelled(core::ptr::null(), reason);
        }
    }
}

/// Forks `a` and runs `b`; returns both results once both finished.
///
/// `a` is spawned (it runs immediately on this worker; the *continuation* —
/// running `b` and joining — is what thieves may steal, §II-B), then `b`
/// runs, then the region syncs. Panics from either closure propagate.
///
/// Outside a runtime this degenerates to `(a(), b())` — the serial elision.
///
/// ```
/// # let rt = nowa_runtime::Runtime::with_workers(2).unwrap();
/// # rt.run(|| {
/// fn fib(n: u64) -> u64 {
///     if n < 2 {
///         return n;
///     }
///     let (a, b) = nowa_runtime::api::join2(|| fib(n - 1), || fib(n - 2));
///     a + b
/// }
/// assert_eq!(fib(20), 6765);
/// # });
/// ```
pub fn join2<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = current_worker();
    if worker.is_null() {
        if let Some(fx) = foreign_executor() {
            return foreign_join2(fx, a, b);
        }
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let frame = Frame::new();
    // SAFETY: `worker` is the calling thread's live worker (non-null
    // above); no capture point lies between its derivation and here.
    unsafe { adopt_scope_and_check(worker, &frame) };
    let mut slot_a: Option<RA> = None;
    let ptr_a = SendPtr(&mut slot_a as *mut Option<RA>);
    let rb;
    {
        let guard = SyncOnDrop { frame: &frame };
        // SAFETY: the guard guarantees a completed sync before `frame`,
        // `slot_a` or anything borrowed by `a`/`b` dies, even when `b`
        // unwinds. Everything live across the spawn is `Send`-bounded by
        // this function's signature.
        unsafe {
            spawn_execute(&frame, move || {
                let ptr_a = ptr_a; // capture the Send wrapper, not its field
                let result = a();
                *ptr_a.0 = Some(result);
            });
        }
        rb = b();
        drop(guard); // the explicit sync point
    }
    propagate(&frame);
    let ra = slot_a.take().expect("child strand completed before sync");
    (ra, rb)
}

/// Forks `a` and `b`, runs `c`; returns all three results.
pub fn join3<A, B, C, RA, RB, RC>(a: A, b: B, c: C) -> (RA, RB, RC)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    C: FnOnce() -> RC + Send,
    RA: Send,
    RB: Send,
    RC: Send,
{
    let worker = current_worker();
    if worker.is_null() {
        if foreign_executor().is_some() {
            let (ra, (rb, rc)) = join2(a, move || join2(b, c));
            return (ra, rb, rc);
        }
        let ra = a();
        let rb = b();
        let rc = c();
        return (ra, rb, rc);
    }
    let frame = Frame::new();
    // SAFETY: as in `join2`.
    unsafe { adopt_scope_and_check(worker, &frame) };
    let mut slot_a: Option<RA> = None;
    let mut slot_b: Option<RB> = None;
    let ptr_a = SendPtr(&mut slot_a as *mut Option<RA>);
    let ptr_b = SendPtr(&mut slot_b as *mut Option<RB>);
    let rc;
    {
        let guard = SyncOnDrop { frame: &frame };
        // SAFETY: as in `join2`.
        unsafe {
            spawn_execute(&frame, move || {
                let ptr_a = ptr_a; // capture the Send wrapper, not its field
                let result = a();
                *ptr_a.0 = Some(result);
            });
            spawn_execute(&frame, move || {
                let ptr_b = ptr_b; // capture the Send wrapper, not its field
                let result = b();
                *ptr_b.0 = Some(result);
            });
        }
        rc = c();
        drop(guard);
    }
    propagate(&frame);
    (
        slot_a.take().expect("child a completed"),
        slot_b.take().expect("child b completed"),
        rc,
    )
}

/// Forks `a`, `b` and `c`, runs `d`; returns all four results.
pub fn join4<A, B, C, D, RA, RB, RC, RD>(a: A, b: B, c: C, d: D) -> (RA, RB, RC, RD)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    C: FnOnce() -> RC + Send,
    D: FnOnce() -> RD + Send,
    RA: Send,
    RB: Send,
    RC: Send,
    RD: Send,
{
    let worker = current_worker();
    if worker.is_null() {
        if foreign_executor().is_some() {
            let ((ra, rb), (rc, rd)) = join2(move || join2(a, b), move || join2(c, d));
            return (ra, rb, rc, rd);
        }
        let ra = a();
        let rb = b();
        let rc = c();
        let rd = d();
        return (ra, rb, rc, rd);
    }
    let frame = Frame::new();
    // SAFETY: as in `join2`.
    unsafe { adopt_scope_and_check(worker, &frame) };
    let mut slot_a: Option<RA> = None;
    let mut slot_b: Option<RB> = None;
    let mut slot_c: Option<RC> = None;
    let ptr_a = SendPtr(&mut slot_a as *mut Option<RA>);
    let ptr_b = SendPtr(&mut slot_b as *mut Option<RB>);
    let ptr_c = SendPtr(&mut slot_c as *mut Option<RC>);
    let rd;
    {
        let guard = SyncOnDrop { frame: &frame };
        // SAFETY: as in `join2`.
        unsafe {
            spawn_execute(&frame, move || {
                let ptr_a = ptr_a; // capture the Send wrapper, not its field
                let result = a();
                *ptr_a.0 = Some(result);
            });
            spawn_execute(&frame, move || {
                let ptr_b = ptr_b; // capture the Send wrapper, not its field
                let result = b();
                *ptr_b.0 = Some(result);
            });
            spawn_execute(&frame, move || {
                let ptr_c = ptr_c; // capture the Send wrapper, not its field
                let result = c();
                *ptr_c.0 = Some(result);
            });
        }
        rd = d();
        drop(guard);
    }
    propagate(&frame);
    (
        slot_a.take().expect("child a completed"),
        slot_b.take().expect("child b completed"),
        slot_c.take().expect("child c completed"),
        rd,
    )
}

/// Runs `body(i)` for every `i` in `range` with divide-and-conquer
/// parallelism; ranges of at most `grain` indices run serially.
pub fn par_for<F>(range: Range<usize>, grain: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    // Every recursion level re-enters here, so this one checkpoint covers
    // interior splits and serial leaves alike.
    checkpoint_ambient();
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len <= grain {
        for i in range {
            body(i);
        }
        return;
    }
    let mid = range.start + len / 2;
    join2(
        || par_for(range.start..mid, grain, body),
        || par_for(mid..range.end, grain, body),
    );
}

/// Maps `map(i)` over `range` and folds the results with `reduce`, in
/// divide-and-conquer fashion. Returns `None` for an empty range.
///
/// `reduce` must be associative for the result to be deterministic; the
/// fold order is a balanced binary tree over the index space.
pub fn map_reduce<T, M, R>(range: Range<usize>, grain: usize, map: &M, reduce: &R) -> Option<T>
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return None;
    }
    if len <= grain {
        let mut acc = map(range.start);
        for i in range.start + 1..range.end {
            acc = reduce(acc, map(i));
        }
        return Some(acc);
    }
    let mid = range.start + len / 2;
    let (left, right) = join2(
        || map_reduce(range.start..mid, grain, map, reduce),
        || map_reduce(mid..range.end, grain, map, reduce),
    );
    match (left, right) {
        (Some(l), Some(r)) => Some(reduce(l, r)),
        (l, r) => l.or(r),
    }
}

/// Writes `f(&input[i])` into `output[i]` for all `i`, in parallel.
///
/// Panics if the slices have different lengths.
pub fn par_map<T, U, F>(input: &[T], output: &mut [U], grain: usize, f: &F)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert_eq!(input.len(), output.len(), "par_map slice length mismatch");
    let grain = grain.max(1);
    if input.len() <= grain {
        for (o, i) in output.iter_mut().zip(input) {
            *o = f(i);
        }
        return;
    }
    let mid = input.len() / 2;
    let (in_lo, in_hi) = input.split_at(mid);
    let (out_lo, out_hi) = output.split_at_mut(mid);
    join2(
        || par_map(in_lo, out_lo, grain, f),
        || par_map(in_hi, out_hi, grain, f),
    );
}

/// Spawns `f(item)` for every item of `iter` on one frame (the linear
/// loop-of-spawns anatomy of the paper's `foo()`, Fig. 4), syncing once at
/// the end.
///
/// Unlike [`Region::spawn`] this is *safe*: the continuation between the
/// spawns is this function's own loop, and everything live across the
/// spawn points is bounded by the signature — the iterator (`I: Send`, it
/// migrates with the continuation), the body (`&F` with `F: Sync`) and the
/// items (`T: Send`).
///
/// ```
/// # let rt = nowa_runtime::Runtime::with_workers(2).unwrap();
/// # rt.run(|| {
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let sum = AtomicU64::new(0);
/// nowa_runtime::api::for_each(0..100u64, &|i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// # });
/// ```
pub fn for_each<I, T, F>(iter: I, f: &F)
where
    I: Iterator<Item = T> + Send,
    T: Send,
    F: Fn(T) + Sync,
{
    let worker = current_worker();
    if worker.is_null() {
        for item in iter {
            f(item);
        }
        return;
    }
    let frame = Frame::new();
    // SAFETY: as in `join2`.
    unsafe { adopt_scope_and_check(worker, &frame) };
    let scope = frame.core.scope.get();
    {
        let guard = SyncOnDrop { frame: &frame };
        for item in iter {
            // Skip not-yet-started children once a sibling panicked or
            // the governing scope was cancelled; the guard still syncs
            // the already-running ones and `propagate` rethrows.
            // SAFETY: the frame's scope chain is live while we run.
            if frame.core.is_flagged() || unsafe { cancel::cancelled_chain(scope) }.is_some() {
                break;
            }
            // SAFETY: values live across the spawn are `iter` (Send),
            // `f` (&F, F: Sync ⇒ &F: Send), `frame`/`guard` (runtime
            // state); the guard syncs before any of them dies, even when
            // unwinding.
            unsafe {
                spawn_execute(&frame, move || f(item));
            }
        }
        drop(guard);
    }
    propagate(&frame);
    // Cancellation must surface even when every started child completed
    // cleanly (e.g. the loop broke before any child saw the flag).
    // SAFETY: as above.
    if let Some(reason) = unsafe { cancel::cancelled_chain(scope) } {
        raise_cancelled(&frame, reason);
    }
}

/// A raw spawn region: the linear loop-of-spawns shape of the paper's
/// `foo()` (Fig. 4) and of benchmarks like `nqueens`, where one frame hosts
/// many spawns joined by a single sync.
///
/// The region syncs on drop, so child strands never outlive it, but the
/// *spawn* operation itself is `unsafe` — see [`Region::spawn`].
pub struct Region {
    frame: Frame,
    /// The region's own cancellation scope; `Some` iff built with
    /// [`Region::cancellable`] / [`Region::with_deadline`]. The `Arc`
    /// keeps the cell alive for outstanding [`CancelToken`]s and the
    /// deadline queue after the region itself is gone.
    scope: Option<Arc<ScopeHandle>>,
    /// Children deferred under a foreign (child-stealing) executor; run as
    /// a balanced join tree at the sync. Deferral *is* child-stealing
    /// semantics — the continuation proceeds, children run later.
    deferred: core::cell::RefCell<Vec<Box<dyn FnOnce() + Send + 'static>>>,
    // Spawning from several threads would violate the protocol's
    // Invariant II (single main path); keep the type !Sync and !Send.
    _not_sync: core::marker::PhantomData<*mut ()>,
    // `!Unpin`, so `Pin<&Region>` is a real address-stability witness:
    // [`Region::spawn_async`] is the *safe* spawn, and its soundness
    // leans on the pinned region (whose Drop syncs) outliving every
    // child frame pointer.
    _pin: core::marker::PhantomPinned,
}

/// Runs a slice of deferred children as a balanced parallel join tree.
fn run_deferred(tasks: &mut [Option<Box<dyn FnOnce() + Send + 'static>>]) {
    match tasks.len() {
        0 => {}
        1 => (tasks[0].take().expect("deferred child present"))(),
        n => {
            let (lo, hi) = tasks.split_at_mut(n / 2);
            join2(move || run_deferred(lo), move || run_deferred(hi));
        }
    }
}

impl Region {
    /// A fresh region, governed by the enclosing scope (no scope of its
    /// own — it cannot be cancelled individually, costs no allocation).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Region {
        Region::build(None)
    }

    /// A region with its own cancellation scope, chained under the
    /// enclosing one: cancelling the enclosing scope (or shutting the
    /// runtime down) still cancels this region, and
    /// [`cancel_token`](Region::cancel_token) cancels it individually.
    pub fn cancellable() -> Region {
        Region::build(Some(Region::new_scope()))
    }

    /// A cancellable region whose scope is cancelled automatically
    /// ([`CancelReason::Deadline`]) once
    /// `timeout` elapses, driven by the runtime's watchdog thread.
    /// Outside a runtime the deadline is inert (serial elision runs to
    /// completion); the token still works.
    ///
    /// ```
    /// use std::time::Duration;
    /// use nowa_runtime::{CancelReason, Cancelled, Config, Region, Runtime};
    ///
    /// let rt = Runtime::new(Config::with_workers(2)).unwrap();
    /// let out = rt.run(|| {
    ///     std::panic::catch_unwind(|| {
    ///         let region = Region::with_deadline(Duration::from_millis(30));
    ///         loop {
    ///             // A long cooperative computation: each checkpoint
    ///             // raises `Cancelled` once the deadline fires.
    ///             region.checkpoint();
    ///             std::hint::spin_loop();
    ///         }
    ///     })
    /// });
    /// let payload = out.unwrap_err();
    /// let cancelled = payload.downcast_ref::<Cancelled>().unwrap();
    /// assert_eq!(cancelled.reason, CancelReason::Deadline);
    /// ```
    pub fn with_deadline(timeout: Duration) -> Region {
        let region = Region::cancellable();
        if let Some(scope) = &region.scope {
            let worker = current_worker();
            if !worker.is_null() {
                // SAFETY: non-null means the calling thread's live worker.
                unsafe {
                    let shared = &(*worker).shared;
                    shared.deadlines.arm(scope, Instant::now() + timeout);
                }
            }
        }
        region
    }

    /// A clonable, sendable token that cancels this region, or `None` for
    /// a plain [`Region::new`] region (no scope of its own).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.scope.as_ref().map(|s| {
            let worker = current_worker();
            let shared = if worker.is_null() {
                std::sync::Weak::new()
            } else {
                // SAFETY: non-null means the calling thread's live worker.
                // The token keeps only a Weak: it must not prolong the
                // runtime's shared state.
                unsafe { Arc::downgrade(&(*worker).shared) }
            };
            CancelToken {
                scope: s.clone(),
                shared,
            }
        })
    }

    /// Explicit cooperative checkpoint: unwinds with
    /// [`Cancelled`](crate::Cancelled) if this region's scope chain has
    /// been cancelled. Intended for long serial stretches between spawns
    /// (the combinators checkpoint on their own).
    pub fn checkpoint(&self) {
        let scope = self.frame.core.scope.get();
        if scope.is_null() {
            return;
        }
        // SAFETY: the chain head is either our own live `ScopeHandle` or
        // the ambient scope adopted at build time, whose chain outlives
        // this region structurally.
        if let Some(reason) = unsafe { cancel::cancelled_chain(scope) } {
            raise_cancelled(&self.frame, reason);
        }
    }

    /// A scope cell chained under the calling strand's ambient scope (or
    /// standalone outside a runtime).
    fn new_scope() -> Arc<ScopeHandle> {
        let worker = current_worker();
        let parent: *const CancelCell = if worker.is_null() {
            core::ptr::null()
        } else {
            // SAFETY: non-null means the calling thread's live worker.
            unsafe { (*worker).cancel_scope }
        };
        Arc::new(ScopeHandle {
            cell: CancelCell::new(parent),
        })
    }

    fn build(scope: Option<Arc<ScopeHandle>>) -> Region {
        let region = Region {
            frame: Frame::new(),
            scope,
            deferred: core::cell::RefCell::new(Vec::new()),
            _not_sync: core::marker::PhantomData,
            _pin: core::marker::PhantomPinned,
        };
        let worker = current_worker();
        match &region.scope {
            Some(s) => {
                // The Arc pins the cell's address, so the frame pointer
                // stays valid across moves of the Region itself.
                region.frame.core.scope.set(&s.cell);
                if !worker.is_null() {
                    // SAFETY: the calling thread's live worker. Children
                    // spawned here must inherit the region scope.
                    unsafe { (*worker).cancel_scope = &s.cell };
                }
            }
            None if !worker.is_null() => {
                // SAFETY: as above.
                let ambient = unsafe { (*worker).cancel_scope };
                region.frame.core.scope.set(ambient);
            }
            None => {}
        }
        region
    }

    /// Resets the worker's ambient scope to this region's parent after the
    /// sync — the main path has left the region's dynamic extent. The
    /// worker is re-derived: the sync may have migrated us.
    fn restore_ambient(&self) {
        if let Some(scope) = &self.scope {
            let worker = current_worker();
            if !worker.is_null() {
                // SAFETY: the calling thread's live worker.
                unsafe { (*worker).cancel_scope = scope.cell.parent() };
            }
        }
    }

    /// Spawns `f` as a child strand of this region: `f` runs now; the
    /// continuation (the caller's code after this call, up to
    /// [`sync`](Region::sync)) is offered to thieves and may therefore
    /// resume on a different OS thread.
    ///
    /// Outside a runtime worker, runs `f` inline.
    ///
    /// # Safety
    ///
    /// Between the first `spawn` and the completion of the matching
    /// [`sync`](Region::sync) (or the region's drop):
    ///
    /// * the region must not be moved;
    /// * every value the caller keeps live across this call must be `Send`
    ///   (it may be touched from another OS thread after a steal) — this is
    ///   the obligation the compiler cannot check for you;
    /// * thread-identity-dependent state (thread-locals, lock guards held
    ///   across the call) must not be relied upon afterwards;
    /// * `f` must capture by value (`move`) anything the continuation
    ///   mutates. The classic footgun is a spawn loop whose closure borrows
    ///   the loop variable: once the continuation is stolen, the thief
    ///   advances the loop *concurrently with the still-running child*, and
    ///   a by-reference capture reads whatever value the variable holds by
    ///   the time the child gets there — a data race on the loop frame.
    ///
    /// # Example
    ///
    /// A loop of spawns joined by one sync — the paper's Fig. 4 shape.
    /// Children write through a shared atomic, and each closure `move`s
    /// its loop variable:
    ///
    /// ```
    /// use std::sync::atomic::{AtomicU64, Ordering};
    /// use nowa_runtime::{Config, Region, Runtime};
    ///
    /// let rt = Runtime::new(Config::with_workers(2)).unwrap();
    /// let total = rt.run(|| {
    ///     let sum = AtomicU64::new(0);
    ///     let region = Region::new();
    ///     for i in 1..=4u64 {
    ///         let sum = &sum;
    ///         // SAFETY: the region is not moved; `sum` is a Send
    ///         // reference outliving the sync; `i` is moved, not
    ///         // borrowed from the loop frame.
    ///         unsafe {
    ///             region.spawn(move || {
    ///                 sum.fetch_add(i * i, Ordering::Relaxed);
    ///             });
    ///         }
    ///     }
    ///     region.sync();
    ///     sum.load(Ordering::Relaxed)
    /// });
    /// assert_eq!(total, 1 + 4 + 9 + 16);
    /// ```
    pub unsafe fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send,
    {
        // Cooperative cancellation: a flagged frame means a child already
        // recorded a panic/cancel — skip not-yet-started siblings (the
        // sync surfaces the payload). A cancelled scope chain unwinds us
        // here, before the child ever starts.
        if self.frame.core.is_flagged() {
            return;
        }
        self.checkpoint();
        if in_task() {
            let worker = current_worker();
            // Re-establish this region as the ambient scope: an inner
            // region's sync (or a steal/migration) may have repointed the
            // worker's ambient since our build.
            // SAFETY: in_task() implies a live worker on this thread.
            unsafe { (*worker).cancel_scope = self.frame.core.scope.get() };
            unsafe { spawn_execute(&self.frame, f) };
            return;
        }
        if foreign_executor().is_some() {
            // Child-stealing semantics: defer the child, continue the
            // caller; the deferred batch runs at the sync.
            let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(f);
            // SAFETY: lifetime erasure; the Region contract requires the
            // sync (or drop) to complete before anything `f` borrows dies.
            let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { core::mem::transmute(boxed) };
            self.deferred.borrow_mut().push(boxed);
            return;
        }
        f();
    }

    /// The explicit sync point: returns once every spawned strand joined.
    /// Propagates the first child panic. May return on a different OS
    /// thread than it was called on.
    pub fn sync(&self) {
        if in_task() {
            // SAFETY: we are the region's main path on a worker thread.
            unsafe { sync_execute(&self.frame) };
        } else {
            let mut deferred: Vec<_> = self.deferred.borrow_mut().drain(..).map(Some).collect();
            run_deferred(&mut deferred);
        }
        self.restore_ambient();
        propagate(&self.frame);
        // A cancelled region whose children all finished cleanly still
        // unwinds: cancellation must surface even with no recorded payload.
        self.checkpoint();
    }

    /// Drives `fut` to completion on this region's main path, under the
    /// region's cancellation scope.
    ///
    /// The strand parks whenever `fut` is pending (the worker keeps
    /// scheduling other work) and is resumed by the future's waker; the
    /// park re-checks the region's scope chain, so cancelling the region
    /// — token, deadline, or runtime shutdown — unwinds a parked await
    /// with [`Cancelled`](crate::Cancelled).
    ///
    /// ```
    /// use nowa_runtime::{Config, Region, Runtime};
    ///
    /// let rt = Runtime::new(Config::with_workers(2)).unwrap();
    /// let out = rt.run(|| {
    ///     let region = Region::cancellable();
    ///     region.block_on(async { 6 * 7 })
    /// });
    /// assert_eq!(out, 42);
    /// ```
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: core::future::Future + Send,
        F::Output: Send,
    {
        let worker = current_worker();
        if !worker.is_null() {
            // Re-establish this region as the ambient scope (an inner
            // region's sync or a migration may have repointed it), so the
            // parked cell checkpoints against the right chain.
            // SAFETY: non-null means the calling thread's live worker.
            unsafe { (*worker).cancel_scope = self.frame.core.scope.get() };
        }
        crate::task::block_on(fut)
    }

    /// Spawns `fut` as a child strand of this region and returns a
    /// [`JoinHandle`](crate::task::JoinHandle) resolving to its output.
    /// This is the *safe* spawn: `Pin` witnesses that the region's address
    /// is stable until its destructor runs, and the destructor syncs — so
    /// the child's frame pointer into the region cannot dangle, which is
    /// exactly the obligation [`Region::spawn`] leaves to the caller.
    ///
    /// The child runs `fut` under the region's cancellation scope on the
    /// continuation substrate ([`crate::task::block_on`] inside a spawned
    /// strand); the region's [`sync`](Region::sync)/drop still joins it
    /// like any other child, whether or not the handle is awaited.
    ///
    /// A child that panics is surfaced by [`sync`](Region::sync), not by
    /// the handle; await handles before the sync only in cancellable
    /// regions (a sibling panic cancels the region scope, which wakes and
    /// unwinds parked awaits — an unscoped region would leave them parked
    /// until the sync).
    ///
    /// ```
    /// use std::pin::pin;
    /// use nowa_runtime::{Config, Region, Runtime};
    ///
    /// let rt = Runtime::new(Config::with_workers(2)).unwrap();
    /// let total = rt.run(|| {
    ///     let region = pin!(Region::cancellable());
    ///     let region = region.as_ref();
    ///     let a = region.spawn_async(async { 40 });
    ///     let b = region.spawn_async(async { 2 });
    ///     let sum = region.block_on(async { a.await + b.await });
    ///     region.sync();
    ///     sum
    /// });
    /// assert_eq!(total, 42);
    /// ```
    pub fn spawn_async<F>(self: core::pin::Pin<&Self>, fut: F) -> crate::task::JoinHandle<F::Output>
    where
        F: core::future::Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let this = core::pin::Pin::get_ref(self);
        let (inner, handle) = crate::task::join_pair();
        // SAFETY: the Pin contract guarantees the Region's address stays
        // stable until Drop, and Drop syncs — the region (and its frame)
        // outlives the child strand. The closure captures only `'static`
        // Send values (the future and the Arc'd completion slot), so no
        // borrow outlives the sync either.
        unsafe {
            this.spawn(move || {
                let out = crate::task::block_on(fut);
                crate::task::complete_join(&inner, out);
            });
        }
        handle
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        if in_task() {
            // SAFETY: main path; ensures full strictness even on unwind.
            unsafe { sync_execute(&self.frame) };
        } else if !self.deferred.borrow().is_empty() {
            // Deferred children hold erased borrows; they must run before
            // the region (and those borrows) die.
            let mut deferred: Vec<_> = self.deferred.borrow_mut().drain(..).map(Some).collect();
            run_deferred(&mut deferred);
        }
        self.restore_ambient();
        // Panics captured from children are intentionally dropped here if
        // the region is dropped during an unwind; `sync()` on the normal
        // path propagates them.
    }
}
