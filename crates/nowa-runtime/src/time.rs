//! Timers for the async surface: a hashed timer wheel driving `sleep` and
//! `timeout`.
//!
//! The wheel is coarse by design: ~1 ms ticks, 256 slots, entries hashed
//! by deadline tick with no per-slot ordering (a slot is drained by
//! comparing each entry's absolute deadline tick, so wrap-around costs
//! nothing extra). Serving timeouts are tens of milliseconds; a 1 ms
//! grain is far below the noise floor of an epoll wake (DESIGN.md §6h
//! discusses the granularity choice).
//!
//! Nobody sleeps *on* the wheel. It is advanced from two places:
//!
//! * the reactor poll — the claimed poller computes its `epoll_wait`
//!   timeout as `min(max_park, next deadline)` and advances the wheel on
//!   every return, so timer latency tracks I/O latency while any worker
//!   is idle;
//! * the watchdog thread — the same thread that fires region deadlines
//!   (PR 7's plumbing) advances the wheel each sweep, bounding timer
//!   staleness even when every worker is busy for a long stretch.
//!
//! [`timeout`] composes the wheel with ordinary future polling; for
//! whole-region deadlines that *cancel* (rather than resolve a future),
//! [`Region::with_deadline`](crate::api::Region::with_deadline) remains
//! the right tool — `timeout` returns control, `with_deadline` unwinds.

use core::future::Future;
use core::pin::Pin;
use core::task::{Context, Poll, Waker};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::worker::{current_worker, Shared};

/// Wheel granularity. One tick ≈ 1 ms.
const TICK_NS: u64 = 1_000_000;
/// Slot count; deadline ticks hash into slots modulo this.
const SLOTS: usize = 256;

/// One armed timer.
struct TimerEntry {
    id: u64,
    deadline_tick: u64,
    waker: Waker,
}

struct WheelInner {
    /// Wheel epoch; ticks are measured from here.
    start: Instant,
    /// The last tick `advance` processed.
    cursor: u64,
    next_id: u64,
    /// Live entries, total.
    count: usize,
    /// Minimum live deadline tick (`u64::MAX` when empty). Maintained on
    /// insert, recomputed after a firing advance.
    earliest: u64,
    slots: Vec<Vec<TimerEntry>>,
}

impl WheelInner {
    fn tick_of(&self, at: Instant) -> u64 {
        let ns = at.saturating_duration_since(self.start).as_nanos() as u64;
        ns / TICK_NS
    }

    fn recompute_earliest(&mut self) {
        let mut min = u64::MAX;
        for slot in &self.slots {
            for e in slot {
                min = min.min(e.deadline_tick);
            }
        }
        self.earliest = min;
    }
}

/// The hashed timer wheel. One per runtime, owned by the reactor.
pub(crate) struct TimerWheel {
    inner: parking_lot::Mutex<WheelInner>,
}

impl TimerWheel {
    pub(crate) fn new() -> TimerWheel {
        TimerWheel {
            inner: parking_lot::Mutex::new(WheelInner {
                start: Instant::now(),
                cursor: 0,
                next_id: 0,
                count: 0,
                earliest: u64::MAX,
                slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            }),
        }
    }

    /// Arms a timer. Returns `(id, slot, became_earliest)`; the caller
    /// kicks the reactor when the new deadline undercuts the previous
    /// earliest (a sleeping poller may be napping past it).
    pub(crate) fn insert(&self, deadline: Instant, waker: Waker) -> (u64, usize, bool) {
        let mut w = self.inner.lock();
        // Round *up* and never behind the cursor: a timer must not fire
        // before its deadline, and a past-due deadline fires on the very
        // next advance.
        let tick = w.tick_of(deadline).max(w.cursor) + 1;
        let id = w.next_id;
        w.next_id += 1;
        let slot = (tick % SLOTS as u64) as usize;
        w.slots[slot].push(TimerEntry {
            id,
            deadline_tick: tick,
            waker,
        });
        w.count += 1;
        let became_earliest = tick < w.earliest;
        if became_earliest {
            w.earliest = tick;
        }
        (id, slot, became_earliest)
    }

    /// Disarms `id` (hashed into `slot`). No-op if it already fired.
    pub(crate) fn remove(&self, slot: usize, id: u64) {
        let mut w = self.inner.lock();
        let entries = &mut w.slots[slot];
        if let Some(pos) = entries.iter().position(|e| e.id == id) {
            entries.swap_remove(pos);
            w.count -= 1;
            // `earliest` may now be stale (too early); that only costs a
            // spuriously short poll timeout, never a late fire.
        }
    }

    /// Fires everything due at `now`; returns the due wakers (the caller
    /// wakes them outside the lock).
    pub(crate) fn advance(&self, now: Instant) -> Vec<Waker> {
        let mut w = self.inner.lock();
        let now_tick = w.tick_of(now);
        if now_tick <= w.cursor || w.count == 0 {
            w.cursor = w.cursor.max(now_tick);
            return Vec::new();
        }
        let mut fired = Vec::new();
        let span = now_tick - w.cursor;
        // Far behind a sparse wheel: touch each slot once instead of
        // walking every elapsed tick.
        let slot_range: Box<dyn Iterator<Item = usize>> = if span >= SLOTS as u64 {
            Box::new(0..SLOTS)
        } else {
            Box::new((w.cursor + 1..=now_tick).map(|t| (t % SLOTS as u64) as usize))
        };
        for s in slot_range {
            let entries = &mut w.slots[s];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].deadline_tick <= now_tick {
                    fired.push(entries.swap_remove(i).waker);
                } else {
                    i += 1;
                }
            }
        }
        w.cursor = now_tick;
        w.count -= fired.len();
        if !fired.is_empty() {
            w.recompute_earliest();
        }
        fired
    }

    /// Milliseconds until the earliest armed deadline, capped at `max_ms`
    /// (the idle engine's `max_park` bound); `max_ms` when no timer is
    /// armed. Rounds up so a timer never fires early.
    pub(crate) fn next_timeout_ms(&self, now: Instant, max_ms: u64) -> u64 {
        let w = self.inner.lock();
        if w.earliest == u64::MAX {
            return max_ms;
        }
        let now_tick = w.tick_of(now);
        if w.earliest <= now_tick {
            return 0;
        }
        let ns = (w.earliest - now_tick) * TICK_NS;
        ns.div_ceil(1_000_000).min(max_ms)
    }

    /// Live entry count (tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().count
    }
}

/// Future returned by [`sleep`]. Resolves once the duration elapsed.
pub struct Sleep {
    deadline: Instant,
    shared: Arc<Shared>,
    /// `(id, slot)` of the currently armed wheel entry, if any.
    registered: Option<(u64, usize)>,
}

impl Sleep {
    /// The instant this sleep resolves at.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.deadline {
            if let Some((id, slot)) = this.registered.take() {
                this.shared.reactor.timers.remove(slot, id);
            }
            return Poll::Ready(());
        }
        // Re-arm with the current waker (it may differ from the one a
        // previous poll registered).
        if let Some((id, slot)) = this.registered.take() {
            this.shared.reactor.timers.remove(slot, id);
        }
        let (id, slot, became_earliest) = this
            .shared
            .reactor
            .timers
            .insert(this.deadline, cx.waker().clone());
        this.registered = Some((id, slot));
        if became_earliest {
            // A claimed poller may be napping past the new deadline.
            this.shared.reactor.kick_if_claimed();
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some((id, slot)) = self.registered.take() {
            self.shared.reactor.timers.remove(slot, id);
        }
    }
}

/// Sleeps asynchronously for `dur` (wheel-granular: rounded up to the next
/// ~1 ms tick). The strand parks; the worker keeps scheduling.
///
/// # Panics
/// Panics when called outside a runtime worker (the wheel lives on the
/// runtime).
pub fn sleep(dur: Duration) -> Sleep {
    let worker = current_worker();
    assert!(
        !worker.is_null(),
        "nowa time::sleep requires a runtime worker (the timer wheel lives on the runtime)"
    );
    // SAFETY: non-null means the calling thread's live worker.
    let shared = unsafe { (*worker).shared.clone() };
    Sleep {
        deadline: Instant::now() + dur,
        shared,
        registered: None,
    }
}

/// Error of a [`timeout`] that elapsed before its future resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("timeout elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    future: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pin projection — neither field is moved out,
        // and `Timeout` has no `Unpin`-dependent API.
        let this = unsafe { self.get_unchecked_mut() };
        // SAFETY: `this.future` is pinned because `self` was.
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(out) = future.poll(cx) {
            return Poll::Ready(Ok(out));
        }
        if Pin::new(&mut this.sleep).poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    }
}

/// Awaits `future` for at most `dur`; yields `Err(Elapsed)` if the timer
/// fires first (the future is dropped, releasing whatever it held).
///
/// Granularity is the wheel tick (~1 ms); for cancelling a whole fork/join
/// region rather than one future, use
/// [`Region::with_deadline`](crate::api::Region::with_deadline).
///
/// ```
/// use std::time::Duration;
///
/// let rt = nowa_runtime::Runtime::with_workers(2).unwrap();
/// rt.run(|| {
///     nowa_runtime::task::block_on(async {
///         // A sleep that cannot finish inside the timeout window.
///         let slow = nowa_runtime::time::sleep(Duration::from_secs(3600));
///         let out = nowa_runtime::time::timeout(Duration::from_millis(10), slow).await;
///         assert_eq!(out, Err(nowa_runtime::time::Elapsed));
///     })
/// });
/// ```
pub fn timeout<F: Future>(dur: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        sleep: sleep(dur),
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn noop_waker() -> Waker {
        use core::task::{RawWaker, RawWakerVTable};
        const VTABLE: RawWakerVTable = RawWakerVTable::new(
            |_| RawWaker::new(core::ptr::null(), &VTABLE),
            |_| {},
            |_| {},
            |_| {},
        );
        // SAFETY: every vtable entry is a no-op.
        unsafe { Waker::from_raw(RawWaker::new(core::ptr::null(), &VTABLE)) }
    }

    #[test]
    fn wheel_fires_due_entries_once() {
        let wheel = TimerWheel::new();
        let t0 = Instant::now();
        wheel.insert(t0 + Duration::from_millis(2), noop_waker());
        wheel.insert(t0 + Duration::from_millis(2), noop_waker());
        wheel.insert(t0 + Duration::from_secs(60), noop_waker());
        assert_eq!(wheel.len(), 3);
        assert!(wheel.advance(t0).is_empty(), "nothing due yet");
        let fired = wheel.advance(t0 + Duration::from_millis(20));
        assert_eq!(fired.len(), 2, "both short timers fire together");
        assert_eq!(wheel.len(), 1);
        assert!(
            wheel.advance(t0 + Duration::from_millis(40)).is_empty(),
            "fired entries do not refire"
        );
    }

    #[test]
    fn wheel_handles_wraparound_collisions() {
        // Two deadlines exactly SLOTS ticks apart share a slot; only the
        // near one may fire.
        let wheel = TimerWheel::new();
        let t0 = Instant::now();
        let near = t0 + Duration::from_millis(3);
        let far = t0 + Duration::from_millis(3 + SLOTS as u64);
        wheel.insert(near, noop_waker());
        wheel.insert(far, noop_waker());
        let fired = wheel.advance(t0 + Duration::from_millis(10));
        assert_eq!(fired.len(), 1, "only the near deadline fires");
        assert_eq!(wheel.len(), 1);
    }

    #[test]
    fn wheel_remove_disarms_and_timeout_hint_tracks_earliest() {
        let wheel = TimerWheel::new();
        let t0 = Instant::now();
        assert_eq!(wheel.next_timeout_ms(t0, 500), 500, "empty wheel: max");
        let (id, slot, earliest) = wheel.insert(t0 + Duration::from_millis(50), noop_waker());
        assert!(earliest);
        let hint = wheel.next_timeout_ms(t0, 500);
        assert!(
            (1..=60).contains(&hint),
            "hint {hint} tracks the 50ms deadline"
        );
        wheel.remove(slot, id);
        assert_eq!(wheel.len(), 0);
        assert!(
            wheel.advance(t0 + Duration::from_secs(1)).is_empty(),
            "removed timer never fires"
        );
    }

    #[test]
    fn wheel_far_behind_catchup_scans_all_slots() {
        let wheel = TimerWheel::new();
        let t0 = Instant::now();
        for i in 0..10u64 {
            wheel.insert(t0 + Duration::from_millis(2 + i), noop_waker());
        }
        // Advance far past everything in one leap (> SLOTS ticks).
        let fired = wheel.advance(t0 + Duration::from_secs(2));
        assert_eq!(fired.len(), 10);
        assert_eq!(wheel.len(), 0);
    }
}
