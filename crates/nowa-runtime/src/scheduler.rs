//! The spawn/sync machinery — Fig. 5 of the paper, realised on fibers.
//!
//! # Spawn (`spawn_execute`)
//!
//! ```text
//! cont = contAfterSpawn();      // capture_and_run_on fills record.ctx
//! pushBottom(cont);             // inside spawn_body, on the child stack
//! func();                       // the child, called directly
//! if (!popBottom()) tryResume() // pop_or_join → Continue/ResumeSync/OutOfWork
//! ```
//!
//! One deviation from Fibril, forced by Rust codegen (see DESIGN.md): the
//! child runs on a *fresh pooled stack* instead of the parent's stack.
//! Fibril may run the child in place because its thief resumes the stolen
//! continuation with a new `rsp` while addressing the parent frame through
//! `rbp` — a frame-pointer discipline rustc/LLVM does not guarantee. Running
//! the child on its own stack makes the stolen continuation's stack region
//! exclusively owned, with identical scheduling semantics; the fast path
//! still allocates nothing (stacks come from the per-worker cache) and
//! performs no steal-side synchronisation.
//!
//! # Sync (`sync_execute`)
//!
//! The fast path is one relaxed load + one acquire load (`sync_precheck`).
//! Suspension captures the sync continuation into the frame, moves the
//! (now blocked) stack into the frame, applies the madvise policy below the
//! suspended stack pointer (§V-B), restores the counter (Eq. 5) and dives
//! into the work-finding loop on a fresh stack.

use core::ffi::c_void;
use std::panic::{catch_unwind, AssertUnwindSafe};

use nowa_context::capture_and_run_on;

use crate::cancel::{self, Cancelled};
use crate::chaos;
use crate::flavor;
use crate::obs;
use crate::record::{Frame, SpawnRecord};
use crate::stats::WorkerStats;
use crate::worker::{current_worker, find_work, resume_record, resume_sync, AbortOnUnwind, Worker};

/// Arguments shipped from `spawn_execute` to `spawn_body` (read and moved
/// out *before* the continuation is published).
struct SpawnArgs<F> {
    worker: *mut Worker,
    record: *mut SpawnRecord,
    closure: Option<F>,
}

/// Spawns `f` as a child strand of `frame`: the child runs now, on this
/// worker; the *continuation* of the caller is offered to thieves and this
/// call returns when the continuation is resumed — on the fast path by this
/// same worker right after the child finishes, otherwise by a thief (so the
/// code after this call may execute on a different OS thread).
///
/// Child panics are captured into the frame and re-thrown by
/// [`sync_execute`]'s caller.
///
/// # Safety
///
/// * Must be called on a worker thread ([`current_worker`] non-null).
/// * `frame` must outlive the region: the caller must guarantee a matching
///   [`sync_execute`] completes before `frame` (or anything `f` borrows)
///   is dropped or moved — including when unwinding.
/// * All values live across this call may be touched by another OS thread
///   after a steal; the safe wrappers restrict them to `Send` data.
pub unsafe fn spawn_execute<F>(frame: &Frame, f: F)
where
    F: FnOnce() + Send,
{
    let worker = current_worker();
    debug_assert!(!worker.is_null(), "spawn_execute requires a worker thread");
    unsafe {
        // Stage the child stack before capturing.
        chaos::on_stack_get(worker);
        let child_stack = (*worker).cache.get();
        let child_top = child_stack.top();
        debug_assert!((*worker).incoming_stack.is_none());
        (*worker).incoming_stack = Some(child_stack);

        let mut record = SpawnRecord::new(frame);
        // The parent's stack travels with the continuation.
        record.stack = (*worker).current_stack.take();
        let mut args = SpawnArgs {
            worker,
            record: &mut record,
            closure: Some(f),
        };

        let payload = capture_and_run_on(
            &mut record.ctx,
            child_top,
            spawn_body::<F>,
            &mut args as *mut SpawnArgs<F> as *mut c_void,
        );

        // ---- the continuation: resumed by this worker (fast path), a
        // thief, or a work-finding self-pop; possibly on another thread.
        finish_resume(payload, &mut record);
    }
}

/// Re-establishes the `current_stack` invariant at a resume site and
/// recycles the stack the resumer abandoned.
///
/// # Safety
/// `payload` must be the `*mut Worker` the resumer delivered (every resume
/// site in this runtime passes the resuming worker), valid for the whole
/// call and not aliased by another thread.
unsafe fn finish_resume(payload: *mut c_void, record: &mut SpawnRecord) {
    let worker = payload as *mut Worker;
    unsafe {
        debug_assert!((*worker).current_stack.is_none());
        (*worker).current_stack = record.stack.take();
        debug_assert!((*worker).current_stack.is_some());
        if let Some(stack) = (*worker).pending_recycle.take() {
            (*worker).cache.put(stack);
        }
        // Steal-to-first-poll: if this resume consumed a steal, the stolen
        // continuation is now runnable — stop the clock.
        obs::on_resume_finished(worker);
    }
}

// SAFETY: callers: invoked only via `capture_and_run_on` with `arg` pointing
// at the `SpawnArgs<F>` staged in `spawn_execute`'s frame, which stays alive
// until the closure has been moved out and the continuation published.
unsafe extern "C" fn spawn_body<F: FnOnce() + Send>(arg: *mut c_void) -> ! {
    // Armed for the whole body: runtime-internal panics must abort rather
    // than unwind into the fiber base frame (never dropped on the normal
    // path — the body diverges).
    let _guard = AbortOnUnwind;
    unsafe {
        let args = &mut *(arg as *mut SpawnArgs<F>);
        let worker = args.worker;
        let record = args.record;
        let frame: *const Frame = (*record).frame;
        // Move the closure out of the parent frame *before* publishing the
        // continuation — afterwards the parent frame may be running again.
        let f = args
            .closure
            .take()
            .expect("closure staged by spawn_execute");
        (*worker).current_stack = (*worker).incoming_stack.take();

        let protocol = {
            // Short-lived shared borrow; the worker is valid and only this
            // thread touches it.
            let w: &Worker = &*worker;
            w.shared.flavor.protocol
        };
        // Chaos: maybe yield right before the push, widening the window in
        // which thieves observe the pre-push deque state; maybe force an
        // out-of-band promotion batch (or arm a promotion failure).
        chaos::on_spawn_push(worker);
        if chaos::on_force_promote(worker) {
            let batch = {
                let w: &Worker = &*worker;
                w.shared.config.split.promote_batch.max(1)
            };
            let moved = flavor::force_promote(&(*worker).deque, batch);
            crate::worker::note_promotion(worker, moved);
        }
        let out = flavor::push(&(*worker).deque, nowa_deque::Ptr::from_ref(&*record));
        let offered = out.offered;
        if offered {
            WorkerStats::bump(&(*worker).stats().spawns);
            crate::worker::note_promotion(worker, out.promoted);
        } else {
            WorkerStats::bump(&(*worker).stats().unoffered);
        }
        obs::on_spawn(worker, frame, offered);
        let split_enabled = {
            let w: &Worker = &*worker;
            w.shared.config.split.enabled
        };
        if offered {
            if split_enabled {
                // Split fast path: a push that promoted nothing is private
                // — invisible to thieves, so a wake would find nothing.
                // Wakes ride promotions (which a hungry sweep guarantees
                // before any thief parks).
                if out.promoted > 0 {
                    crate::worker::wake_after_promotion(worker);
                }
            } else {
                // Idle engine: a relaxed sleeper-count load on the common
                // path; a targeted wake only when parked workers exist and
                // our deque is deep enough that we won't immediately
                // reclaim this work.
                crate::worker::maybe_wake_after_spawn(worker);
            }
        }

        // The child, called directly (no further runtime involvement). An
        // injected chaos panic fires inside the capture scope, so it takes
        // exactly the propagation path a user panic would.
        match catch_unwind(AssertUnwindSafe(|| {
            chaos::on_child_start(worker);
            f()
        })) {
            Ok(()) => {}
            Err(payload) => {
                let organic = payload.downcast_ref::<Cancelled>().is_none();
                (*frame).core.set_panic(payload);
                if organic {
                    // Panic→cancel-siblings: a real fault cancels the
                    // governing region (never the runtime root) so the
                    // rest of its tree unwinds at the next checkpoints
                    // instead of computing work the fault already doomed.
                    let shared = &(*worker).shared;
                    cancel::cancel_enclosing_region(
                        (*frame).core.scope.get(),
                        shared,
                        cancel::CancelReason::SiblingPanic,
                    );
                }
            }
        }

        // The child may have migrated OS threads internally (nested sync
        // suspended, resumed elsewhere): re-derive the worker.
        let worker = current_worker();

        if !offered {
            // The continuation was never stealable; we still own it.
            resume_record(worker, nowa_deque::Ptr::from_ref(&*record))
        }

        match flavor::pop_or_join(protocol, &(*worker).deque, &*frame) {
            crate::record::AfterChild::Continue => {
                WorkerStats::bump(&(*worker).stats().fast_pops);
                if flavor::last_pop_was_private(&(*worker).deque) {
                    WorkerStats::bump(&(*worker).stats().private_pops);
                }
                obs::on_fast_pop(worker, frame);
                resume_record(worker, nowa_deque::Ptr::from_ref(&*record))
            }
            crate::record::AfterChild::ResumeSync => {
                WorkerStats::bump(&(*worker).stats().joins);
                obs::on_join(worker, frame);
                resume_sync(worker, frame)
            }
            crate::record::AfterChild::OutOfWork => {
                WorkerStats::bump(&(*worker).stats().joins);
                obs::on_join(worker, frame);
                find_work()
            }
        }
    }
}

/// Arguments shipped from `sync_execute` to `sync_body`.
struct SyncArgs {
    worker: *mut Worker,
    frame: *const Frame,
}

/// The explicit sync point: returns once every strand spawned on `frame`
/// in the current region has joined, then re-arms the frame for the next
/// region. Possibly returns on a different OS thread.
///
/// Captured child panics are *not* re-thrown here (the caller owns that,
/// so results/slots can be dropped in a defined order); use
/// [`Frame::core`]`.take_panic()` afterwards.
///
/// # Safety
/// Must be called on a worker thread, by the main-path control flow of
/// `frame`'s current spawn region.
pub unsafe fn sync_execute(frame: &Frame) {
    let worker = current_worker();
    debug_assert!(!worker.is_null(), "sync_execute requires a worker thread");
    unsafe {
        let protocol = {
            // Short-lived shared borrow; the worker is valid and only this
            // thread touches it.
            let w: &Worker = &*worker;
            w.shared.flavor.protocol
        };
        // Chaos: a forced cancellation at the sync boundary latches the
        // enclosing region (if any) right where suspension decisions race
        // with joins.
        if chaos::on_force_cancel(worker) {
            let shared = &(*worker).shared;
            cancel::cancel_enclosing_region(
                frame.core.scope.get(),
                shared,
                cancel::CancelReason::Token,
            );
        }
        // Chaos: a forced suspension vetoes the fast path, driving the
        // capture/restore machinery even when all children already joined.
        let forced_suspend = chaos::on_sync(worker);
        if !forced_suspend && flavor::sync_precheck(protocol, frame) {
            // All children joined: proceed without suspending (Invariant
            // III makes α stable here, so the check is exact).
            WorkerStats::bump(&(*worker).stats().syncs_inline);
            obs::on_sync_inline(worker, frame);
            flavor::rearm(protocol, frame);
            return;
        }

        // Suspension path: stage a fresh stack for the work-finding loop.
        chaos::on_stack_get(worker);
        let fresh = (*worker).cache.get();
        let fresh_top = fresh.top();
        debug_assert!((*worker).incoming_stack.is_none());
        (*worker).incoming_stack = Some(fresh);
        let mut args = SyncArgs { worker, frame };

        let payload = capture_and_run_on(
            frame.core.sync_ctx.get(),
            fresh_top,
            sync_body,
            &mut args as *mut SyncArgs as *mut c_void,
        );

        // ---- resumed: the sync condition holds.
        let worker = payload as *mut Worker;
        debug_assert!((*worker).current_stack.is_none());
        (*worker).current_stack = (*frame.core.suspended_stack.get()).take();
        debug_assert!((*worker).current_stack.is_some());
        if let Some(stack) = (*worker).pending_recycle.take() {
            (*worker).cache.put(stack);
        }
        flavor::rearm(protocol, frame);
    }
}

// SAFETY: callers: invoked only via `capture_and_run_on` with `arg` pointing
// at the `SyncArgs` staged in the suspending frame, which remains alive until
// the last child resumes the sync continuation.
unsafe extern "C" fn sync_body(arg: *mut c_void) -> ! {
    let _guard = AbortOnUnwind;
    unsafe {
        let args = &mut *(arg as *mut SyncArgs);
        let worker = args.worker;
        let frame = args.frame;
        WorkerStats::bump(&(*worker).stats().suspensions);
        obs::on_sync_suspend(worker, frame);
        // Chaos: a forced cancellation at the suspend boundary drives the
        // cancel-during-suspended-sync path (children unwind, the last
        // joiner retires the suspension, the resume becomes an abort).
        if chaos::on_force_cancel(worker) {
            let shared = &(*worker).shared;
            cancel::cancel_enclosing_region(
                (*frame).core.scope.get(),
                shared,
                cancel::CancelReason::Token,
            );
        }

        // The frame's stack is now blocked by the suspended frame: move it
        // into the frame and release the unused space below the suspended
        // stack pointer (the practical cactus-stack solution, §V-B).
        let blocked = (*worker)
            .current_stack
            .take()
            .expect("suspending control flow runs on a tracked stack");
        let sp = (*(*frame).core.sync_ctx.get()).0;
        debug_assert!(blocked.contains(sp));
        let madvise = {
            let w: &Worker = &*worker;
            w.shared.config.madvise
        };
        blocked.release_below(sp, madvise);
        *(*frame).core.suspended_stack.get() = Some(blocked);
        (*worker).current_stack = (*worker).incoming_stack.take();

        // Restore N_r (Eq. 5). If every child joined in the meantime, the
        // sync condition holds right away and we resume ourselves.
        let protocol = {
            // Short-lived shared borrow; the worker is valid and only this
            // thread touches it.
            let w: &Worker = &*worker;
            w.shared.flavor.protocol
        };
        if flavor::sync_restore(protocol, &*frame) {
            resume_sync(worker, frame)
        }
        find_work()
    }
}
