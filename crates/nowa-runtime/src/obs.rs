//! Trace hooks: the runtime's only coupling to `nowa-trace`.
//!
//! Every instrumentation point in the scheduler calls one function from
//! this module. With the `trace` cargo feature **off**, the module is the
//! empty twin below — every hook is an `#[inline(always)]` no-op, so
//! nothing observes the hot path and the scheduler compiles exactly as
//! before. With the feature **on**, hooks are still no-ops unless the
//! runtime was built with [`crate::Config`]`::tracing(true)` (the buffers
//! are simply absent otherwise).
//!
//! Hooks never block and never allocate: rings are wait-free SPSC with a
//! drop-newest overflow policy, and histograms are relaxed `fetch_add`s.

#[cfg(feature = "trace")]
// Shared safety contract for every hook in this module: `worker` must point
// to the calling worker's live `Worker` (the scheduler invokes hooks only
// from that worker's own loop), which makes the deref in `buf` sound. The
// contract is spelled once here — mirroring the no-op arm — instead of on
// each of the sixteen hooks.
#[allow(clippy::missing_safety_doc)]
mod imp {
    use nowa_trace::{frame_id, EventKind, TraceBuffer};

    use crate::flavor;
    use crate::record::Frame;
    use crate::worker::Worker;

    /// The calling worker's trace buffer, when tracing is enabled.
    ///
    /// # Safety
    /// `worker` must be a live worker pointer owned by the calling thread.
    #[inline]
    unsafe fn buf<'a>(worker: *mut Worker) -> Option<&'a TraceBuffer> {
        unsafe {
            let w = &*worker;
            w.shared.trace.as_deref().map(|t| &t[w.index])
        }
    }

    /// A continuation was offered (or failed to be offered) to thieves.
    /// Samples deque occupancy periodically.
    #[inline]
    pub(crate) unsafe fn on_spawn(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.spawn(|| flavor::occupancy(&(*worker).deque) as u64);
            }
        }
    }

    /// A steal attempt found `victim`'s deque empty. Suppressed while the
    /// worker is deep-idle: an idle worker re-sweeps every victim many
    /// thousand times a second and would evict everything else from the
    /// ring; the [`EventKind::Idle`] span summarises the period instead
    /// (the `steal_empty` *counter* in [`crate::stats`] still counts all).
    #[inline]
    pub(crate) unsafe fn on_steal_empty(worker: *mut Worker, victim: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                if !b.is_idle() {
                    b.event(EventKind::StealEmpty, victim as u64);
                }
            }
        }
    }

    /// A steal attempt lost a race and will retry.
    #[inline]
    pub(crate) unsafe fn on_steal_retry(worker: *mut Worker, victim: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::StealRetry, victim as u64);
            }
        }
    }

    /// A steal succeeded; starts the steal-to-first-poll clock.
    #[inline]
    pub(crate) unsafe fn on_steal_success(worker: *mut Worker, victim: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.steal_success(victim);
            }
        }
    }

    /// A resumed continuation re-established its stack invariant; stops
    /// the steal-to-first-poll clock if one is running.
    #[inline]
    pub(crate) unsafe fn on_resume_finished(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.resume_finished();
            }
        }
    }

    /// Fast-path pop: the spawner reclaimed its own continuation.
    #[inline]
    pub(crate) unsafe fn on_fast_pop(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::FastPop, 0);
            }
        }
    }

    /// The work-finding loop took from its own deque.
    #[inline]
    pub(crate) unsafe fn on_own_take(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::OwnTake, 0);
            }
        }
    }

    /// A root task was taken from the injector.
    #[inline]
    pub(crate) unsafe fn on_root(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::Root, 0);
            }
        }
    }

    /// A child joined (its continuation was consumed elsewhere).
    #[inline]
    pub(crate) unsafe fn on_join(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::Join, 0);
            }
        }
    }

    /// An explicit sync was satisfied without suspending.
    #[inline]
    pub(crate) unsafe fn on_sync_inline(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::SyncInline, 0);
            }
        }
    }

    /// An explicit sync suspended `frame`.
    #[inline]
    pub(crate) unsafe fn on_sync_suspend(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::SyncSuspend, frame_id(frame as *const ()));
            }
        }
    }

    /// A suspended sync continuation of `frame` is being resumed.
    #[inline]
    pub(crate) unsafe fn on_sync_resume(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::SyncResume, frame_id(frame as *const ()));
            }
        }
    }

    /// A steal sweep found nothing (the worker is going idle). Idempotent.
    #[inline]
    pub(crate) unsafe fn on_idle(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_enter();
            }
        }
    }

    /// The worker is entering a futex park (idle engine deep descent).
    #[inline]
    pub(crate) unsafe fn on_park(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.park_begin();
            }
        }
    }

    /// The worker's park ended (wake, timeout, or stale epoch).
    #[inline]
    pub(crate) unsafe fn on_unpark(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.park_end();
            }
        }
    }

    /// This worker issued a targeted wake of worker `target`.
    #[inline]
    pub(crate) unsafe fn on_wake(worker: *mut Worker, target: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.wake(target);
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
#[allow(clippy::missing_safety_doc)]
mod imp {
    use crate::record::Frame;
    use crate::worker::Worker;

    #[inline(always)]
    pub(crate) unsafe fn on_spawn(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_steal_empty(_: *mut Worker, _: usize) {}
    #[inline(always)]
    pub(crate) unsafe fn on_steal_retry(_: *mut Worker, _: usize) {}
    #[inline(always)]
    pub(crate) unsafe fn on_steal_success(_: *mut Worker, _: usize) {}
    #[inline(always)]
    pub(crate) unsafe fn on_resume_finished(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_fast_pop(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_own_take(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_root(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_join(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync_inline(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync_suspend(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync_resume(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_idle(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_park(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_unpark(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_wake(_: *mut Worker, _: usize) {}
}

pub(crate) use imp::*;
