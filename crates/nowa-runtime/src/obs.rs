//! Trace hooks: the runtime's only coupling to `nowa-trace`.
//!
//! Every instrumentation point in the scheduler calls one function from
//! this module. With the `trace` cargo feature **off**, the module is the
//! empty twin below — every hook is an `#[inline(always)]` no-op, so
//! nothing observes the hot path and the scheduler compiles exactly as
//! before. With the feature **on**, hooks are still no-ops unless the
//! runtime was built with [`crate::Config`]`::tracing(true)` (the buffers
//! are simply absent otherwise) and/or `Config::flight_recorder` (the
//! flight rings likewise).
//!
//! Hooks never block and never allocate: rings are wait-free SPSC with a
//! drop-newest overflow policy (flight rings overwrite-oldest), and
//! histograms are relaxed `fetch_add`s.
//!
//! Deque-lifecycle hooks carry the frame involved, giving events causal
//! identity (see `nowa_trace::EventKind`): post-run analysis replays the
//! deques and rebuilds the fork/join DAG from the stream.

#[cfg(feature = "trace")]
// Shared safety contract for every hook in this module: `worker` must point
// to the calling worker's live `Worker` (the scheduler invokes hooks only
// from that worker's own loop), which makes the derefs in `buf`/`flight`
// sound. The contract is spelled once here — mirroring the no-op arm —
// instead of on each of the eighteen hooks.
#[allow(clippy::missing_safety_doc)]
mod imp {
    use nowa_trace::{frame_id, EventKind, FlightRing, TraceBuffer};

    use crate::flavor;
    use crate::record::Frame;
    use crate::worker::Worker;

    /// The calling worker's trace buffer, when tracing is enabled.
    ///
    /// # Safety
    /// `worker` must be a live worker pointer owned by the calling thread.
    #[inline]
    unsafe fn buf<'a>(worker: *mut Worker) -> Option<&'a TraceBuffer> {
        unsafe {
            let w = &*worker;
            w.shared.trace.as_deref().map(|t| &t[w.index])
        }
    }

    /// The calling worker's flight ring, when the flight recorder is on.
    ///
    /// # Safety
    /// `worker` must be a live worker pointer owned by the calling thread.
    #[inline]
    unsafe fn flight<'a>(worker: *mut Worker) -> Option<&'a FlightRing> {
        unsafe {
            let w = &*worker;
            w.shared.flight.as_deref().map(|t| &t[w.index])
        }
    }

    /// A continuation of `frame` was offered to thieves (`offered`), or
    /// the flavor elided the offer. Only offered spawns create a deque
    /// record, so only they emit a causal [`EventKind::Spawn`] — an event
    /// for an elided spawn would be a phantom record in DAG replay.
    /// Occupancy sampling rides the offered path for the same reason:
    /// elided spawns never touch the deque.
    // lint: hot-path
    #[inline]
    pub(crate) unsafe fn on_spawn(worker: *mut Worker, frame: *const Frame, offered: bool) {
        unsafe {
            if !offered {
                return;
            }
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.spawn(id, || flavor::occupancy(&(*worker).deque) as u64);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Spawn, id);
            }
        }
    }

    /// A steal attempt found `victim`'s deque empty. Suppressed while the
    /// worker is deep-idle: an idle worker re-sweeps every victim many
    /// thousand times a second and would evict everything else from the
    /// ring; the [`EventKind::Idle`] span summarises the period instead
    /// (the `steal_empty` *counter* in [`crate::stats`] still counts all).
    /// Never recorded to the flight ring for the same reason.
    #[inline]
    pub(crate) unsafe fn on_steal_empty(worker: *mut Worker, victim: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                if !b.is_idle() {
                    b.event(EventKind::StealEmpty, victim as u64);
                }
            }
        }
    }

    /// A steal attempt lost a race and will retry.
    #[inline]
    pub(crate) unsafe fn on_steal_retry(worker: *mut Worker, victim: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::StealRetry, victim as u64);
            }
        }
    }

    /// A steal of `frame`'s record from `victim` succeeded; starts the
    /// steal-to-first-poll clock.
    // lint: hot-path
    #[inline]
    pub(crate) unsafe fn on_steal_success(worker: *mut Worker, victim: usize, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.steal_success(victim, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Steal, nowa_trace::pack_steal_arg(victim, id));
            }
        }
    }

    /// A resumed continuation re-established its stack invariant; stops
    /// the steal-to-first-poll clock if one is running.
    #[inline]
    pub(crate) unsafe fn on_resume_finished(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.resume_finished();
            }
        }
    }

    /// Fast-path pop: the spawner reclaimed its own continuation of
    /// `frame`.
    // lint: hot-path
    #[inline]
    pub(crate) unsafe fn on_fast_pop(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.hot_event(EventKind::FastPop, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::FastPop, id);
            }
        }
    }

    /// The work-finding loop took `frame`'s record from its own deque.
    #[inline]
    pub(crate) unsafe fn on_own_take(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::OwnTake, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::OwnTake, id);
            }
        }
    }

    /// A root task was taken from the injector.
    #[inline]
    pub(crate) unsafe fn on_root(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::Root, 0);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Root, 0);
            }
        }
    }

    /// A child of `frame` joined (its continuation was consumed
    /// elsewhere).
    // lint: hot-path
    #[inline]
    pub(crate) unsafe fn on_join(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.hot_event(EventKind::Join, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Join, id);
            }
        }
    }

    /// An explicit sync on `frame` was satisfied without suspending.
    // lint: hot-path
    #[inline]
    pub(crate) unsafe fn on_sync_inline(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.hot_event(EventKind::SyncInline, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::SyncInline, id);
            }
        }
    }

    /// An explicit sync suspended `frame`.
    #[inline]
    pub(crate) unsafe fn on_sync_suspend(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.event(EventKind::SyncSuspend, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::SyncSuspend, id);
            }
        }
    }

    /// A suspended sync continuation of `frame` is being resumed.
    #[inline]
    pub(crate) unsafe fn on_sync_resume(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::SyncResume, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::SyncResume, id);
            }
        }
    }

    /// A steal sweep found nothing (the worker is going idle). Idempotent.
    #[inline]
    pub(crate) unsafe fn on_idle(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_enter();
            }
        }
    }

    /// The worker is entering a futex park (idle engine deep descent).
    #[inline]
    pub(crate) unsafe fn on_park(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.park_begin();
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Park, 0);
            }
        }
    }

    /// The worker's park ended (wake, timeout, or stale epoch).
    #[inline]
    pub(crate) unsafe fn on_unpark(worker: *mut Worker) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.park_end();
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Unpark, 0);
            }
        }
    }

    /// This worker issued a targeted wake of worker `target`.
    #[inline]
    pub(crate) unsafe fn on_wake(worker: *mut Worker, target: usize) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.wake(target);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Wake, target as u64);
            }
        }
    }

    /// A cooperative checkpoint on `frame` observed a cancelled scope and
    /// is raising `Cancelled`. Rare by construction (each strand raises at
    /// most once), so it goes through the ordinary event path, not the
    /// hot ring. `frame` may be null (an ambient checkpoint outside any
    /// join frame); null maps to id 0.
    #[inline]
    pub(crate) unsafe fn on_cancel(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = if frame.is_null() {
                0
            } else {
                frame_id(frame as *const ())
            };
            if let Some(b) = buf(worker) {
                b.event(EventKind::Cancel, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Cancel, id);
            }
        }
    }

    /// A suspended sync continuation of `frame` is being resumed into a
    /// cancelled scope — the abort path: the last joiner retired the
    /// suspension and the continuation wakes specifically to unwind.
    #[inline]
    pub(crate) unsafe fn on_abort(worker: *mut Worker, frame: *const Frame) {
        unsafe {
            let id = frame_id(frame as *const ());
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::Abort, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::Abort, id);
            }
        }
    }

    /// A `block_on` continuation (cell `id`) is parking behind a waker.
    #[inline]
    pub(crate) unsafe fn on_async_park(worker: *mut Worker, id: u64) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.event(EventKind::AsyncPark, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::AsyncPark, id);
            }
        }
    }

    /// A parked async continuation (cell `id`) is being resumed.
    #[inline]
    pub(crate) unsafe fn on_async_resume(worker: *mut Worker, id: u64) {
        unsafe {
            if let Some(b) = buf(worker) {
                b.idle_exit();
                b.event(EventKind::AsyncWake, id);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::AsyncWake, id);
            }
        }
    }

    /// This worker completed one reactor poll dispatching `events` I/O
    /// events. Suppressed when nothing was dispatched — an idle serving
    /// runtime polls every `max_park` and would flood the ring.
    #[inline]
    pub(crate) unsafe fn on_reactor_poll(worker: *mut Worker, events: u64) {
        unsafe {
            if events == 0 {
                return;
            }
            if let Some(b) = buf(worker) {
                b.event(EventKind::ReactorPoll, events);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::ReactorPoll, events);
            }
        }
    }

    /// This worker's reactor poll fired `count` timer-wheel entries.
    #[inline]
    pub(crate) unsafe fn on_timer_fire(worker: *mut Worker, count: u64) {
        unsafe {
            if count == 0 {
                return;
            }
            if let Some(b) = buf(worker) {
                b.event(EventKind::TimerFire, count);
            }
            if let Some(f) = flight(worker) {
                f.record_now(EventKind::TimerFire, count);
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
#[allow(clippy::missing_safety_doc)]
mod imp {
    use crate::record::Frame;
    use crate::worker::Worker;

    #[inline(always)]
    pub(crate) unsafe fn on_spawn(_: *mut Worker, _: *const Frame, _: bool) {}
    #[inline(always)]
    pub(crate) unsafe fn on_steal_empty(_: *mut Worker, _: usize) {}
    #[inline(always)]
    pub(crate) unsafe fn on_steal_retry(_: *mut Worker, _: usize) {}
    #[inline(always)]
    pub(crate) unsafe fn on_steal_success(_: *mut Worker, _: usize, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_resume_finished(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_fast_pop(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_own_take(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_root(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_join(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync_inline(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync_suspend(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync_resume(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_idle(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_park(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_unpark(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_wake(_: *mut Worker, _: usize) {}
    #[inline(always)]
    pub(crate) unsafe fn on_cancel(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_abort(_: *mut Worker, _: *const Frame) {}
    #[inline(always)]
    pub(crate) unsafe fn on_async_park(_: *mut Worker, _: u64) {}
    #[inline(always)]
    pub(crate) unsafe fn on_async_resume(_: *mut Worker, _: u64) {}
    #[inline(always)]
    pub(crate) unsafe fn on_reactor_poll(_: *mut Worker, _: u64) {}
    #[inline(always)]
    pub(crate) unsafe fn on_timer_fire(_: *mut Worker, _: u64) {}
}

pub(crate) use imp::*;
