//! Workers, the shared runtime state, and the work-finding loop.
//!
//! A worker is one OS thread (§II: user-space platforms implement workers as
//! kernel-level threads) owning a work-stealing deque and a private stack
//! cache. The work-finding loop implements the scheduling discipline of
//! §III-B: prefer local work (bottom of the own deque), then randomised
//! stealing; every continuation taken is a fork (the `α`/count bookkeeping
//! happens in [`crate::flavor`]).
//!
//! # The `current_stack` invariant
//!
//! At any instant, a worker's `current_stack` field holds the handle of the
//! very stack its control flow is executing on. Every context transfer
//! hands stacks over through `SpawnRecord::stack`, `FrameCore::
//! suspended_stack` and `pending_recycle` such that the invariant is
//! restored at the resume site — including when a control flow *returns*
//! from a call on a different OS thread than it entered (which happens
//! whenever a nested sync suspended and was resumed elsewhere).

use core::cell::Cell;
use core::ffi::c_void;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::VecDeque;
use std::sync::Arc;

use nowa_context::{capture_and_run_on, resume, RawContext, Stack, StackPool, WorkerStackCache};
use nowa_deque::Steal;
use parking_lot::{Condvar, Mutex};

use crate::chaos;
use crate::config::Config;
use crate::flavor::{self, Flavor, OwnerDeque, Rec, SharedStealer};
use crate::obs;
use crate::stats::{StatsSnapshot, WorkerStats};

/// A submitted root task (type-erased; completion signalling is baked into
/// the closure by [`crate::runtime::Runtime::run`]).
pub struct RootTask {
    /// Runs the task; must not unwind.
    pub run: Box<dyn FnOnce() + Send + 'static>,
}

/// State shared by all workers of one runtime instance.
pub struct Shared {
    /// The runtime flavor (protocol × deque).
    pub flavor: Flavor,
    /// Thief-side handles, indexed by worker.
    pub stealers: Box<[SharedStealer]>,
    /// Per-worker statistics.
    pub stats: Box<[WorkerStats]>,
    /// Root-task submission queue.
    pub injector: Mutex<VecDeque<RootTask>>,
    /// Signals idle workers about new root tasks / shutdown.
    pub idle_cv: Condvar,
    /// Lock paired with `idle_cv`.
    pub idle_lock: Mutex<()>,
    /// Set once at shutdown.
    pub shutdown: AtomicBool,
    /// The global stack pool.
    pub pool: Arc<StackPool>,
    /// The configuration the runtime was built with.
    pub config: Config,
    /// Per-worker trace buffers; `Some` iff the runtime was configured
    /// with `Config::tracing(true)`.
    #[cfg(feature = "trace")]
    pub trace: Option<Box<[nowa_trace::TraceBuffer]>>,
    /// Per-worker fault-injection state; `Some` iff the runtime was
    /// configured with a `Config::chaos` knob.
    #[cfg(feature = "chaos")]
    pub chaos: Option<Box<[chaos::ChaosWorkerState]>>,
    /// Stall reports emitted by the watchdog since startup.
    pub watchdog_reports: AtomicU64,
}

impl Shared {
    /// Aggregated scheduler statistics.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::aggregate(&self.stats)
    }
}

/// One worker: an OS thread plus its scheduling state.
pub struct Worker {
    /// Index into `Shared::stealers` / `Shared::stats`.
    pub index: usize,
    /// Owner side of this worker's deque.
    pub deque: OwnerDeque,
    /// Shared runtime state.
    pub shared: Arc<Shared>,
    /// Private stack cache over the global pool.
    pub cache: WorkerStackCache,
    /// Handle of the stack the worker is currently executing on.
    pub current_stack: Option<Stack>,
    /// Staging slot: a freshly acquired stack about to be switched onto.
    pub incoming_stack: Option<Stack>,
    /// Staging slot: an abandoned stack, recycled at the next resume site.
    pub pending_recycle: Option<Stack>,
    /// Continuation of `worker_main` on the OS thread stack (exit path).
    pub exit_ctx: RawContext,
    /// xorshift64* state for victim selection.
    pub rng: u64,
}

// SAFETY: a Worker is moved to its OS thread once at startup and from then
// on only accessed by whichever single thread currently executes with it as
// `current_worker` (the raw context/stack fields are what inhibit the auto
// impl).
unsafe impl Send for Worker {}

impl Worker {
    /// This worker's stat block.
    #[inline]
    pub fn stats(&self) -> &WorkerStats {
        &self.shared.stats[self.index]
    }

    /// Next pseudo-random number (xorshift64*).
    #[inline]
    pub fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

std::thread_local! {
    static CURRENT_WORKER: Cell<*mut Worker> = const { Cell::new(core::ptr::null_mut()) };
}

/// The worker the calling OS thread belongs to, or null when the thread is
/// not a runtime worker (e.g. user threads calling the API — they fall back
/// to serial execution).
///
/// Deliberately `#[inline(never)]`: a continuation may migrate between OS
/// threads at every capture point, so thread-local addresses must never be
/// cached across one; an uninlinable function re-derives the TLS slot on
/// every call.
#[inline(never)]
pub fn current_worker() -> *mut Worker {
    CURRENT_WORKER.with(|c| c.get())
}

/// Installs the worker for the calling OS thread. `#[inline(never)]` for
/// the same reason as [`current_worker`].
#[inline(never)]
pub fn set_current_worker(worker: *mut Worker) {
    CURRENT_WORKER.with(|c| c.set(worker));
}

/// Aborts the process if dropped by unwinding — runtime-internal code must
/// never unwind through a fiber base frame (undefined behaviour).
pub struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("nowa-runtime: internal panic unwound to a fiber base; aborting");
        std::process::abort();
    }
}

/// Resumes a taken continuation, handing over the current stack for
/// recycling. Diverges into the resumed control flow.
///
/// # Safety
/// `rec` must be a continuation record exclusively owned by this control
/// flow (freshly popped/stolen), with a captured `ctx`.
pub unsafe fn resume_record(worker: *mut Worker, rec: Rec) -> ! {
    unsafe {
        debug_assert!((*worker).pending_recycle.is_none());
        (*worker).pending_recycle = (*worker).current_stack.take();
        let ctx = (*rec.as_ptr()).ctx;
        debug_assert!(!ctx.is_null());
        resume(ctx, worker as *mut c_void)
    }
}

/// Resumes the suspended sync continuation of `frame`. Diverges.
///
/// # Safety
/// The caller must have won the sync (its join observed the restored
/// counter hit zero), which makes it the unique owner of the suspension
/// state.
pub unsafe fn resume_sync(worker: *mut Worker, frame: *const crate::record::Frame) -> ! {
    unsafe {
        WorkerStats::bump(&(*worker).stats().sync_resumes);
        obs::on_sync_resume(worker, frame);
        debug_assert!((*worker).pending_recycle.is_none());
        (*worker).pending_recycle = (*worker).current_stack.take();
        let ctx = *(*frame).core.sync_ctx.get();
        debug_assert!(!ctx.is_null());
        resume(ctx, worker as *mut c_void)
    }
}

/// The work-finding loop (never returns; diverges into resumed work or the
/// worker's exit continuation).
///
/// Order per iteration: shutdown check → own deque bottom → root injector →
/// random steal sweep → backoff.
///
/// # Safety
/// Must run on a worker thread whose `current_stack` invariant holds.
pub unsafe fn find_work() -> ! {
    let mut failed_sweeps: u32 = 0;
    loop {
        // Re-derive the worker every iteration: running a root task may
        // return on a different OS thread (see module docs).
        let worker = current_worker();
        debug_assert!(!worker.is_null());
        let shared: &Shared = unsafe { &*Arc::as_ptr(&(*worker).shared) };
        let protocol = shared.flavor.protocol;

        // Liveness heartbeat for the stall watchdog: even a fully idle
        // worker ticks this every backoff period.
        unsafe { WorkerStats::bump(&(*worker).stats().loop_ticks) };

        if shared.shutdown.load(Ordering::Acquire) {
            unsafe {
                (*worker).pending_recycle = (*worker).current_stack.take();
                let ctx = (*worker).exit_ctx;
                resume(ctx, worker as *mut c_void)
            }
        }

        // Local work first: the bottom of our own deque holds the deepest
        // ancestor continuation (cheapest to resume, busy-leaves style).
        if let Some(rec) = flavor::take_own(protocol, unsafe { &(*worker).deque }) {
            unsafe {
                WorkerStats::bump(&(*worker).stats().own_takes);
                obs::on_own_take(worker);
                resume_record(worker, rec)
            }
        }

        // Root tasks.
        let task = shared.injector.lock().pop_front();
        if let Some(task) = task {
            unsafe {
                WorkerStats::bump(&(*worker).stats().roots);
                obs::on_root(worker);
            }
            // The task's control flow may suspend internally and complete
            // on another worker; everything below re-derives state.
            (task.run)();
            failed_sweeps = 0;
            continue;
        }

        // Random steal sweep.
        let n = shared.stealers.len();
        let mut found = false;
        if n > 1 {
            let start = (unsafe { (*worker).next_rand() } as usize) % n;
            for i in 0..n {
                let victim = (start + i) % n;
                if victim == unsafe { (*worker).index } {
                    continue;
                }
                unsafe { chaos::on_steal_attempt(worker) };
                match flavor::steal_from(protocol, &shared.stealers[victim]) {
                    Steal::Success(rec) => unsafe {
                        WorkerStats::bump(&(*worker).stats().steals);
                        obs::on_steal_success(worker, victim);
                        resume_record(worker, rec)
                    },
                    Steal::Retry => {
                        unsafe {
                            WorkerStats::bump(&(*worker).stats().steal_retry);
                            obs::on_steal_retry(worker, victim);
                        }
                        // Contended: try again within the sweep.
                        found = true;
                        core::hint::spin_loop();
                    }
                    Steal::Empty => unsafe {
                        WorkerStats::bump(&(*worker).stats().steal_empty);
                        obs::on_steal_empty(worker, victim);
                    },
                }
            }
        }

        if found {
            failed_sweeps = 0;
            continue;
        }
        failed_sweeps = failed_sweeps.saturating_add(1);
        unsafe { obs::on_idle(worker) };
        if failed_sweeps < 16 {
            std::thread::yield_now();
        } else {
            // Deep idle: sleep briefly; woken by root submission/shutdown,
            // and self-waking to re-scan the deques (spawns do not signal —
            // that would put a syscall on the hot path).
            let mut guard = shared.idle_lock.lock();
            shared
                .idle_cv
                .wait_for(&mut guard, std::time::Duration::from_micros(200));
        }
    }
}

unsafe extern "C" fn worker_body(arg: *mut c_void) -> ! {
    // Armed for the whole body: an unwinding panic would otherwise reach
    // the fiber base frame (undefined behaviour).
    let _guard = AbortOnUnwind;
    unsafe {
        let worker = arg as *mut Worker;
        (*worker).current_stack = (*worker).incoming_stack.take();
        find_work()
    }
}

/// OS-thread entry of a worker. Returns when the runtime shuts down.
#[allow(clippy::boxed_local)] // the Box pins the Worker's address for TLS/raw pointers
pub fn worker_main(mut worker: Box<Worker>) {
    if worker.shared.config.pin_workers {
        let _ = nowa_context::sys::pin_current_thread_to(worker.index);
    }
    // Label the thread for guard-page fault reports, and give the SIGSEGV
    // handler an alternate stack to run on: at the moment of a fiber stack
    // overflow this thread's sp points into the guard page, so the handler
    // cannot run on the faulting stack. Held for the thread's lifetime.
    nowa_context::signal::set_thread_label(worker.index);
    let _alt = if worker.shared.config.guard_diagnostics {
        nowa_context::signal::AltStack::install().ok()
    } else {
        None
    };
    let wptr: *mut Worker = &mut *worker;
    set_current_worker(wptr);
    unsafe {
        let first = (*wptr).cache.get();
        let top = first.top();
        (*wptr).incoming_stack = Some(first);
        let payload =
            capture_and_run_on(&mut (*wptr).exit_ctx, top, worker_body, wptr as *mut c_void);
        // ---- shutdown: back on the OS thread stack ----
        let worker_now = payload as *mut Worker;
        debug_assert_eq!(worker_now, wptr, "exit context resumed by its owner");
        if let Some(stack) = (*worker_now).pending_recycle.take() {
            (*worker_now).cache.put(stack);
        }
    }
    set_current_worker(core::ptr::null_mut());
    // `worker` drops here; its cache drains into the shared pool.
}
