//! Workers, the shared runtime state, and the work-finding loop.
//!
//! A worker is one OS thread (§II: user-space platforms implement workers as
//! kernel-level threads) owning a work-stealing deque and a private stack
//! cache. The work-finding loop implements the scheduling discipline of
//! §III-B: prefer local work (bottom of the own deque), then randomised
//! stealing; every continuation taken is a fork (the `α`/count bookkeeping
//! happens in [`crate::flavor`]).
//!
//! # The `current_stack` invariant
//!
//! At any instant, a worker's `current_stack` field holds the handle of the
//! very stack its control flow is executing on. Every context transfer
//! hands stacks over through `SpawnRecord::stack`, `FrameCore::
//! suspended_stack` and `pending_recycle` such that the invariant is
//! restored at the resume site — including when a control flow *returns*
//! from a call on a different OS thread than it entered (which happens
//! whenever a nested sync suspended and was resumed elsewhere).

use crate::sync::{AtomicBool, AtomicU64, Ordering};
use core::cell::Cell;
use core::ffi::c_void;
use std::sync::Arc;

use nowa_context::{capture_and_run_on, resume, RawContext, Stack, StackPool, WorkerStackCache};
use nowa_deque::Steal;

use crate::cancel::{self, CancelCell, DeadlineQueue};
use crate::chaos;
use crate::config::Config;
use crate::flavor::{self, Flavor, OwnerDeque, Rec, SharedStealer};
use crate::idle::IdleState;
use crate::injector::Injector;
use crate::obs;
use crate::reactor::Reactor;
use crate::stats::{StatsSnapshot, WorkerStats};
use crate::task::{resume_ready, AsyncWaiters, ReadyCell};

/// A submitted root task (type-erased; completion signalling is baked into
/// the closure by [`crate::runtime::Runtime::run`]).
pub struct RootTask {
    /// Runs the task; must not unwind.
    pub run: Box<dyn FnOnce() + Send + 'static>,
}

/// State shared by all workers of one runtime instance.
pub struct Shared {
    /// The runtime flavor (protocol × deque).
    pub flavor: Flavor,
    /// Thief-side handles, indexed by worker.
    pub stealers: Box<[SharedStealer]>,
    /// Per-worker statistics.
    pub stats: Box<[WorkerStats]>,
    /// Root-task submission queue (lock-free MPMC segment queue).
    pub injector: Injector,
    /// The idle engine: eventcount-style parking and targeted wakes.
    pub idle: IdleState,
    /// Set once at shutdown.
    pub shutdown: AtomicBool,
    /// The runtime-root cancellation scope: parent of every region chain
    /// and the ambient scope of unscoped frames, so the unscoped hot-path
    /// checkpoint is a chain of depth one. [`crate::Runtime::shutdown`]
    /// latches it to cancel all in-flight work cooperatively.
    pub(crate) cancel_root: CancelCell,
    /// Root tasks submitted but not yet completed; `shutdown` drains to
    /// zero (or times out) on this.
    pub active_roots: AtomicU64,
    /// Armed region deadlines, fired by the watchdog thread.
    pub(crate) deadlines: DeadlineQueue,
    /// Async continuations claimed by a waker and awaiting a worker
    /// (MPMC, same segment queue as the injector). Never closed: the
    /// shutdown drain still resumes these so their `block_on` frames can
    /// unwind through their cancellation checkpoints.
    pub(crate) ready: Injector<ReadyCell>,
    /// Registry of parked async continuations, notified en masse when a
    /// cancellation source fires (token, deadline, sibling panic,
    /// shutdown) so `block_on` loops re-check their scope chains.
    pub(crate) async_waiters: AsyncWaiters,
    /// The epoll reactor + timer wheel, polled by parked workers.
    pub(crate) reactor: Reactor,
    /// The global stack pool.
    pub pool: Arc<StackPool>,
    /// The configuration the runtime was built with.
    pub config: Config,
    /// Per-worker trace buffers; `Some` iff the runtime was configured
    /// with `Config::tracing(true)`.
    #[cfg(feature = "trace")]
    pub trace: Option<Box<[nowa_trace::TraceBuffer]>>,
    /// Per-worker flight-recorder rings; `Some` iff the runtime was
    /// configured with `Config::flight_recorder`. Independent of `trace`:
    /// the flight recorder is bounded and exporter-free, so it can stay on
    /// even when full tracing is off.
    #[cfg(feature = "trace")]
    pub flight: Option<Box<[nowa_trace::FlightRing]>>,
    /// Per-worker fault-injection state; `Some` iff the runtime was
    /// configured with a `Config::chaos` knob.
    #[cfg(feature = "chaos")]
    pub chaos: Option<Box<[chaos::ChaosWorkerState]>>,
    /// Stall reports emitted by the watchdog since startup.
    pub watchdog_reports: AtomicU64,
}

impl Shared {
    /// Aggregated scheduler statistics.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::aggregate(&self.stats)
    }
}

/// One worker: an OS thread plus its scheduling state.
pub struct Worker {
    /// Index into `Shared::stealers` / `Shared::stats`.
    pub index: usize,
    /// Owner side of this worker's deque.
    pub deque: OwnerDeque,
    /// Shared runtime state.
    pub shared: Arc<Shared>,
    /// Private stack cache over the global pool.
    pub cache: WorkerStackCache,
    /// Handle of the stack the worker is currently executing on.
    pub current_stack: Option<Stack>,
    /// Staging slot: a freshly acquired stack about to be switched onto.
    pub incoming_stack: Option<Stack>,
    /// Staging slot: an abandoned stack, recycled at the next resume site.
    pub pending_recycle: Option<Stack>,
    /// Continuation of `worker_main` on the OS thread stack (exit path).
    pub exit_ctx: RawContext,
    /// xorshift64* state for victim selection.
    pub rng: u64,
    /// Victim of this worker's most recent successful steal
    /// (`usize::MAX` = none yet); retried first in every sweep.
    pub last_victim: usize,
    /// The ambient cancellation scope: the scope governing whatever code
    /// this worker is currently running. Re-established at every resume
    /// boundary from the resumed frame's recorded scope (and reset to
    /// `Shared::cancel_root` before each root task), so freshly created
    /// frames always inherit the right scope even after migration.
    pub(crate) cancel_scope: *const CancelCell,
}

// SAFETY: a Worker is moved to its OS thread once at startup and from then
// on only accessed by whichever single thread currently executes with it as
// `current_worker` (the raw context/stack fields are what inhibit the auto
// impl).
unsafe impl Send for Worker {}

impl Worker {
    /// This worker's stat block.
    #[inline]
    pub fn stats(&self) -> &WorkerStats {
        &self.shared.stats[self.index]
    }

    /// Next pseudo-random number (xorshift64*).
    #[inline]
    pub fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform random index in `0..n` via Lemire's multiply-shift reduction
    /// — unbiased, unlike `next_rand() % n` (a `% n` of a 64-bit value
    /// over-weights the low residues whenever `n` doesn't divide `2^64`).
    #[inline]
    pub fn next_rand_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_rand() as u128) * (n as u128)) >> 64) as usize
    }
}

std::thread_local! {
    static CURRENT_WORKER: Cell<*mut Worker> = const { Cell::new(core::ptr::null_mut()) };
}

/// The worker the calling OS thread belongs to, or null when the thread is
/// not a runtime worker (e.g. user threads calling the API — they fall back
/// to serial execution).
///
/// Deliberately `#[inline(never)]`: a continuation may migrate between OS
/// threads at every capture point, so thread-local addresses must never be
/// cached across one; an uninlinable function re-derives the TLS slot on
/// every call.
#[inline(never)]
pub fn current_worker() -> *mut Worker {
    CURRENT_WORKER.with(|c| c.get())
}

/// Installs the worker for the calling OS thread. `#[inline(never)]` for
/// the same reason as [`current_worker`].
#[inline(never)]
pub fn set_current_worker(worker: *mut Worker) {
    CURRENT_WORKER.with(|c| c.set(worker));
}

/// Aborts the process if dropped by unwinding — runtime-internal code must
/// never unwind through a fiber base frame (undefined behaviour).
pub struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("nowa-runtime: internal panic unwound to a fiber base; aborting");
        std::process::abort();
    }
}

/// Resumes a taken continuation, handing over the current stack for
/// recycling. Diverges into the resumed control flow.
///
/// # Safety
/// `rec` must be a continuation record exclusively owned by this control
/// flow (freshly popped/stolen), with a captured `ctx`.
pub unsafe fn resume_record(worker: *mut Worker, rec: Rec) -> ! {
    unsafe {
        debug_assert!((*worker).pending_recycle.is_none());
        // The resumed continuation belongs to the record's frame: make its
        // scope this worker's ambient so nested frames inherit it.
        (*worker).cancel_scope = (*(*rec.as_ptr()).frame).core.scope.get();
        (*worker).pending_recycle = (*worker).current_stack.take();
        let ctx = (*rec.as_ptr()).ctx;
        debug_assert!(!ctx.is_null());
        resume(ctx, worker as *mut c_void)
    }
}

/// Resumes the suspended sync continuation of `frame`. Diverges.
///
/// # Safety
/// The caller must have won the sync (its join observed the restored
/// counter hit zero), which makes it the unique owner of the suspension
/// state.
pub unsafe fn resume_sync(worker: *mut Worker, frame: *const crate::record::Frame) -> ! {
    unsafe {
        let scope = (*frame).core.scope.get();
        // SAFETY: the frame is live (we own its suspension), so its whole
        // scope chain is live.
        if cancel::cancelled_chain(scope).is_some() {
            // Resuming a suspension whose scope is cancelled *is* the
            // abort: the continuation proceeds straight into the sync
            // checkpoint and unwinds. Attribute it as such.
            WorkerStats::bump(&(*worker).stats().aborts);
            obs::on_abort(worker, frame);
        } else {
            WorkerStats::bump(&(*worker).stats().sync_resumes);
            obs::on_sync_resume(worker, frame);
        }
        (*worker).cancel_scope = scope;
        debug_assert!((*worker).pending_recycle.is_none());
        (*worker).pending_recycle = (*worker).current_stack.take();
        let ctx = *(*frame).core.sync_ctx.get();
        debug_assert!(!ctx.is_null());
        resume(ctx, worker as *mut c_void)
    }
}

/// The work-finding loop (never returns; diverges into resumed work or the
/// worker's exit continuation).
///
/// Order per iteration: shutdown check → own deque bottom → root injector →
/// steal sweep (last-victim affinity, then a random walk) → the idle
/// ladder: exponential spin, OS yields, and finally the announce-validate-
/// park descent of [`crate::idle`]. `failed_sweeps` only resets when actual
/// work was found — a perpetually contended victim (`Steal::Retry`) no
/// longer pins every thief at maximum spin.
///
/// # Safety
/// Must run on a worker thread whose `current_stack` invariant holds.
pub unsafe fn find_work() -> ! {
    let mut failed_sweeps: u32 = 0;
    loop {
        // Re-derive the worker every iteration: running a root task may
        // return on a different OS thread (see module docs).
        let worker = current_worker();
        debug_assert!(!worker.is_null());
        let shared: &Shared = unsafe { &*Arc::as_ptr(&(*worker).shared) };
        let protocol = shared.flavor.protocol;

        // Liveness heartbeat for the stall watchdog: even a fully idle
        // worker ticks this every backoff period.
        unsafe { WorkerStats::bump(&(*worker).stats().loop_ticks) };

        if shared.shutdown.load(Ordering::Acquire) {
            unsafe {
                (*worker).pending_recycle = (*worker).current_stack.take();
                let ctx = (*worker).exit_ctx;
                resume(ctx, worker as *mut c_void)
            }
        }

        // Local work first: the bottom of our own deque holds the deepest
        // ancestor continuation (cheapest to resume, busy-leaves style).
        if let Some(rec) = flavor::take_own(protocol, unsafe { &(*worker).deque }) {
            unsafe {
                WorkerStats::bump(&(*worker).stats().own_takes);
                if flavor::last_pop_was_private(&(*worker).deque) {
                    WorkerStats::bump(&(*worker).stats().private_pops);
                }
                obs::on_own_take(worker, (*rec.as_ptr()).frame);
                resume_record(worker, rec)
            }
        }

        // Claimed async continuations next: a ready cell was explicitly
        // made runnable by a waker and its stack is already built, so it
        // outranks starting a fresh root.
        if let Some(cell) = shared.ready.pop() {
            unsafe {
                // Drop our queue Arc *before* diverging into the resume
                // (nothing after `resume_ready` runs). The parked
                // `block_on` frame holds its own Arc on the suspended
                // stack, which keeps the cell alive across the switch.
                let ptr = Arc::as_ptr(&cell.0);
                drop(cell);
                resume_ready(worker, ptr)
            }
        }

        // Root tasks. An empty poll is three loads on read-mostly lines —
        // N workers polling no longer serialize on an injector lock.
        if let Some(task) = shared.injector.pop() {
            unsafe {
                WorkerStats::bump(&(*worker).stats().roots);
                obs::on_root(worker);
                // A root tree starts unscoped: governed by the runtime
                // root cell only.
                (*worker).cancel_scope = &shared.cancel_root;
            }
            // The task's control flow may suspend internally and complete
            // on another worker; everything below re-derives state.
            (task.run)();
            failed_sweeps = 0;
            continue;
        }

        // Steal sweep: the last successful victim first (work tends to
        // cluster — the victim that fed us last is the best bet), then a
        // full walk from an unbiased random start.
        let n = shared.stealers.len();
        if n > 1 {
            let me = unsafe { (*worker).index };
            let lv = unsafe { (*worker).last_victim };
            let start = unsafe { (*worker).next_rand_below(n) };
            let retry_budget = shared.config.idle.steal_retries;
            // Candidate 0 is the affinity victim; candidates 1..=n walk the
            // ring (the affinity victim may repeat — one cheap extra probe).
            for i in 0..=n {
                let victim = if i == 0 {
                    if lv < n && lv != me {
                        lv
                    } else {
                        continue;
                    }
                } else {
                    (start + i - 1) % n
                };
                if victim == me {
                    continue;
                }
                // Bounded per-victim retry with exponential backoff: a lost
                // race means the victim *has* work, so it's worth a few
                // increasingly spaced attempts — but never an unbounded
                // livelock against a contended victim.
                let mut attempt: u32 = 0;
                loop {
                    unsafe { chaos::on_steal_attempt(worker) };
                    match flavor::steal_from(protocol, &shared.stealers[victim]) {
                        Steal::Success(rec) => unsafe {
                            (*worker).last_victim = victim;
                            WorkerStats::bump(&(*worker).stats().steals);
                            obs::on_steal_success(worker, victim, (*rec.as_ptr()).frame);
                            // Chaos: forced cancellation at the steal
                            // boundary — the stolen continuation resumes
                            // straight into a cancelled checkpoint.
                            if chaos::on_force_cancel(worker) {
                                cancel::cancel_enclosing_region(
                                    (*(*rec.as_ptr()).frame).core.scope.get(),
                                    shared,
                                    cancel::CancelReason::Token,
                                );
                            }
                            resume_record(worker, rec)
                        },
                        Steal::Retry => {
                            unsafe {
                                WorkerStats::bump(&(*worker).stats().steal_retry);
                                obs::on_steal_retry(worker, victim);
                            }
                            attempt += 1;
                            if attempt > retry_budget {
                                break;
                            }
                            for _ in 0..(1u32 << attempt.min(8)) {
                                core::hint::spin_loop();
                            }
                        }
                        Steal::Empty => {
                            unsafe {
                                WorkerStats::bump(&(*worker).stats().steal_empty);
                                obs::on_steal_empty(worker, victim);
                            }
                            break;
                        }
                    }
                }
            }
        }

        // Nothing anywhere: descend the idle ladder. `failed_sweeps` resets
        // only on actual work (the resume/continue paths above).
        failed_sweeps = failed_sweeps.saturating_add(1);
        unsafe { obs::on_idle(worker) };
        let idle_cfg = &shared.config.idle;
        let force_park = unsafe { chaos::on_idle_backoff(worker) };
        if force_park || failed_sweeps > idle_cfg.spin_sweeps + idle_cfg.yield_sweeps {
            unsafe { park_worker(worker, shared) };
        } else if failed_sweeps <= idle_cfg.spin_sweeps {
            // Short exponential spin: cheapest, keeps steal latency minimal
            // while work is likely to reappear immediately.
            for _ in 0..(1u32 << failed_sweeps.min(10)) {
                core::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
    }
}

/// The deep-idle descent: announce intent to sleep, re-validate every work
/// source, then futex-park until a targeted wake, the `max_park` timeout,
/// or a stale epoch. The announce-then-re-scan order is what makes the
/// engine lost-wakeup-free: any producer whose push is ordered after our
/// announce sees our sleeper count (and wakes us); any push ordered before
/// it is seen by the re-scan (and aborts the park).
///
/// # Safety
/// `worker` must be the calling thread's live worker; `shared` its runtime.
unsafe fn park_worker(worker: *mut Worker, shared: &Shared) {
    let index = unsafe { (*worker).index };

    // Reactor-poller branch: the first idle worker to claim the poller
    // slot sleeps in `epoll_wait` instead of on a futex, so I/O readiness
    // and timers are served by parked capacity — no dedicated reactor
    // thread. The claimant does NOT announce to the idle engine (it is
    // not futex-parked and a targeted wake could not reach it); producers
    // that find no futex sleeper kick the eventfd instead, and the poll
    // timeout is clamped to `max_park` as the store-buffering backstop.
    if shared.reactor.try_claim(index) {
        // Same validation re-scan as the futex path: anything runnable
        // aborts the poll before it blocks.
        let runnable = shared.shutdown.load(Ordering::Acquire)
            || !shared.injector.is_empty()
            || !shared.ready.is_empty()
            || shared
                .stealers
                .iter()
                .enumerate()
                .any(|(i, s)| i != index && flavor::stealer_len(s) > 0);
        if !runnable {
            let max_ms = (shared
                .config
                .idle
                .max_park
                .as_millis()
                .min(i32::MAX as u128) as u64)
                .max(1);
            let timeout = shared
                .reactor
                .timers
                .next_timeout_ms(std::time::Instant::now(), max_ms);
            unsafe { shared.reactor.poll(worker, timeout) };
        }
        shared.reactor.release();
        return;
    }

    let epoch = shared.idle.announce(index);

    // Validation re-scan: anything runnable anywhere? (Our own deque can't
    // have grown — only this worker pushes to it — so scan the others.)
    let runnable = shared.shutdown.load(Ordering::Acquire)
        || !shared.injector.is_empty()
        || !shared.ready.is_empty()
        || shared
            .stealers
            .iter()
            .enumerate()
            .any(|(i, s)| i != index && flavor::stealer_len(s) > 0);
    if runnable {
        if shared.idle.cancel(index) {
            // A targeted wake raced onto us while we were cancelling; pass
            // it on so the work that triggered it still gets a thief.
            if let Some(target) = shared.idle.wake_one() {
                unsafe {
                    WorkerStats::bump(&(*worker).stats().wakes_issued);
                    obs::on_wake(worker, target);
                }
            }
        }
        return;
    }

    let skip_wait = unsafe { chaos::on_park_wait(worker) };
    unsafe {
        WorkerStats::bump(&(*worker).stats().parks);
        obs::on_park(worker);
    }
    let t0 = std::time::Instant::now();
    let timeout_ns = shared.config.idle.max_park.as_nanos().min(u64::MAX as u128) as u64;
    let woken = shared.idle.park(index, epoch, timeout_ns.max(1), skip_wait);
    unsafe {
        let stats = (*worker).stats();
        stats
            .parked_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if !woken {
            WorkerStats::bump(&stats.wakes_spurious);
        }
        obs::on_unpark(worker);
    }
}

/// The wake hook of the async ready queue, callable from ANY thread (a
/// `Waker` may fire from a non-worker thread): one targeted futex wake if
/// a sleeper exists, otherwise a reactor kick — the only parked worker may
/// be the claimed poller, which the idle engine cannot see.
pub(crate) fn wake_for_ready(shared: &Shared) {
    if shared.idle.wake_one().is_none() {
        shared.reactor.kick_if_claimed();
    }
}

/// The spawn-path wake hook: one relaxed load of the sleeper count on the
/// common path; only when sleepers exist *and* this worker's deque has
/// crossed the configured depth does a targeted single-worker wake go out.
/// (Depth gating keeps a lone spawn-pop-spawn-pop loop from paying wake
/// overhead for work it is about to reclaim itself.)
///
/// # Safety
/// `worker` must be the calling thread's live worker.
#[inline]
pub(crate) unsafe fn maybe_wake_after_spawn(worker: *mut Worker) {
    let shared: &Shared = unsafe { &*Arc::as_ptr(&(*worker).shared) };
    if shared.idle.sleepers() == 0 {
        // No futex sleeper — but the claimed reactor poller (invisible to
        // the idle engine) may be napping. Kicks are eventfd-coalesced, so
        // a spawn storm pays at most one write per poll cycle.
        shared.reactor.kick_if_claimed();
        return;
    }
    let threshold = shared.config.idle.wake_threshold;
    if threshold > 0 && flavor::public_occupancy(unsafe { &(*worker).deque }) < threshold {
        return;
    }
    if let Some(target) = shared.idle.wake_one() {
        unsafe {
            WorkerStats::bump(&(*worker).stats().wakes_issued);
            obs::on_wake(worker, target);
        }
    }
}

/// Promotion bookkeeping: one batch, `moved` items. No-op when `moved`
/// is 0 so callers can pass a promotion result unconditionally.
///
/// # Safety
/// `worker` must be the calling thread's live worker.
#[inline]
pub(crate) unsafe fn note_promotion(worker: *mut Worker, moved: u32) {
    if moved > 0 {
        unsafe {
            let stats = (*worker).stats();
            WorkerStats::bump(&stats.promotions);
            WorkerStats::add(&stats.promoted_items, u64::from(moved));
        }
    }
}

/// The split-deque wake hook, called when a spawn push promoted items:
/// if sleepers exist, optionally promote another batch (`promote_on_wake`,
/// so the woken thief finds more than a single stealable item) and issue
/// one targeted wake, gated on the *public* depth — a wake is only useful
/// if the woken thief can actually see the work.
///
/// # Safety
/// `worker` must be the calling thread's live worker.
#[inline]
pub(crate) unsafe fn wake_after_promotion(worker: *mut Worker) {
    let shared: &Shared = unsafe { &*Arc::as_ptr(&(*worker).shared) };
    if shared.idle.sleepers() == 0 {
        // See `maybe_wake_after_spawn`: the poller doesn't announce.
        shared.reactor.kick_if_claimed();
        return;
    }
    let split = &shared.config.split;
    if split.promote_on_wake {
        let moved = flavor::force_promote(unsafe { &(*worker).deque }, split.promote_batch.max(1));
        unsafe { note_promotion(worker, moved) };
    }
    let threshold = shared.config.idle.wake_threshold;
    if threshold > 0 && flavor::public_occupancy(unsafe { &(*worker).deque }) < threshold {
        return;
    }
    if let Some(target) = shared.idle.wake_one() {
        unsafe {
            WorkerStats::bump(&(*worker).stats().wakes_issued);
            obs::on_wake(worker, target);
        }
    }
}

// SAFETY: callers: invoked only via `capture_and_run_on` from `worker_main`
// with `arg` pointing at this thread's boxed, pinned `Worker`.
unsafe extern "C" fn worker_body(arg: *mut c_void) -> ! {
    // Armed for the whole body: an unwinding panic would otherwise reach
    // the fiber base frame (undefined behaviour).
    let _guard = AbortOnUnwind;
    unsafe {
        let worker = arg as *mut Worker;
        (*worker).current_stack = (*worker).incoming_stack.take();
        find_work()
    }
}

/// OS-thread entry of a worker. Returns when the runtime shuts down.
#[allow(clippy::boxed_local)] // the Box pins the Worker's address for TLS/raw pointers
pub fn worker_main(mut worker: Box<Worker>) {
    if worker.shared.config.pin_workers {
        let _ = nowa_context::sys::pin_current_thread_to(worker.index);
    }
    // Label the thread for guard-page fault reports, and give the SIGSEGV
    // handler an alternate stack to run on: at the moment of a fiber stack
    // overflow this thread's sp points into the guard page, so the handler
    // cannot run on the faulting stack. Held for the thread's lifetime.
    nowa_context::signal::set_thread_label(worker.index);
    let _alt = if worker.shared.config.guard_diagnostics {
        nowa_context::signal::AltStack::install().ok()
    } else {
        None
    };
    let wptr: *mut Worker = &mut *worker;
    set_current_worker(wptr);
    // SAFETY: `wptr` points at the boxed worker pinned for this whole
    // function; `worker_body` diverges into the scheduler and resumes
    // `exit_ctx` exactly once, at shutdown.
    unsafe {
        let first = (*wptr).cache.get();
        let top = first.top();
        (*wptr).incoming_stack = Some(first);
        let payload =
            capture_and_run_on(&mut (*wptr).exit_ctx, top, worker_body, wptr as *mut c_void);
        // ---- shutdown: back on the OS thread stack ----
        let worker_now = payload as *mut Worker;
        debug_assert_eq!(worker_now, wptr, "exit context resumed by its owner");
        if let Some(stack) = (*worker_now).pending_recycle.take() {
            (*worker_now).cache.put(stack);
        }
    }
    set_current_worker(core::ptr::null_mut());
    // `worker` drops here; its cache drains into the shared pool.
}
