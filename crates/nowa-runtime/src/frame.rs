//! Spawning-frame state: the paper's per-frame "stack object" (§IV-B).
//!
//! Every *spawning function* instance owns one [`Frame`](crate::record::Frame). It carries the
//! protocol-specific join state (`P::JoinState` — the wait-free counter pair
//! for Nowa, a mutex-guarded count for the Fibril-style baseline) plus the
//! protocol-independent suspension state shared by all flavors:
//!
//! * the captured *sync continuation*, resumed by the last joining child,
//! * the handle of the stack the suspended frame lives on (the cactus-stack
//!   node, cf. Listing 2's `f->stack = victim->stack`),
//! * a slot for a panic payload propagated out of a child strand.

use core::cell::UnsafeCell;
use std::any::Any;

use nowa_context::{RawContext, Stack};
use parking_lot::Mutex;

/// Panic payload captured from a child strand.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Protocol-independent frame state.
///
/// # Synchronization
///
/// The `UnsafeCell` fields are written by the main-path control flow while
/// no joiner can observe the sync condition (phase 1 of the protocol, or
/// under the frame lock in the locked protocol) and read by the single
/// control flow that wins the sync — ordering is established by the join
/// counter's `AcqRel` RMWs (or the frame mutex).
pub struct FrameCore {
    /// Continuation saved at a suspending explicit sync.
    pub sync_ctx: UnsafeCell<RawContext>,
    /// The stack holding the suspended frame; the resuming control flow
    /// takes it over as its current stack.
    pub suspended_stack: UnsafeCell<Option<Stack>>,
    /// First panic observed in any child strand of this frame. Multiple
    /// children may panic concurrently, hence the mutex (cold path).
    pub panic: Mutex<Option<PanicPayload>>,
}

impl FrameCore {
    /// A fresh, non-suspended frame core.
    pub fn new() -> FrameCore {
        FrameCore {
            sync_ctx: UnsafeCell::new(RawContext::null()),
            suspended_stack: UnsafeCell::new(None),
            panic: Mutex::new(None),
        }
    }

    /// Records a child panic (first one wins).
    pub fn set_panic(&self, payload: PanicPayload) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Takes a recorded panic, if any. Called by the main-path control flow
    /// after a completed sync.
    pub fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().take()
    }
}

impl Default for FrameCore {
    fn default() -> Self {
        FrameCore::new()
    }
}

// SAFETY: the frame is shared between workers by design; the runtime
// upholds the access discipline documented above (each `UnsafeCell` is
// written only by the party the join protocol designates).
unsafe impl Send for FrameCore {}
// SAFETY: as for `Send`.
unsafe impl Sync for FrameCore {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_slot_first_wins() {
        let core = FrameCore::new();
        core.set_panic(Box::new("first"));
        core.set_panic(Box::new("second"));
        let payload = core.take_panic().unwrap();
        assert_eq!(*payload.downcast::<&str>().unwrap(), "first");
        assert!(core.take_panic().is_none());
    }

    #[test]
    fn fresh_core_is_empty() {
        let core = FrameCore::new();
        // SAFETY: `core` is unshared here, so reading its cells races with
        // nothing.
        assert!(unsafe { &*core.sync_ctx.get() }.is_null());
        // SAFETY: as above.
        assert!(unsafe { &*core.suspended_stack.get() }.is_none());
    }
}
