//! Spawning-frame state: the paper's per-frame "stack object" (§IV-B).
//!
//! Every *spawning function* instance owns one [`Frame`](crate::record::Frame). It carries the
//! protocol-specific join state (`P::JoinState` — the wait-free counter pair
//! for Nowa, a mutex-guarded count for the Fibril-style baseline) plus the
//! protocol-independent suspension state shared by all flavors:
//!
//! * the captured *sync continuation*, resumed by the last joining child,
//! * the handle of the stack the suspended frame lives on (the cactus-stack
//!   node, cf. Listing 2's `f->stack = victim->stack`),
//! * a slot for a panic payload propagated out of a child strand.

use core::cell::{Cell, UnsafeCell};
use std::any::Any;

use nowa_context::{RawContext, Stack};
use parking_lot::Mutex;

use crate::cancel::{CancelCell, Cancelled};
use crate::sync::{AtomicU32, Ordering};

/// Panic payload captured from a child strand.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Protocol-independent frame state.
///
/// # Synchronization
///
/// The `UnsafeCell` fields are written by the main-path control flow while
/// no joiner can observe the sync condition (phase 1 of the protocol, or
/// under the frame lock in the locked protocol) and read by the single
/// control flow that wins the sync — ordering is established by the join
/// counter's `AcqRel` RMWs (or the frame mutex).
///
/// # Layout
///
/// Hot/cold split (DESIGN.md §6g): the fields every spawn checkpoint reads
/// (`flagged`, `scope`) share the first 128-byte line; the suspension and
/// panic state — touched only when a sync actually suspends or a child
/// faults — starts on the second, so checkpoint polling never contends
/// with a suspension in flight. Asserted below and in `layout.rs`; under
/// loom the attributes drop away (model-sized atomics).
#[cfg_attr(not(loom), repr(C, align(128)))]
pub struct FrameCore {
    /// Set (relaxed) when any child strand of this frame records a panic;
    /// per-spawn checkpoints read it to skip not-yet-started siblings even
    /// when no cancellable region governs the frame.
    pub flagged: AtomicU32,
    /// The innermost cancellation scope governing this frame. Written once
    /// by the spawning strand before the frame is published to any child
    /// (so reads never race a write); read at checkpoints and at resume
    /// boundaries to re-establish the worker's ambient scope.
    pub(crate) scope: Cell<*const CancelCell>,
    #[cfg(not(loom))]
    _hot_pad: [u8; 112],
    /// Continuation saved at a suspending explicit sync.
    pub sync_ctx: UnsafeCell<RawContext>,
    /// The stack holding the suspended frame; the resuming control flow
    /// takes it over as its current stack.
    pub suspended_stack: UnsafeCell<Option<Stack>>,
    /// First panic observed in any child strand of this frame. Multiple
    /// children may panic concurrently, hence the mutex (cold path).
    pub panic: Mutex<Option<PanicPayload>>,
}

#[cfg(not(loom))]
const _: () = {
    // Checkpoint-polled fields on line one, suspension state on line two.
    assert!(core::mem::offset_of!(FrameCore, flagged) == 0);
    assert!(core::mem::offset_of!(FrameCore, scope) == 8);
    assert!(core::mem::offset_of!(FrameCore, sync_ctx) == 128);
    assert!(core::mem::align_of::<FrameCore>() == 128);
};

impl FrameCore {
    /// A fresh, non-suspended frame core.
    pub fn new() -> FrameCore {
        FrameCore {
            flagged: AtomicU32::new(0),
            scope: Cell::new(core::ptr::null()),
            #[cfg(not(loom))]
            _hot_pad: [0; 112],
            sync_ctx: UnsafeCell::new(RawContext::null()),
            suspended_stack: UnsafeCell::new(None),
            panic: Mutex::new(None),
        }
    }

    /// Records a child panic. First one wins, with one exception: a *real*
    /// fault replaces a stored [`Cancelled`] payload, so when cancellation
    /// races an organic panic the genuine fault is the one that surfaces
    /// (the unwind cancellation triggered must not mask what it found).
    pub fn set_panic(&self, payload: PanicPayload) {
        // Relaxed latch: readers only use it to skip future spawns; the
        // payload itself is published by the mutex below.
        self.flagged.store(1, Ordering::Relaxed);
        let mut slot = self.panic.lock();
        let displaceable = match &*slot {
            None => true,
            Some(stored) => {
                stored.downcast_ref::<Cancelled>().is_some()
                    && payload.downcast_ref::<Cancelled>().is_none()
            }
        };
        if displaceable {
            *slot = Some(payload);
        }
    }

    /// Whether any child strand of this frame has recorded a panic.
    // lint: hot-path
    #[inline(always)]
    pub fn is_flagged(&self) -> bool {
        self.flagged.load(Ordering::Relaxed) != 0
    }

    /// Takes a recorded panic, if any. Called by the main-path control flow
    /// after a completed sync.
    pub fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().take()
    }
}

impl Default for FrameCore {
    fn default() -> Self {
        FrameCore::new()
    }
}

// SAFETY: the frame is shared between workers by design; the runtime
// upholds the access discipline documented above (each `UnsafeCell` is
// written only by the party the join protocol designates).
unsafe impl Send for FrameCore {}
// SAFETY: as for `Send`.
unsafe impl Sync for FrameCore {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_slot_first_wins() {
        let core = FrameCore::new();
        core.set_panic(Box::new("first"));
        core.set_panic(Box::new("second"));
        let payload = core.take_panic().unwrap();
        assert_eq!(*payload.downcast::<&str>().unwrap(), "first");
        assert!(core.take_panic().is_none());
    }

    #[test]
    fn real_fault_displaces_cancelled_payload() {
        use crate::cancel::{CancelReason, Cancelled};
        let core = FrameCore::new();
        core.set_panic(Box::new(Cancelled {
            reason: CancelReason::Token,
        }));
        assert!(core.is_flagged());
        core.set_panic(Box::new("real fault"));
        let payload = core.take_panic().unwrap();
        assert_eq!(*payload.downcast::<&str>().unwrap(), "real fault");

        // But cancellation never displaces a real fault…
        core.set_panic(Box::new("first fault"));
        core.set_panic(Box::new(Cancelled {
            reason: CancelReason::Token,
        }));
        let payload = core.take_panic().unwrap();
        assert_eq!(*payload.downcast::<&str>().unwrap(), "first fault");

        // …and a second Cancelled never displaces the first.
        core.set_panic(Box::new(Cancelled {
            reason: CancelReason::Deadline,
        }));
        core.set_panic(Box::new(Cancelled {
            reason: CancelReason::Token,
        }));
        let payload = core.take_panic().unwrap();
        let c = payload.downcast::<Cancelled>().unwrap();
        assert_eq!(c.reason, CancelReason::Deadline);
    }

    #[test]
    fn fresh_core_is_empty() {
        let core = FrameCore::new();
        // SAFETY: `core` is unshared here, so reading its cells races with
        // nothing.
        assert!(unsafe { &*core.sync_ctx.get() }.is_null());
        // SAFETY: as above.
        assert!(unsafe { &*core.suspended_stack.get() }.is_none());
    }
}
