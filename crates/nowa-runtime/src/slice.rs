//! Parallel slice operations — a small data-parallel layer over the
//! fork/join combinators, in the spirit of Rayon's parallel iterators but
//! built directly on continuation-stealing `join2` trees.
//!
//! All functions degrade to serial loops outside a runtime (serial
//! elision) and are deterministic: reductions fold in a fixed balanced
//! tree over the index space, so floating-point results are reproducible
//! across worker counts.

use crate::api::join2;

/// Default grain when the caller passes 0: targets a few thousand leaf
/// tasks, enough parallel slack for hundreds of workers.
fn grain_for(len: usize, grain: usize) -> usize {
    if grain > 0 {
        return grain;
    }
    (len / 4096).max(1)
}

/// Applies `f` to every element in parallel.
pub fn for_each_mut<T, F>(data: &mut [T], grain: usize, f: &F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let grain = grain_for(data.len(), grain);
    if data.len() <= grain {
        for item in data {
            f(item);
        }
        return;
    }
    let mid = data.len() / 2;
    let (lo, hi) = data.split_at_mut(mid);
    join2(|| for_each_mut(lo, grain, f), || for_each_mut(hi, grain, f));
}

/// Folds `map(element)` with the associative `reduce`; `None` when empty.
pub fn map_fold<T, U, M, R>(data: &[T], grain: usize, map: &M, reduce: &R) -> Option<U>
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: Fn(U, U) -> U + Sync,
{
    let grain = grain_for(data.len(), grain);
    match data.len() {
        0 => None,
        n if n <= grain => {
            let mut iter = data.iter();
            let first = map(iter.next().expect("non-empty"));
            Some(iter.fold(first, |acc, x| reduce(acc, map(x))))
        }
        n => {
            let (lo, hi) = data.split_at(n / 2);
            let (a, b) = join2(
                || map_fold(lo, grain, map, reduce),
                || map_fold(hi, grain, map, reduce),
            );
            match (a, b) {
                (Some(a), Some(b)) => Some(reduce(a, b)),
                (a, b) => a.or(b),
            }
        }
    }
}

/// Parallel sum of `map(element)`.
pub fn sum_by<T, M>(data: &[T], grain: usize, map: &M) -> f64
where
    T: Sync,
    M: Fn(&T) -> f64 + Sync,
{
    map_fold(data, grain, map, &|a, b| a + b).unwrap_or(0.0)
}

/// Parallel maximum by a key function; `None` when empty.
pub fn max_by_key<'a, T, K, F>(data: &'a [T], grain: usize, key: &F) -> Option<&'a T>
where
    T: Sync,
    K: PartialOrd + Send,
    F: Fn(&T) -> K + Sync,
{
    // Fold over indices (usize is Send) and index back at the end, which
    // sidesteps returning borrows out of the closures.
    let best = crate::api::map_reduce(
        0..data.len(),
        grain_for(data.len(), grain),
        &|i| i,
        &|a, b| {
            if key(&data[a]) >= key(&data[b]) {
                a
            } else {
                b
            }
        },
    )?;
    Some(&data[best])
}

/// Counts elements satisfying `pred`, in parallel.
pub fn count_if<T, F>(data: &[T], grain: usize, pred: &F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    map_fold(data, grain, &|item| pred(item) as usize, &|a, b| a + b).unwrap_or(0)
}

/// True if any element satisfies `pred`.
///
/// Note: fully-strict fork/join has no cancellation, so this does not
/// short-circuit across task boundaries (it does within each leaf).
pub fn any<T, F>(data: &[T], grain: usize, pred: &F) -> bool
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    let grain = grain_for(data.len(), grain);
    if data.len() <= grain {
        return data.iter().any(pred);
    }
    let (lo, hi) = data.split_at(data.len() / 2);
    let (a, b) = join2(|| any(lo, grain, pred), || any(hi, grain, pred));
    a || b
}

/// Parallel prefix sums (inclusive scan) with the two-pass work-efficient
/// scheme: reduce per block, scan block sums serially, then offset each
/// block in parallel.
pub fn prefix_sum(data: &mut [u64], grain: usize) {
    let grain = grain_for(data.len(), grain).max(2);
    let n = data.len();
    if n <= grain {
        for i in 1..n {
            data[i] += data[i - 1];
        }
        return;
    }
    let blocks = n.div_ceil(grain);
    // Pass 1: scan each block independently, collecting block totals.
    let mut totals = vec![0u64; blocks];
    {
        let totals_chunks: Vec<(&mut [u64], &mut u64)> = {
            // Pair each data block with its total slot.
            let mut pairs = Vec::with_capacity(blocks);
            let mut rest: &mut [u64] = data;
            let mut tslots: &mut [u64] = &mut totals;
            while !rest.is_empty() {
                let take = rest.len().min(grain);
                let (block, r) = rest.split_at_mut(take);
                let (t, ts) = tslots.split_at_mut(1);
                pairs.push((block, &mut t[0]));
                rest = r;
                tslots = ts;
            }
            pairs
        };
        fn scan_blocks(pairs: &mut [(&mut [u64], &mut u64)]) {
            match pairs.len() {
                0 => {}
                1 => {
                    let (block, total) = &mut pairs[0];
                    for i in 1..block.len() {
                        block[i] += block[i - 1];
                    }
                    **total = *block.last().expect("non-empty block");
                }
                n => {
                    let (lo, hi) = pairs.split_at_mut(n / 2);
                    join2(|| scan_blocks(lo), || scan_blocks(hi));
                }
            }
        }
        let mut pairs = totals_chunks;
        scan_blocks(&mut pairs);
    }
    // Pass 2: exclusive scan of block totals (serial, blocks ≪ n).
    let mut acc = 0u64;
    for t in &mut totals {
        let next = acc + *t;
        *t = acc;
        acc = next;
    }
    // Pass 3: add each block's offset in parallel.
    fn offset_blocks(pairs: &mut [(&mut [u64], u64)]) {
        match pairs.len() {
            0 => {}
            1 => {
                let (block, offset) = &mut pairs[0];
                for v in block.iter_mut() {
                    *v += *offset;
                }
            }
            n => {
                let (lo, hi) = pairs.split_at_mut(n / 2);
                join2(|| offset_blocks(lo), || offset_blocks(hi));
            }
        }
    }
    let mut pairs: Vec<(&mut [u64], u64)> = {
        let mut pairs = Vec::with_capacity(blocks);
        let mut rest: &mut [u64] = data;
        let mut bi = 0;
        while !rest.is_empty() {
            let take = rest.len().min(grain);
            let (block, r) = rest.split_at_mut(take);
            pairs.push((block, totals[bi]));
            rest = r;
            bi += 1;
        }
        pairs
    };
    offset_blocks(&mut pairs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_mut_serial_elision() {
        let mut data: Vec<u32> = (0..100).collect();
        for_each_mut(&mut data, 8, &|x| *x *= 3);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i as u32) * 3);
        }
    }

    #[test]
    fn map_fold_matches_serial() {
        let data: Vec<u64> = (1..=1000).collect();
        let sum = map_fold(&data, 16, &|&x| x, &|a, b| a + b);
        assert_eq!(sum, Some(500500));
        let empty: Vec<u64> = vec![];
        assert_eq!(map_fold(&empty, 16, &|&x| x, &|a, b| a + b), None);
    }

    #[test]
    fn sum_by_and_count_if() {
        let data: Vec<i32> = (-50..50).collect();
        assert_eq!(sum_by(&data, 8, &|&x| x as f64), -50.0);
        assert_eq!(count_if(&data, 8, &|&x| x >= 0), 50);
    }

    #[test]
    fn max_by_key_finds_maximum() {
        let data = vec![3.0f64, -9.5, 12.25, 7.0];
        let max = max_by_key(&data, 2, &|&x: &f64| x).copied();
        assert_eq!(max, Some(12.25));
        let empty: Vec<f64> = vec![];
        assert!(max_by_key(&empty, 2, &|&x: &f64| x).is_none());
    }

    #[test]
    fn any_detects() {
        let data: Vec<u32> = (0..64).collect();
        assert!(any(&data, 4, &|&x| x == 63));
        assert!(!any(&data, 4, &|&x| x > 100));
    }

    #[test]
    fn prefix_sum_matches_serial() {
        for n in [0usize, 1, 2, 7, 64, 1000, 4097] {
            let mut data: Vec<u64> = (0..n as u64).map(|i| i % 13 + 1).collect();
            let mut expected = data.clone();
            for i in 1..expected.len() {
                expected[i] += expected[i - 1];
            }
            prefix_sum(&mut data, 32);
            assert_eq!(data, expected, "n = {n}");
        }
    }

    #[test]
    fn default_grain_is_sane() {
        assert_eq!(grain_for(100, 0), 1);
        assert_eq!(grain_for(100, 7), 7);
        assert_eq!(grain_for(1 << 20, 0), 256);
    }
}
