//! Runtime configuration.

use nowa_context::MadvisePolicy;

use crate::flavor::Flavor;

/// Configuration of a [`Runtime`](crate::runtime::Runtime).
///
/// Defaults mirror the paper's evaluation setup where applicable: 1 MiB
/// stacks, 4 KiB pages, no `madvise` on suspension (the Fig. 7
/// configuration), Nowa flavor (wait-free + CL queue).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of worker threads.
    pub workers: usize,
    /// Usable fiber-stack size in bytes (paper: 1 MiB).
    pub stack_size: usize,
    /// What to do with unused stack space on frame suspension (§V-B).
    pub madvise: MadvisePolicy,
    /// Runtime flavor: join protocol × deque algorithm.
    pub flavor: Flavor,
    /// Per-worker deque capacity (bounded algorithms; CL grows beyond it).
    pub deque_capacity: usize,
    /// Per-worker stack-cache capacity (paper: "small per worker buffers").
    pub stack_cache: usize,
    /// Stripes of the global stack pool (1 = the paper's single pool).
    pub pool_stripes: usize,
    /// Stacks pre-mapped into the global pool at startup.
    pub pool_prefill: usize,
    /// Pin worker `i` to CPU `i`.
    pub pin_workers: bool,
    /// Record scheduler traces (per-worker event rings + latency
    /// histograms). Takes effect only when the runtime is built with the
    /// `trace` cargo feature; without the feature the flag is accepted but
    /// inert, so callers don't need their own `cfg` gymnastics.
    pub tracing: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            stack_size: 1 << 20,
            madvise: MadvisePolicy::Keep,
            flavor: Flavor::NOWA,
            deque_capacity: 8192,
            stack_cache: 8,
            pool_stripes: 1,
            pool_prefill: 0,
            pin_workers: false,
            tracing: false,
        }
    }
}

impl Config {
    /// Default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Config {
        Config {
            workers,
            ..Config::default()
        }
    }

    /// Sets the flavor (builder style).
    pub fn flavor(mut self, flavor: Flavor) -> Config {
        self.flavor = flavor;
        self
    }

    /// Sets the madvise policy (builder style).
    pub fn madvise(mut self, policy: MadvisePolicy) -> Config {
        self.madvise = policy;
        self
    }

    /// Sets the usable stack size (builder style).
    pub fn stack_size(mut self, bytes: usize) -> Config {
        self.stack_size = bytes;
        self
    }

    /// Enables or disables scheduler tracing (builder style). See the
    /// field docs: requires the `trace` cargo feature to have any effect.
    pub fn tracing(mut self, enabled: bool) -> Config {
        self.tracing = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = Config::default();
        assert_eq!(c.stack_size, 1 << 20);
        assert_eq!(c.madvise, MadvisePolicy::Keep);
        assert_eq!(c.flavor, Flavor::NOWA);
        assert!(c.workers >= 1);
    }

    #[test]
    fn builder_style() {
        let c = Config::with_workers(3)
            .flavor(Flavor::FIBRIL)
            .madvise(MadvisePolicy::Free)
            .stack_size(64 * 1024)
            .tracing(true);
        assert_eq!(c.workers, 3);
        assert_eq!(c.flavor, Flavor::FIBRIL);
        assert_eq!(c.madvise, MadvisePolicy::Free);
        assert_eq!(c.stack_size, 64 * 1024);
        assert!(c.tracing);
    }
}
