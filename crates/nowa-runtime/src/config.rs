//! Runtime configuration.

use std::time::Duration;

use nowa_context::MadvisePolicy;

use crate::flavor::Flavor;

/// Fault-injection configuration (the `chaos` knob).
///
/// All rates are probabilities per 65536 site visits; `0` disables a site
/// and `u16::MAX` fires on *every* visit (an exact guarantee, not a coin).
/// The whole struct only takes effect when the runtime is built with the
/// `chaos` cargo feature; without it the knob is accepted but inert — the
/// same contract as [`Config::tracing`].
///
/// Injection is deterministic: whether site `s` fires at its `k`-th visit
/// on worker `w` is a pure function of `(seed, w, s, k)` — no wall clock,
/// no global state — so a failing seed can be replayed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the deterministic injection sequence.
    pub seed: u64,
    /// Rate of forced steal failures (alternating empty / lost-race).
    pub steal_fail: u16,
    /// Rate of forced suspensions at the sync fast path.
    pub force_suspend: u16,
    /// Rate of spurious OS yields right before `pushBottom`.
    pub spurious_yield: u16,
    /// Rate of simulated stack-`mmap` failures (absorbed by the pool's
    /// bounded retry; never exceeds the retry budget).
    pub mmap_fail: u16,
    /// Rate of panics injected into child strands. Injected panics carry a
    /// `ChaosPanic` payload and propagate like user panics — leave this at
    /// `0` unless the workload expects to observe them.
    pub child_panic: u16,
}

impl ChaosConfig {
    /// All sites disabled under `seed`; enable sites by setting rates.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            steal_fail: 0,
            force_suspend: 0,
            spurious_yield: 0,
            mmap_fail: 0,
            child_panic: 0,
        }
    }

    /// A stress profile: every non-destructive site at a high rate (1/8
    /// steal failures and forced suspensions, 1/16 spurious yields, 1/32
    /// mmap failures). `child_panic` stays 0 so workloads still produce
    /// their results; arm it separately to test panic propagation.
    pub fn aggressive(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            steal_fail: 8192,
            force_suspend: 8192,
            spurious_yield: 4096,
            mmap_fail: 2048,
            child_panic: 0,
        }
    }
}

/// Configuration of a [`Runtime`](crate::runtime::Runtime).
///
/// Defaults mirror the paper's evaluation setup where applicable: 1 MiB
/// stacks, 4 KiB pages, no `madvise` on suspension (the Fig. 7
/// configuration), Nowa flavor (wait-free + CL queue).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of worker threads.
    pub workers: usize,
    /// Usable fiber-stack size in bytes (paper: 1 MiB).
    pub stack_size: usize,
    /// What to do with unused stack space on frame suspension (§V-B).
    pub madvise: MadvisePolicy,
    /// Runtime flavor: join protocol × deque algorithm.
    pub flavor: Flavor,
    /// Per-worker deque capacity (bounded algorithms; CL grows beyond it).
    pub deque_capacity: usize,
    /// Per-worker stack-cache capacity (paper: "small per worker buffers").
    pub stack_cache: usize,
    /// Stripes of the global stack pool (1 = the paper's single pool).
    pub pool_stripes: usize,
    /// Stacks pre-mapped into the global pool at startup.
    pub pool_prefill: usize,
    /// Pin worker `i` to CPU `i`.
    pub pin_workers: bool,
    /// Record scheduler traces (per-worker event rings + latency
    /// histograms). Takes effect only when the runtime is built with the
    /// `trace` cargo feature; without the feature the flag is accepted but
    /// inert, so callers don't need their own `cfg` gymnastics.
    pub tracing: bool,
    /// Fault injection (see [`ChaosConfig`]). Takes effect only when built
    /// with the `chaos` cargo feature; accepted but inert otherwise.
    pub chaos: Option<ChaosConfig>,
    /// Stall watchdog: when `Some`, a monitor thread samples per-worker
    /// progress counters and dumps a report to stderr (plus the trace
    /// report, when tracing) for every worker that makes no progress for
    /// the given duration. `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Install the guard-page SIGSEGV handler so a fiber stack overflow is
    /// reported (worker, stack bounds, fault address) instead of dying as
    /// an anonymous segfault. Process-wide and idempotent across runtimes;
    /// non-guard faults chain to the previously installed handler.
    pub guard_diagnostics: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            stack_size: 1 << 20,
            madvise: MadvisePolicy::Keep,
            flavor: Flavor::NOWA,
            deque_capacity: 8192,
            stack_cache: 8,
            pool_stripes: 1,
            pool_prefill: 0,
            pin_workers: false,
            tracing: false,
            chaos: None,
            watchdog: None,
            guard_diagnostics: true,
        }
    }
}

impl Config {
    /// Default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Config {
        Config {
            workers,
            ..Config::default()
        }
    }

    /// Sets the flavor (builder style).
    pub fn flavor(mut self, flavor: Flavor) -> Config {
        self.flavor = flavor;
        self
    }

    /// Sets the madvise policy (builder style).
    pub fn madvise(mut self, policy: MadvisePolicy) -> Config {
        self.madvise = policy;
        self
    }

    /// Sets the usable stack size (builder style).
    pub fn stack_size(mut self, bytes: usize) -> Config {
        self.stack_size = bytes;
        self
    }

    /// Enables or disables scheduler tracing (builder style). See the
    /// field docs: requires the `trace` cargo feature to have any effect.
    pub fn tracing(mut self, enabled: bool) -> Config {
        self.tracing = enabled;
        self
    }

    /// Sets the fault-injection configuration (builder style). See the
    /// field docs: requires the `chaos` cargo feature to have any effect.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Config {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the stall-watchdog threshold (builder style).
    pub fn watchdog(mut self, threshold: Duration) -> Config {
        self.watchdog = Some(threshold);
        self
    }

    /// Enables or disables guard-page overflow diagnostics (builder style).
    pub fn guard_diagnostics(mut self, enabled: bool) -> Config {
        self.guard_diagnostics = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = Config::default();
        assert_eq!(c.stack_size, 1 << 20);
        assert_eq!(c.madvise, MadvisePolicy::Keep);
        assert_eq!(c.flavor, Flavor::NOWA);
        assert!(c.workers >= 1);
    }

    #[test]
    fn builder_style() {
        let c = Config::with_workers(3)
            .flavor(Flavor::FIBRIL)
            .madvise(MadvisePolicy::Free)
            .stack_size(64 * 1024)
            .tracing(true)
            .chaos(ChaosConfig::aggressive(7))
            .watchdog(Duration::from_millis(100))
            .guard_diagnostics(false);
        assert_eq!(c.workers, 3);
        assert_eq!(c.flavor, Flavor::FIBRIL);
        assert_eq!(c.madvise, MadvisePolicy::Free);
        assert_eq!(c.stack_size, 64 * 1024);
        assert!(c.tracing);
        assert_eq!(c.chaos.unwrap().seed, 7);
        assert_eq!(c.watchdog, Some(Duration::from_millis(100)));
        assert!(!c.guard_diagnostics);
    }

    #[test]
    fn chaos_profiles() {
        let quiet = ChaosConfig::with_seed(1);
        assert_eq!(quiet.steal_fail, 0);
        assert_eq!(quiet.child_panic, 0);
        let loud = ChaosConfig::aggressive(1);
        assert!(loud.steal_fail > 0 && loud.mmap_fail > 0);
        assert_eq!(loud.child_panic, 0, "panics stay opt-in");
    }
}
