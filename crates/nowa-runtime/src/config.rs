//! Runtime configuration.

use std::time::Duration;

use nowa_context::MadvisePolicy;

use crate::flavor::Flavor;

pub use nowa_deque::SplitConfig;

/// Fault-injection configuration (the `chaos` knob).
///
/// All rates are probabilities per 65536 site visits; `0` disables a site
/// and `u16::MAX` fires on *every* visit (an exact guarantee, not a coin).
/// The whole struct only takes effect when the runtime is built with the
/// `chaos` cargo feature; without it the knob is accepted but inert — the
/// same contract as [`Config::tracing`].
///
/// Injection is deterministic: whether site `s` fires at its `k`-th visit
/// on worker `w` is a pure function of `(seed, w, s, k)` — no wall clock,
/// no global state — so a failing seed can be replayed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the deterministic injection sequence.
    pub seed: u64,
    /// Rate of forced steal failures (alternating empty / lost-race).
    pub steal_fail: u16,
    /// Rate of forced suspensions at the sync fast path.
    pub force_suspend: u16,
    /// Rate of spurious OS yields right before `pushBottom`.
    pub spurious_yield: u16,
    /// Rate of simulated stack-`mmap` failures (absorbed by the pool's
    /// bounded retry; never exceeds the retry budget).
    pub mmap_fail: u16,
    /// Rate of panics injected into child strands. Injected panics carry a
    /// `ChaosPanic` payload and propagate like user panics — leave this at
    /// `0` unless the workload expects to observe them.
    pub child_panic: u16,
    /// Rate of forced parks: an idle worker skips the spin/yield ladder and
    /// descends straight to the announce-validate-park sequence. Stresses
    /// the lost-wakeup window. Stays `0` in [`ChaosConfig::aggressive`]:
    /// idle-loop visit counts depend on wall-clock timing, so arming this
    /// site would break exact seed-replay of the existing determinism
    /// gates — arm it in dedicated idle-engine tests instead.
    pub force_park: u16,
    /// Rate of injected spurious wakeups: a park consumes its announce but
    /// skips the kernel wait, returning immediately as if the futex had
    /// woken spuriously. Same determinism caveat as `force_park`.
    pub spurious_wake: u16,
    /// Rate of forced cancellations: the enclosing region's scope is
    /// latched (as if its token had been cancelled) at a steal, sync, or
    /// suspend boundary — the three places a cancellation race with the
    /// join protocol is most delicate. No-op for unscoped work. Stays `0`
    /// in [`ChaosConfig::aggressive`]: cancellation changes which strands
    /// run, so arming it would break the exact snapshot-equality
    /// determinism gates — the dedicated cancel-soak tests arm it.
    pub force_cancel: u16,
    /// Rate of forced promotion events at the spawn-push site: half the
    /// firings force an out-of-band private→public promotion batch, the
    /// other half arm a forced promotion *failure* (the split layer's
    /// put-back path runs as if the public deque were full). Visit counts
    /// are one per spawn, so the site is replay-deterministic.
    pub force_promote: u16,
    /// Rate of spurious reactor wakes: the claimed poller skips its
    /// `epoll_wait` and reports zero events, exercising the re-validate
    /// loop around the poll. Stays `0` in [`ChaosConfig::aggressive`]:
    /// poll visit counts depend on wall-clock idleness, same caveat as
    /// `force_park` — the reactor edge-case tests arm it.
    pub reactor_spurious_wake: u16,
    /// Rate of injected `EINTR` returns from the reactor poll (the wait is
    /// skipped and reported as interrupted). Same determinism caveat as
    /// `reactor_spurious_wake`.
    pub reactor_eintr: u16,
}

impl ChaosConfig {
    /// All sites disabled under `seed`; enable sites by setting rates.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            steal_fail: 0,
            force_suspend: 0,
            spurious_yield: 0,
            mmap_fail: 0,
            child_panic: 0,
            force_park: 0,
            spurious_wake: 0,
            force_cancel: 0,
            force_promote: 0,
            reactor_spurious_wake: 0,
            reactor_eintr: 0,
        }
    }

    /// A stress profile: every non-destructive site at a high rate (1/8
    /// steal failures and forced suspensions, 1/16 spurious yields and
    /// forced promotions, 1/32 mmap failures). `child_panic` stays 0 so
    /// workloads still produce their results; arm it separately to test
    /// panic propagation.
    pub fn aggressive(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            steal_fail: 8192,
            force_suspend: 8192,
            spurious_yield: 4096,
            mmap_fail: 2048,
            child_panic: 0,
            // Idle sites stay 0 here: their visit counts are wall-clock
            // dependent, which would break the exact snapshot-equality
            // determinism gates. See the field docs; armed per-test.
            force_park: 0,
            spurious_wake: 0,
            // Cancellation reshapes the strand tree, so it too would break
            // the exact-replay gates; armed by the cancel-soak tests.
            force_cancel: 0,
            // Safe to arm: fires once per spawn, so visit counts (and
            // hence firings) replay exactly for a given seed.
            force_promote: 4096,
            // Reactor sites stay 0: poll visit counts are wall-clock
            // dependent (how often workers go idle), same reasoning as
            // the idle sites above; armed by the reactor edge-case tests.
            reactor_spurious_wake: 0,
            reactor_eintr: 0,
        }
    }
}

/// Tuning knobs of the idle engine (see [`crate::idle`]). The defaults are
/// latency-leaning: a worker reaches the futex park after roughly a dozen
/// fruitless sweeps (single-digit microseconds of spinning), and a parked
/// worker self-wakes after [`IdleConfig::max_park`] as the belt-and-braces
/// bound on the one theoretical lost-wakeup window the relaxed producer
/// load leaves open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleConfig {
    /// Failed sweeps spent in the exponential spin phase before yielding.
    pub spin_sweeps: u32,
    /// Failed sweeps spent yielding the OS thread before parking.
    pub yield_sweeps: u32,
    /// Bounded same-victim retries on `Steal::Retry` (lost races) within
    /// one sweep, with exponential backoff between attempts.
    pub steal_retries: u32,
    /// Minimum own-deque depth for the spawn path to issue a targeted wake
    /// (checked only after the free relaxed sleeper-count load said someone
    /// is parked). `usize::MAX` disables spawn-path wakes entirely —
    /// that re-creates the seed's blind-self-wake behaviour and exists for
    /// the `nowa-bench wakeup` baseline.
    pub wake_threshold: usize,
    /// Upper bound on one futex park. Bounds the worst case of the
    /// store-buffering race the relaxed producer-side load admits; with
    /// targeted wakes working this timeout is essentially never the path
    /// a wakeup takes.
    pub max_park: Duration,
}

impl Default for IdleConfig {
    fn default() -> IdleConfig {
        IdleConfig {
            spin_sweeps: 6,
            yield_sweeps: 10,
            steal_retries: 4,
            wake_threshold: 1,
            max_park: Duration::from_millis(1),
        }
    }
}

/// Default per-worker trace-ring capacity in events. Kept equal to
/// `nowa_trace::DEFAULT_RING_CAPACITY` (asserted in the runtime tests);
/// spelled locally because `nowa-trace` is an optional dependency.
pub const DEFAULT_TRACE_RING: usize = 1 << 14;

/// Default flight-recorder capacity used by
/// [`Config::flight_recorder`], in events per worker.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Configuration of a [`Runtime`](crate::runtime::Runtime).
///
/// Defaults mirror the paper's evaluation setup where applicable: 1 MiB
/// stacks, 4 KiB pages, no `madvise` on suspension (the Fig. 7
/// configuration), Nowa flavor (wait-free + CL queue).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of worker threads.
    pub workers: usize,
    /// Usable fiber-stack size in bytes (paper: 1 MiB).
    pub stack_size: usize,
    /// What to do with unused stack space on frame suspension (§V-B).
    pub madvise: MadvisePolicy,
    /// Runtime flavor: join protocol × deque algorithm.
    pub flavor: Flavor,
    /// Per-worker deque capacity (bounded algorithms; CL grows beyond it).
    pub deque_capacity: usize,
    /// Split-deque layer: private spawn segment + lazy promotion
    /// (DESIGN.md §6g). Enabled by default; [`SplitConfig::disabled`]
    /// restores the every-spawn-public behaviour of the unsplit deques.
    pub split: SplitConfig,
    /// Per-worker stack-cache capacity (paper: "small per worker buffers").
    pub stack_cache: usize,
    /// Stripes of the global stack pool (1 = the paper's single pool).
    pub pool_stripes: usize,
    /// Stacks pre-mapped into the global pool at startup.
    pub pool_prefill: usize,
    /// Pin worker `i` to CPU `i`.
    pub pin_workers: bool,
    /// Record scheduler traces (per-worker event rings + latency
    /// histograms). Takes effect only when the runtime is built with the
    /// `trace` cargo feature; without the feature the flag is accepted but
    /// inert, so callers don't need their own `cfg` gymnastics.
    pub tracing: bool,
    /// Per-worker event-ring capacity used when `tracing` is on, in
    /// events (rounded up to a power of two). Long profiling runs that
    /// drain the rings from an exporter thread can raise this to lower
    /// the drop rate. Mirrors `nowa_trace::DEFAULT_RING_CAPACITY`.
    pub trace_ring: usize,
    /// Flight recorder: when `Some(n)`, every worker keeps a bounded
    /// overwrite-oldest ring of its last `n` scheduler events with no
    /// exporter thread — cheap enough to leave on in production. The
    /// crash/stall machinery (child-panic propagation, the watchdog, the
    /// guard-page handler) dumps the merged tail on failure. Independent
    /// of `tracing`; same `trace` cargo-feature contract (inert without
    /// it).
    pub flight: Option<usize>,
    /// Fault injection (see [`ChaosConfig`]). Takes effect only when built
    /// with the `chaos` cargo feature; accepted but inert otherwise.
    pub chaos: Option<ChaosConfig>,
    /// Stall watchdog: when `Some`, a monitor thread samples per-worker
    /// progress counters and dumps a report to stderr (plus the trace
    /// report, when tracing) for every worker that makes no progress for
    /// the given duration. `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Install the guard-page SIGSEGV handler so a fiber stack overflow is
    /// reported (worker, stack bounds, fault address) instead of dying as
    /// an anonymous segfault. Process-wide and idempotent across runtimes;
    /// non-guard faults chain to the previously installed handler.
    pub guard_diagnostics: bool,
    /// Idle-engine tuning (spin→yield→park ladder, wake condition).
    pub idle: IdleConfig,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            stack_size: 1 << 20,
            madvise: MadvisePolicy::Keep,
            flavor: Flavor::NOWA,
            deque_capacity: 8192,
            split: SplitConfig::default(),
            stack_cache: 8,
            pool_stripes: 1,
            pool_prefill: 0,
            pin_workers: false,
            tracing: false,
            trace_ring: DEFAULT_TRACE_RING,
            flight: None,
            chaos: None,
            watchdog: None,
            guard_diagnostics: true,
            idle: IdleConfig::default(),
        }
    }
}

impl Config {
    /// Default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Config {
        Config {
            workers,
            ..Config::default()
        }
    }

    /// Sets the flavor (builder style).
    pub fn flavor(mut self, flavor: Flavor) -> Config {
        self.flavor = flavor;
        self
    }

    /// Sets the madvise policy (builder style).
    pub fn madvise(mut self, policy: MadvisePolicy) -> Config {
        self.madvise = policy;
        self
    }

    /// Sets the usable stack size (builder style).
    pub fn stack_size(mut self, bytes: usize) -> Config {
        self.stack_size = bytes;
        self
    }

    /// Enables or disables scheduler tracing (builder style). See the
    /// field docs: requires the `trace` cargo feature to have any effect.
    pub fn tracing(mut self, enabled: bool) -> Config {
        self.tracing = enabled;
        self
    }

    /// Sets the per-worker trace-ring capacity (builder style).
    pub fn trace_ring(mut self, events: usize) -> Config {
        self.trace_ring = events;
        self
    }

    /// Enables the flight recorder with `events` per-worker capacity
    /// (builder style). See the field docs: requires the `trace` cargo
    /// feature to have any effect.
    pub fn flight_recorder(mut self, events: usize) -> Config {
        self.flight = Some(events);
        self
    }

    /// Sets the fault-injection configuration (builder style). See the
    /// field docs: requires the `chaos` cargo feature to have any effect.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Config {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the stall-watchdog threshold (builder style).
    pub fn watchdog(mut self, threshold: Duration) -> Config {
        self.watchdog = Some(threshold);
        self
    }

    /// Enables or disables guard-page overflow diagnostics (builder style).
    pub fn guard_diagnostics(mut self, enabled: bool) -> Config {
        self.guard_diagnostics = enabled;
        self
    }

    /// Sets the idle-engine tuning (builder style).
    pub fn idle(mut self, idle: IdleConfig) -> Config {
        self.idle = idle;
        self
    }

    /// Sets the split-deque configuration (builder style).
    pub fn split(mut self, split: SplitConfig) -> Config {
        self.split = split;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = Config::default();
        assert_eq!(c.stack_size, 1 << 20);
        assert_eq!(c.madvise, MadvisePolicy::Keep);
        assert_eq!(c.flavor, Flavor::NOWA);
        assert!(c.workers >= 1);
        assert_eq!(c.trace_ring, DEFAULT_TRACE_RING);
        assert_eq!(c.flight, None, "flight recorder is opt-in");
        assert!(c.split.enabled, "split deques are the default fast path");
    }

    #[test]
    fn builder_style() {
        let c = Config::with_workers(3)
            .flavor(Flavor::FIBRIL)
            .madvise(MadvisePolicy::Free)
            .stack_size(64 * 1024)
            .tracing(true)
            .trace_ring(1 << 16)
            .flight_recorder(512)
            .chaos(ChaosConfig::aggressive(7))
            .watchdog(Duration::from_millis(100))
            .guard_diagnostics(false)
            .split(SplitConfig::disabled());
        assert_eq!(c.workers, 3);
        assert_eq!(c.flavor, Flavor::FIBRIL);
        assert_eq!(c.madvise, MadvisePolicy::Free);
        assert_eq!(c.stack_size, 64 * 1024);
        assert!(c.tracing);
        assert_eq!(c.trace_ring, 1 << 16);
        assert_eq!(c.flight, Some(512));
        assert_eq!(c.chaos.unwrap().seed, 7);
        assert_eq!(c.watchdog, Some(Duration::from_millis(100)));
        assert!(!c.guard_diagnostics);
        assert!(!c.split.enabled);
    }

    #[test]
    fn chaos_profiles() {
        let quiet = ChaosConfig::with_seed(1);
        assert_eq!(quiet.steal_fail, 0);
        assert_eq!(quiet.child_panic, 0);
        let loud = ChaosConfig::aggressive(1);
        assert!(loud.steal_fail > 0 && loud.mmap_fail > 0);
        assert_eq!(loud.child_panic, 0, "panics stay opt-in");
        assert_eq!(loud.force_park, 0, "idle sites stay replay-safe");
        assert_eq!(loud.spurious_wake, 0, "idle sites stay replay-safe");
        assert_eq!(loud.force_cancel, 0, "cancellation stays replay-safe");
        assert_eq!(quiet.force_promote, 0);
        assert!(loud.force_promote > 0, "promotion chaos is replay-safe");
        assert_eq!(
            loud.reactor_spurious_wake, 0,
            "reactor sites stay replay-safe"
        );
        assert_eq!(loud.reactor_eintr, 0, "reactor sites stay replay-safe");
    }

    #[test]
    fn idle_builder_and_defaults() {
        let d = IdleConfig::default();
        assert!(d.spin_sweeps > 0 && d.yield_sweeps > 0);
        assert!(
            d.max_park >= Duration::from_micros(200),
            "no blind-nap cliff"
        );
        let c = Config::default().idle(IdleConfig {
            wake_threshold: usize::MAX,
            ..IdleConfig::default()
        });
        assert_eq!(c.idle.wake_threshold, usize::MAX);
        assert_eq!(c.idle.spin_sweeps, d.spin_sweeps);
    }
}
