//! SNZI — a Scalable Non-Zero Indicator.
//!
//! F. Ellen, Y. Lev, V. Luchangco, M. Moir, *SNZI: Scalable NonZero
//! Indicators*, PODC 2007. The Nowa paper's related work (§II-D) discusses
//! Acar et al.'s dynamic SNZI for coordinating nested parallelism as the
//! other lock-free road to strand coordination — with the caveat that it
//! "depends on dynamic memory allocation", whereas Nowa's flat counter
//! lives inline in the frame.
//!
//! This is a fixed-topology SNZI tree: `arrive`/`depart` enter at a leaf
//! chosen by the caller (typically per-worker), and only 0↔nonzero
//! transitions propagate towards the root, so under heavy same-leaf traffic
//! the hot cache line is the *leaf*, not a single shared counter. The
//! indicator query reads one word at the root.
//!
//! Used here as an **ablation substrate**: the `join-mech` experiment and
//! the `snzi_vs_counter` benchmark compare a frame's flat `fetch_sub`
//! counter (Nowa, §IV-B) against SNZI arrive/depart for join traffic.
//!
//! # Algorithm notes
//!
//! Each node packs `(c·2, version)` into one `AtomicU64`; the intermediate
//! value ½ (stored as 1) marks an in-flight first arrival, exactly as in
//! the PODC paper. A leaf→root `arrive` that loses the ½→1 race departs
//! the parent again (the `undoArr` loop). The root uses a plain counter —
//! its 0↔nonzero transitions *are* the indicator.

use crate::sync::{busy_spin, AtomicI64, AtomicU64, Ordering};

/// Packed node word: low 32 bits = 2·c (so ½ is representable), high 32
/// bits = version (ABA protection for the ½ handshake).
#[inline]
fn pack(c2: u32, v: u32) -> u64 {
    ((v as u64) << 32) | c2 as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

struct Node {
    word: AtomicU64,
    /// Parent index in the arena; `usize::MAX` for children of the root.
    parent: usize,
}

/// A fixed-shape SNZI tree.
pub struct Snzi {
    /// Internal nodes, heap-ordered (node i's parent is (i-1)/2 except
    /// the first level, which parents to the root).
    nodes: Box<[Node]>,
    /// First leaf index into `nodes`.
    first_leaf: usize,
    /// The root surplus counter; nonzero ⇔ indicator set.
    root: AtomicI64,
}

impl Snzi {
    /// Builds a SNZI tree with at least `leaves` leaf entry points
    /// (rounded up to a power of two). `leaves = 0` degenerates to just
    /// the root counter.
    pub fn new(leaves: usize) -> Snzi {
        let leaves = leaves.next_power_of_two().max(1);
        // A complete binary tree with `leaves` leaves has 2·leaves − 1
        // nodes; the root is kept separate.
        let count = 2 * leaves - 1;
        let nodes = (0..count)
            .map(|i| Node {
                word: AtomicU64::new(pack(0, 0)),
                parent: if i == 0 { usize::MAX } else { (i - 1) / 2 },
            })
            .collect();
        Snzi {
            nodes,
            first_leaf: count - leaves,
            root: AtomicI64::new(0),
        }
    }

    /// Number of leaf entry points.
    pub fn leaves(&self) -> usize {
        self.nodes.len() - self.first_leaf
    }

    /// True iff the surplus (arrivals minus departures) is non-zero.
    ///
    /// This is the Invariant-IV query: joining strands only need an
    /// is-positive indication, never the exact count.
    pub fn query(&self) -> bool {
        self.root.load(Ordering::Acquire) != 0
    }

    /// Registers one arrival through leaf `leaf % leaves()`.
    pub fn arrive(&self, leaf: usize) {
        let leaf = self.first_leaf + (leaf % self.leaves());
        self.arrive_at(leaf);
    }

    /// Registers one departure through leaf `leaf % leaves()`.
    ///
    /// Every departure must match an earlier arrival **through the same
    /// leaf** (the standard SNZI contract).
    pub fn depart(&self, leaf: usize) {
        let leaf = self.first_leaf + (leaf % self.leaves());
        self.depart_at(leaf);
    }

    // Root RMWs are AcqRel and `query` loads Acquire: arrivals form a
    // release chain, so a querier observing nonzero also observes the
    // arriving strand's prior writes. Node CASes below are AcqRel for the
    // same reason (the helping protocol reads state that losers wrote);
    // their failure orderings are Relaxed because every failure path
    // re-reads the word with Acquire before acting on it.
    fn arrive_root(&self) {
        self.root.fetch_add(1, Ordering::AcqRel);
    }

    fn depart_root(&self) {
        let prev = self.root.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev >= 1, "SNZI root departure without arrival");
    }

    fn arrive_at(&self, node: usize) {
        // Ellen et al., Fig. 1, with c scaled by 2 (HALF == 1). Every
        // control flow that participates in completing a ½ state performs
        // its own parent arrival first and *undoes* it afterwards if its
        // promotion CAS lost — so a promoted node always holds exactly one
        // parent arrival.
        let mut succ = false;
        let mut undo = 0u32;
        while !succ {
            let word = self.nodes[node].word.load(Ordering::Acquire);
            let (c2, v) = unpack(word);
            if c2 >= 2 {
                // Plain surplus increment.
                if self.nodes[node]
                    .word
                    .compare_exchange_weak(
                        word,
                        pack(c2 + 2, v),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    succ = true;
                }
            } else if c2 == 0 {
                // First arrival: claim the ½ state; our own +1 is the one
                // the promotion below turns into surplus 1.
                if self.nodes[node]
                    .word
                    .compare_exchange_weak(
                        word,
                        pack(1, v + 1),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    succ = true;
                    let v1 = v + 1;
                    self.parent_arrive(node);
                    if self.nodes[node]
                        .word
                        .compare_exchange(
                            pack(1, v1),
                            pack(2, v1),
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_err()
                    {
                        undo += 1;
                    }
                }
            } else {
                // c2 == 1 (½): help complete the in-flight first arrival —
                // arrive at the parent ourselves, then race to promote.
                // Our own +1 is NOT registered by this branch (succ stays
                // false); the next loop iteration adds it via c2 >= 2.
                self.parent_arrive(node);
                if self.nodes[node]
                    .word
                    .compare_exchange(word, pack(2, v), Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    undo += 1;
                }
            }
        }
        for _ in 0..undo {
            self.parent_depart(node);
        }
    }

    fn depart_at(&self, node: usize) {
        loop {
            let word = self.nodes[node].word.load(Ordering::Acquire);
            let (c2, v) = unpack(word);
            debug_assert!(c2 >= 2, "SNZI departure without surplus (c2 = {c2})");
            if c2 < 2 {
                // Contract violation (or an in-flight ½ under a buggy
                // caller): never underflow; wait it out.
                busy_spin();
                continue;
            }
            if self.nodes[node]
                .word
                .compare_exchange_weak(word, pack(c2 - 2, v), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                if c2 == 2 {
                    // Node went 1 → 0: propagate the departure.
                    self.parent_depart(node);
                }
                return;
            }
            busy_spin();
        }
    }

    fn parent_arrive(&self, node: usize) {
        let p = self.nodes[node].parent;
        if p == usize::MAX {
            self.arrive_root();
        } else {
            self.arrive_at(p);
        }
    }

    fn parent_depart(&self, node: usize) {
        let p = self.nodes[node].parent;
        if p == usize::MAX {
            self.depart_root();
        } else {
            self.depart_at(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_tree_indicates_zero() {
        let s = Snzi::new(4);
        assert!(!s.query());
        assert_eq!(s.leaves(), 4);
    }

    #[test]
    fn single_arrive_depart() {
        let s = Snzi::new(4);
        s.arrive(0);
        assert!(s.query());
        s.depart(0);
        assert!(!s.query());
    }

    #[test]
    fn surplus_through_one_leaf() {
        let s = Snzi::new(2);
        for _ in 0..100 {
            s.arrive(1);
        }
        assert!(s.query());
        for _ in 0..99 {
            s.depart(1);
        }
        assert!(s.query(), "one arrival still outstanding");
        s.depart(1);
        assert!(!s.query());
    }

    #[test]
    fn distinct_leaves_share_the_indicator() {
        let s = Snzi::new(8);
        s.arrive(0);
        s.arrive(7);
        s.depart(0);
        assert!(s.query(), "leaf 7's arrival keeps it nonzero");
        s.depart(7);
        assert!(!s.query());
    }

    #[test]
    fn degenerate_single_leaf() {
        let s = Snzi::new(0);
        assert_eq!(s.leaves(), 1);
        s.arrive(42); // any leaf index maps in range
        assert!(s.query());
        s.depart(42);
        assert!(!s.query());
    }

    #[test]
    fn concurrent_arrive_depart_storm() {
        let s = Arc::new(Snzi::new(8));
        let threads: Vec<_> = (0..8)
            .map(|leaf| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        s.arrive(leaf);
                        s.depart(leaf);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(!s.query(), "balanced traffic must end at zero");
    }

    #[test]
    fn indicator_never_drops_while_surplus_held() {
        // One thread holds a long-lived arrival while others churn;
        // the indicator must stay set throughout.
        let s = Arc::new(Snzi::new(4));
        s.arrive(3);
        let churners: Vec<_> = (0..4)
            .map(|leaf| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.arrive(leaf);
                        assert!(s.query(), "surplus is definitely nonzero here");
                        s.depart(leaf);
                    }
                })
            })
            .collect();
        for t in churners {
            t.join().unwrap();
        }
        assert!(s.query(), "the long-lived arrival is still out");
        s.depart(3);
        assert!(!s.query());
    }

    #[test]
    fn interleaved_cross_thread_handoff() {
        // Arrivals on one thread, departures (of those arrivals) on
        // another, synchronised by a channel — order is preserved by the
        // same-leaf contract.
        let s = Arc::new(Snzi::new(2));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let producer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    s.arrive(0);
                    tx.send(()).unwrap();
                }
            })
        };
        let consumer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    rx.recv().unwrap();
                    s.depart(0);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(!s.query());
    }
}
