//! Layout audit for the cache-conscious field grouping (DESIGN.md §6g).
//!
//! The `repr(C, align(128))` hot/warm/cold splits in `frame.rs` and
//! `record.rs` are load-bearing for the spawn fast path: a field added in
//! the wrong place silently drags the lock-based baseline's mutex — or a
//! neighbour's park flag — onto the line the wait-free counters live on,
//! and nothing fails except the benchmark numbers. These tests (plus the
//! `const` asserts next to the structs) turn that into a compile/test
//! failure with a named field.
//!
//! Everything here is `cfg(not(loom))` by way of the test build: the loom
//! build drops the layout attributes because loom's atomics are
//! model-sized objects.

use core::mem::{align_of, offset_of, size_of};

use crate::frame::FrameCore;
use crate::idle::ParkSlot;
use crate::record::{Frame, JoinState, SpawnRecord};
use crate::stats::WorkerStats;

/// One coherence-granule (two 64-byte lines — the prefetcher-pair unit the
/// rest of the codebase pads to).
const LINE: usize = 128;

#[test]
fn join_state_hot_line_holds_only_the_wait_free_atomics() {
    assert_eq!(align_of::<JoinState>(), LINE);
    assert_eq!(size_of::<JoinState>(), 2 * LINE);
    // Hot group: counter, alpha, susp — packed from offset 0.
    assert_eq!(offset_of!(JoinState, counter), 0);
    assert_eq!(offset_of!(JoinState, alpha), 8);
    assert_eq!(offset_of!(JoinState, susp), 12);
    // Cold group: the lock-based baseline's mutex opens line two.
    assert_eq!(offset_of!(JoinState, locked), LINE);
}

#[test]
fn frame_core_checkpoint_fields_lead_their_own_line() {
    assert_eq!(align_of::<FrameCore>(), LINE);
    // Hot group: the two fields every per-spawn checkpoint reads.
    assert_eq!(offset_of!(FrameCore, flagged), 0);
    assert_eq!(offset_of!(FrameCore, scope), 8);
    // Cold group: suspension + panic state on line two and beyond.
    assert_eq!(offset_of!(FrameCore, sync_ctx), LINE);
    assert!(offset_of!(FrameCore, suspended_stack) >= LINE);
    assert!(offset_of!(FrameCore, panic) >= LINE);
    assert_eq!(size_of::<FrameCore>() % LINE, 0);
}

#[test]
fn frame_groups_stay_in_declaration_order() {
    assert_eq!(align_of::<Frame>(), LINE);
    assert_eq!(offset_of!(Frame, core), 0);
    // `repr(C)` on Frame: the join state opens its own granule right
    // after the core, so `frame.join.counter` is exactly
    // `offset(join) + 0` — the address the joiners hammer.
    assert_eq!(offset_of!(Frame, join), size_of::<FrameCore>());
    assert_eq!(
        size_of::<Frame>(),
        size_of::<FrameCore>() + size_of::<JoinState>()
    );
}

#[test]
fn spawn_record_fits_one_exclusive_granule() {
    assert_eq!(align_of::<SpawnRecord>(), LINE);
    assert_eq!(
        size_of::<SpawnRecord>(),
        LINE,
        "a record must not grow past its line — thief and owner share it"
    );
    assert_eq!(offset_of!(SpawnRecord, ctx), 0);
    assert_eq!(offset_of!(SpawnRecord, frame), 8);
}

#[test]
fn per_worker_slots_cannot_false_share() {
    // The idle engine's park flags and the stats blocks live in arrays —
    // alignment is what keeps worker i's futex traffic off worker i+1's
    // line.
    assert_eq!(align_of::<ParkSlot>(), LINE);
    assert_eq!(size_of::<ParkSlot>(), LINE);
    assert!(align_of::<WorkerStats>() >= LINE);
    assert_eq!(size_of::<WorkerStats>() % LINE, 0);
}
