//! cfg-twinned concurrency primitives for the runtime's modeled protocols
//! (the `obs`/`chaos` zero-cost pattern, applied to atomics and futexes).
//!
//! Normal builds re-export `core::sync::atomic` and the raw futex wrappers
//! from `nowa-context::sys` — this module compiles to nothing. Under
//! `RUSTFLAGS="--cfg loom"` the same names resolve to the model-checked
//! twins from the vendored `loom` crate, so the protocol modules (`idle`,
//! `snzi`, `injector`, `record`, `flavor`) run unmodified inside
//! `loom::model` and their memory orderings are explored exhaustively
//! (see `tests/loom.rs`).
//!
//! Modules that are *not* modeled (`worker`, `scheduler`, `stats`, …) keep
//! using `core::sync::atomic` directly — their atomics are deliberately
//! invisible to the checker, which keeps the model state spaces small.
//! Every atomic in a modeled module, however, must go through this shim; a
//! direct `core::sync::atomic` access there would silently weaken the
//! models.

#[cfg(not(loom))]
pub(crate) use core::sync::atomic::{
    AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, Ordering,
};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{
    AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, Ordering,
};

// Exported from both arms (cfg-twin parity): only the loom arm's
// `futex_wait` wrapper names the type itself, but callers must be able to
// match on the result under either cfg.
#[allow(unused_imports)]
pub(crate) use nowa_context::sys::FutexWait;

#[cfg(not(loom))]
pub(crate) use nowa_context::sys::{futex_wait, futex_wake};

/// Modeled `FUTEX_WAIT`. A timeout of `None` or `u64::MAX` maps to an
/// *untimed* modeled wait — a sleeper nobody wakes is then reported as a
/// deadlock, which is exactly the lost-wakeup detector the idle-engine
/// models rely on. Finite timeouts map to a timed wait, which in the model
/// only fires at quiescence (see `loom::futex`).
#[cfg(loom)]
pub(crate) fn futex_wait(addr: &AtomicU32, expected: u32, timeout_ns: Option<u64>) -> FutexWait {
    let timed = matches!(timeout_ns, Some(ns) if ns != u64::MAX);
    match loom::futex::futex_wait(addr, expected, timed) {
        loom::futex::FutexResult::Woken => FutexWait::Woken,
        loom::futex::FutexResult::NotExpected => FutexWait::NotExpected,
        loom::futex::FutexResult::TimedOut => FutexWait::TimedOut,
    }
}

/// Modeled `FUTEX_WAKE`.
#[cfg(loom)]
pub(crate) fn futex_wake(addr: &AtomicU32, count: u32) -> usize {
    loom::futex::futex_wake(addr, count as usize)
}

/// Spin-wait hint: a CPU pause normally, a model-scheduler yield under loom
/// (a modeled spin must cede the interleaving or it would livelock the
/// checker).
#[inline(always)]
pub(crate) fn busy_spin() {
    #[cfg(not(loom))]
    core::hint::spin_loop();
    #[cfg(loom)]
    loom::thread::yield_now();
}
