//! Fault injection: deterministic, seeded chaos at every scheduler
//! decision — the runtime's only coupling to the injection machinery.
//!
//! Mirrors the `obs` twin pattern: with the `chaos` cargo feature
//! **off**, every hook below is an `#[inline(always)]` empty body and the
//! scheduler compiles exactly as before. With the feature **on**, hooks are
//! still no-ops unless the runtime was built with a
//! [`ChaosConfig`](crate::config::ChaosConfig) whose rates are non-zero.
//!
//! # Determinism
//!
//! Whether site `s` injects at its `k`-th visit on worker `w` is a pure
//! function `decision(seed, w, s, k)` — a splitmix64-style hash chain, no
//! wall clock, no shared state. Per-worker tick counters make the sequence
//! independent of cross-worker interleaving: replaying the same seed on the
//! same configuration visits the same decisions in the same per-worker
//! order. (Which *global* interleaving results still depends on the OS
//! scheduler; the injection sequence each worker sees does not.)
//!
//! The injected faults:
//!
//! * **StealFail** — the next steal attempt is forced to fail (alternating
//!   `Empty` / lost-race `Retry`), via `nowa_deque::chaos`.
//! * **ForceSuspend** — `sync_execute`'s fast path is vetoed, forcing the
//!   suspension path (capture, Eq. 5 restore, work-finding) even when all
//!   children already joined.
//! * **SpuriousYield** — an OS yield right before `pushBottom`, widening
//!   the window in which thieves observe the pre-push deque state.
//! * **MmapFail** — arms one stack-map failure (consumed by the pool's
//!   bounded-retry path, see `nowa_context::chaos`).
//! * **ChildPanic** — panics inside a child strand with a recognisable
//!   `ChaosPanic` payload, exercising panic capture and re-throw.
//! * **ForcePark** — an idle worker skips the spin/yield ladder and goes
//!   straight to the announce-validate-park sequence, maximising exposure
//!   of the lost-wakeup window.
//! * **SpuriousWake** — a park consumes its announce but skips the kernel
//!   wait, simulating a spurious futex return.
//! * **ForceCancel** — latches the enclosing region's cancellation scope
//!   at a steal, sync, or suspend boundary, as if its token had been
//!   cancelled at the worst possible moment.
//! * **ForcePromote** — at the spawn-push site, alternately forces an
//!   out-of-band private→public promotion batch or arms a forced
//!   promotion *failure* (the split layer's put-back path runs as if the
//!   public deque were full). Fires once per spawn visit, so it is
//!   replay-deterministic and armed by `ChaosConfig::aggressive`.
//! * **ReactorSpuriousWake** — the claimed reactor poller skips its
//!   `epoll_wait` and reports zero events, exercising the re-validate
//!   loop around the poll (§6h).
//! * **ReactorEintr** — the reactor poll behaves as if `epoll_wait`
//!   returned `EINTR`, exercising the interrupted-syscall path.
//!
//! The two idle sites are *not* armed by `ChaosConfig::aggressive`: their
//! visit counts depend on wall-clock idleness, so arming them would break
//! the exact snapshot-equality determinism gates. `ForceCancel` stays
//! unarmed there too — cancellation reshapes the strand tree — and so do
//! the two reactor sites, whose visit counts depend on wall-clock poll
//! cadence. Dedicated tests arm them explicitly.

#[cfg(feature = "chaos")]
// Shared safety contract for every hook in this module: `worker` must point
// to the calling worker's live `Worker` (the scheduler invokes hooks only
// from that worker's own loop), which makes the deref in `state` sound. The
// contract is spelled once here — mirroring the no-op arm — instead of on
// each hook.
#[allow(clippy::missing_safety_doc)]
mod imp {
    use core::sync::atomic::{AtomicU64, Ordering};

    use crate::config::ChaosConfig;
    use crate::worker::Worker;

    /// Marker payload of an injected child panic, so tests (and users
    /// catching panics) can tell injected faults from real bugs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ChaosPanic {
        /// Worker the panic was injected on.
        pub worker: usize,
    }

    /// The injection sites, one per scheduler decision kind.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[repr(usize)]
    pub enum ChaosSite {
        /// Forced steal failure (deque layer).
        StealFail = 0,
        /// Forced suspension at `sync_execute`.
        ForceSuspend = 1,
        /// Spurious yield before `pushBottom`.
        SpuriousYield = 2,
        /// Simulated stack-`mmap` failure.
        MmapFail = 3,
        /// Panic injected into a child strand.
        ChildPanic = 4,
        /// Forced descent to the park path in the idle ladder.
        ForcePark = 5,
        /// Spurious (kernel-less) return from a park.
        SpuriousWake = 6,
        /// Forced cancellation of the enclosing region at a steal, sync,
        /// or suspend boundary.
        ForceCancel = 7,
        /// Forced promotion event at the spawn-push site (out-of-band
        /// batch or armed promotion failure, alternating).
        ForcePromote = 8,
        /// Spurious reactor wake: the claimed poller returns from its poll
        /// without calling `epoll_wait`, as if the kernel delivered zero
        /// events.
        ReactorSpuriousWake = 9,
        /// Injected `EINTR`: the reactor poll behaves as if `epoll_wait`
        /// was interrupted by a signal before any event arrived.
        ReactorEintr = 10,
    }

    /// Number of distinct injection sites.
    pub const SITES: usize = 11;

    const SITE_NAMES: [&str; SITES] = [
        "steal_fail",
        "force_suspend",
        "spurious_yield",
        "mmap_fail",
        "child_panic",
        "force_park",
        "spurious_wake",
        "force_cancel",
        "force_promote",
        "reactor_spurious_wake",
        "reactor_eintr",
    ];

    /// Per-worker chaos state: one tick and one injected counter per site.
    /// Padded like the stats blocks so chaos bookkeeping doesn't introduce
    /// false sharing of its own.
    #[repr(align(128))]
    #[derive(Debug)]
    pub struct ChaosWorkerState {
        seed: u64,
        worker: u64,
        ticks: [AtomicU64; SITES],
        injected: [AtomicU64; SITES],
    }

    impl ChaosWorkerState {
        /// State for `worker` under `seed`.
        pub fn new(seed: u64, worker: usize) -> ChaosWorkerState {
            ChaosWorkerState {
                seed,
                worker: worker as u64,
                ticks: [const { AtomicU64::new(0) }; SITES],
                injected: [const { AtomicU64::new(0) }; SITES],
            }
        }

        /// Advances `site`'s tick and decides whether to inject, given the
        /// site's rate (per 65536; `u16::MAX` means always).
        #[inline]
        fn decide(&self, site: ChaosSite, rate: u16) -> bool {
            if rate == 0 {
                return false;
            }
            let tick = self.ticks[site as usize].fetch_add(1, Ordering::Relaxed);
            if !decision(self.seed, self.worker, site as u64, tick, rate) {
                return false;
            }
            self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
            true
        }

        fn snapshot_into(&self, snap: &mut ChaosSnapshot) {
            for i in 0..SITES {
                snap.ticks[i] += self.ticks[i].load(Ordering::Relaxed);
                snap.injected[i] += self.injected[i].load(Ordering::Relaxed);
            }
        }
    }

    /// splitmix64 finaliser; full-avalanche 64-bit mix.
    #[inline]
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The pure injection decision: does site `site` inject at its `tick`-th
    /// visit on worker `worker` under `seed` and `rate` (per 65536)?
    /// Exposed so determinism tests can replay the sequence without a
    /// runtime.
    pub fn decision(seed: u64, worker: u64, site: u64, tick: u64, rate: u16) -> bool {
        if rate == u16::MAX {
            // "Always": an exact guarantee, not a 65535/65536 coin.
            return true;
        }
        let h = mix(
            mix(mix(seed ^ 0x6E6F_7761) ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(site)
                .wrapping_add(tick.wrapping_mul(0xD134_2543_DE82_EF95)),
        );
        ((h & 0xFFFF) as u16) < rate
    }

    /// Counters of one run, aggregated over workers; equality of two
    /// snapshots is the determinism-test criterion.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct ChaosSnapshot {
        /// Site visits, indexed by [`ChaosSite`].
        pub ticks: [u64; SITES],
        /// Injections fired, indexed by [`ChaosSite`].
        pub injected: [u64; SITES],
    }

    impl ChaosSnapshot {
        /// Aggregates the per-worker states.
        pub fn aggregate(states: &[ChaosWorkerState]) -> ChaosSnapshot {
            let mut snap = ChaosSnapshot::default();
            for s in states {
                s.snapshot_into(&mut snap);
            }
            snap
        }

        /// Injections fired at `site`.
        pub fn injected_at(&self, site: ChaosSite) -> u64 {
            self.injected[site as usize]
        }
    }

    impl core::fmt::Display for ChaosSnapshot {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            for (i, name) in SITE_NAMES.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}={}/{}", name, self.injected[i], self.ticks[i])?;
            }
            Ok(())
        }
    }

    /// The calling worker's chaos state, when chaos is configured.
    ///
    /// # Safety
    /// `worker` must be a live worker pointer owned by the calling thread.
    #[inline]
    unsafe fn state<'a>(worker: *mut Worker) -> Option<(&'a ChaosWorkerState, &'a ChaosConfig)> {
        unsafe {
            let w = &*worker;
            let cfg = w.shared.config.chaos.as_ref()?;
            Some((&w.shared.chaos.as_deref()?[w.index], cfg))
        }
    }

    /// Before a steal attempt: maybe force the outcome at the deque layer.
    #[inline]
    pub(crate) unsafe fn on_steal_attempt(worker: *mut Worker) {
        unsafe {
            if let Some((st, cfg)) = state(worker) {
                if st.decide(ChaosSite::StealFail, cfg.steal_fail) {
                    // Alternate between the two failure semantics so both
                    // the empty-victim and lost-race paths get exercised.
                    let forced =
                        if st.injected[ChaosSite::StealFail as usize].load(Ordering::Relaxed) % 2
                            == 0
                        {
                            nowa_deque::chaos::ForcedSteal::Retry
                        } else {
                            nowa_deque::chaos::ForcedSteal::Empty
                        };
                    nowa_deque::chaos::force_next_steal(forced);
                }
            }
        }
    }

    /// At `sync_execute`: returns `true` to veto the inline fast path and
    /// force the suspension path.
    #[inline]
    pub(crate) unsafe fn on_sync(worker: *mut Worker) -> bool {
        unsafe {
            match state(worker) {
                Some((st, cfg)) => st.decide(ChaosSite::ForceSuspend, cfg.force_suspend),
                None => false,
            }
        }
    }

    /// Right before `pushBottom`: maybe yield the OS thread, widening the
    /// thief-vs-owner race window.
    #[inline]
    pub(crate) unsafe fn on_spawn_push(worker: *mut Worker) {
        unsafe {
            if let Some((st, cfg)) = state(worker) {
                if st.decide(ChaosSite::SpuriousYield, cfg.spurious_yield) {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Before a stack acquisition: maybe arm one map failure for the pool's
    /// bounded-retry path to absorb. Never arms on top of a pending one, so
    /// armed failures stay below the retry bound and runs always recover.
    #[inline]
    pub(crate) unsafe fn on_stack_get(worker: *mut Worker) {
        unsafe {
            if let Some((st, cfg)) = state(worker) {
                if nowa_context::chaos::armed_map_failures() == 0
                    && st.decide(ChaosSite::MmapFail, cfg.mmap_fail)
                {
                    nowa_context::chaos::arm_map_failures(1);
                }
            }
        }
    }

    /// Inside a child strand (within its panic-capture scope): maybe panic
    /// with a `ChaosPanic` payload.
    #[inline]
    pub(crate) unsafe fn on_child_start(worker: *mut Worker) {
        unsafe {
            if let Some((st, cfg)) = state(worker) {
                if st.decide(ChaosSite::ChildPanic, cfg.child_panic) {
                    let index = (*worker).index;
                    std::panic::panic_any(ChaosPanic { worker: index });
                }
            }
        }
    }

    /// In the idle backoff ladder: returns `true` to skip spin/yield and
    /// descend straight to the announce-validate-park sequence.
    #[inline]
    pub(crate) unsafe fn on_idle_backoff(worker: *mut Worker) -> bool {
        unsafe {
            match state(worker) {
                Some((st, cfg)) => st.decide(ChaosSite::ForcePark, cfg.force_park),
                None => false,
            }
        }
    }

    /// Right before the futex wait of a park: returns `true` to skip the
    /// kernel wait, simulating a spurious futex return.
    #[inline]
    pub(crate) unsafe fn on_park_wait(worker: *mut Worker) -> bool {
        unsafe {
            match state(worker) {
                Some((st, cfg)) => st.decide(ChaosSite::SpuriousWake, cfg.spurious_wake),
                None => false,
            }
        }
    }

    /// At a steal/sync/suspend boundary: returns `true` to force-cancel
    /// the enclosing region (the caller does the latching — it knows the
    /// frame whose scope is enclosing).
    #[inline]
    pub(crate) unsafe fn on_force_cancel(worker: *mut Worker) -> bool {
        unsafe {
            match state(worker) {
                Some((st, cfg)) => st.decide(ChaosSite::ForceCancel, cfg.force_cancel),
                None => false,
            }
        }
    }

    /// At the spawn-push site: returns `true` to force an out-of-band
    /// promotion batch. Every other firing instead arms a forced
    /// promotion *failure* at the deque layer (put-back path) and returns
    /// `false` — that failure is consumed by the next promotion attempt.
    #[inline]
    pub(crate) unsafe fn on_force_promote(worker: *mut Worker) -> bool {
        unsafe {
            if let Some((st, cfg)) = state(worker) {
                if st.decide(ChaosSite::ForcePromote, cfg.force_promote) {
                    let n = st.injected[ChaosSite::ForcePromote as usize].load(Ordering::Relaxed);
                    if n % 2 == 0 {
                        nowa_deque::chaos::force_promotion_failure();
                        return false;
                    }
                    return true;
                }
            }
            false
        }
    }

    /// Before the reactor's `epoll_wait`: returns `true` to skip the
    /// syscall and report zero events (a spurious poller wake).
    #[inline]
    pub(crate) unsafe fn on_reactor_poll(worker: *mut Worker) -> bool {
        unsafe {
            match state(worker) {
                Some((st, cfg)) => {
                    st.decide(ChaosSite::ReactorSpuriousWake, cfg.reactor_spurious_wake)
                }
                None => false,
            }
        }
    }

    /// Before the reactor's `epoll_wait`: returns `true` to behave as if
    /// the wait returned `EINTR` (interrupted, no events dispatched).
    #[inline]
    pub(crate) unsafe fn on_reactor_eintr(worker: *mut Worker) -> bool {
        unsafe {
            match state(worker) {
                Some((st, cfg)) => st.decide(ChaosSite::ReactorEintr, cfg.reactor_eintr),
                None => false,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn decision_is_pure_and_seed_sensitive() {
            let a: Vec<bool> = (0..512).map(|t| decision(42, 1, 0, t, 8192)).collect();
            let b: Vec<bool> = (0..512).map(|t| decision(42, 1, 0, t, 8192)).collect();
            assert_eq!(a, b, "same inputs, same sequence");
            let c: Vec<bool> = (0..512).map(|t| decision(43, 1, 0, t, 8192)).collect();
            assert_ne!(a, c, "different seed, different sequence");
        }

        #[test]
        fn max_rate_always_fires_zero_never() {
            for t in 0..64 {
                assert!(decision(7, 0, 4, t, u16::MAX));
            }
            let st = ChaosWorkerState::new(7, 0);
            assert!(!st.decide(ChaosSite::StealFail, 0));
            assert_eq!(
                st.ticks[0].load(Ordering::Relaxed),
                0,
                "rate 0 skips ticking"
            );
        }

        #[test]
        fn rate_roughly_respected() {
            let fired = (0..65536u64)
                .filter(|&t| decision(9, 2, 1, t, 16384))
                .count();
            // 25% nominal; allow generous slack.
            assert!((12000..21000).contains(&fired), "fired {fired}");
        }

        #[test]
        fn snapshot_aggregates_and_compares() {
            let a = ChaosWorkerState::new(5, 0);
            let b = ChaosWorkerState::new(5, 1);
            for _ in 0..100 {
                a.decide(ChaosSite::StealFail, 32768);
                b.decide(ChaosSite::MmapFail, 32768);
            }
            let states = [a, b];
            let snap = ChaosSnapshot::aggregate(&states);
            assert_eq!(snap.ticks[ChaosSite::StealFail as usize], 100);
            assert_eq!(snap.ticks[ChaosSite::MmapFail as usize], 100);
            let again = ChaosSnapshot::aggregate(&states);
            assert_eq!(snap, again);
            assert!(!format!("{snap}").is_empty());
        }
    }
}

#[cfg(not(feature = "chaos"))]
#[allow(clippy::missing_safety_doc)]
mod imp {
    use crate::worker::Worker;

    #[inline(always)]
    pub(crate) unsafe fn on_steal_attempt(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_sync(_: *mut Worker) -> bool {
        false
    }
    #[inline(always)]
    pub(crate) unsafe fn on_spawn_push(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_stack_get(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_child_start(_: *mut Worker) {}
    #[inline(always)]
    pub(crate) unsafe fn on_idle_backoff(_: *mut Worker) -> bool {
        false
    }
    #[inline(always)]
    pub(crate) unsafe fn on_park_wait(_: *mut Worker) -> bool {
        false
    }
    #[inline(always)]
    pub(crate) unsafe fn on_force_cancel(_: *mut Worker) -> bool {
        false
    }
    #[inline(always)]
    pub(crate) unsafe fn on_force_promote(_: *mut Worker) -> bool {
        false
    }
    #[inline(always)]
    pub(crate) unsafe fn on_reactor_poll(_: *mut Worker) -> bool {
        false
    }
    #[inline(always)]
    pub(crate) unsafe fn on_reactor_eintr(_: *mut Worker) -> bool {
        false
    }
}

pub(crate) use imp::{
    on_child_start, on_force_cancel, on_force_promote, on_idle_backoff, on_park_wait,
    on_reactor_eintr, on_reactor_poll, on_spawn_push, on_stack_get, on_steal_attempt, on_sync,
};

#[cfg(feature = "chaos")]
pub use imp::{decision, ChaosPanic, ChaosSite, ChaosSnapshot, ChaosWorkerState, SITES};
