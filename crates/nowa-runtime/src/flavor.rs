//! Runtime flavors: join protocol × work-stealing queue.
//!
//! The paper's evaluation compares runtime systems that differ in exactly
//! two dimensions:
//!
//! * the **strand-coordination protocol** of the outer runtime layer —
//!   Nowa's wait-free counter protocol (§IV) versus the lock-based scheme
//!   of Fibril/Cilk Plus (Listing 2, Fig. 6);
//! * the **work-stealing queue** at the core — the lock-free Chase–Lev
//!   queue versus the partially-locked THE queue (§V-C, Fig. 9).
//!
//! [`Flavor`] picks one point in that matrix. The scheduler dispatches on it
//! with plain `match`es, so every flavor pays the same (negligible, uniform)
//! dispatch cost — important for a fair comparison.

use nowa_deque::{
    AbpDeque, AbpStealer, AbpWorker, ClDeque, ClStealer, ClWorker, Full, LockedDeque,
    LockedStealer, LockedWorker, Ptr, SplitConfig, SplitDeque, SplitPush, SplitStealer,
    SplitWorker, Steal, StealerOps, TheDeque, TheStealer, TheWorker, WorkerOps,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::Ordering;

use crate::record::{AfterChild, Frame, SpawnRecord, I_MAX, SUSP_IDLE, SUSP_SUSPENDED};

/// A continuation token as stored in the deques.
pub type Rec = Ptr<SpawnRecord>;

/// Which work-stealing queue runs at the core of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeKind {
    /// Chase–Lev (lock-free, ring-buffer) — the Nowa default.
    Cl,
    /// Cilk-5 THE (owner elides a lock; thieves serialize on it).
    The,
    /// Arora–Blumofe–Plaxton (CAS on a tagged age word).
    Abp,
    /// Fully mutex-protected deque.
    Locked,
}

/// Which strand-coordination protocol the outer layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The wait-free Nowa protocol: counter armed at `I_max`, joiners
    /// `fetch_sub`, the explicit sync restores `N_r` (§IV-B).
    NowaWaitFree,
    /// The Fibril-style protocol: a per-frame lock around the strand count,
    /// fused with the (necessarily fully locked) deque as in Listing 2.
    FibrilLocked,
}

/// A complete runtime flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flavor {
    /// Coordination protocol of the outer layer.
    pub protocol: ProtocolKind,
    /// Queue algorithm at the core.
    pub deque: DequeKind,
}

impl Flavor {
    /// Nowa as published: wait-free protocol + CL queue (§IV-C synergy).
    pub const NOWA: Flavor = Flavor {
        protocol: ProtocolKind::NowaWaitFree,
        deque: DequeKind::Cl,
    };
    /// The Fig. 9 ablation: wait-free protocol, but the THE queue.
    pub const NOWA_THE: Flavor = Flavor {
        protocol: ProtocolKind::NowaWaitFree,
        deque: DequeKind::The,
    };
    /// Wait-free protocol over the ABP queue (additional ablation).
    pub const NOWA_ABP: Flavor = Flavor {
        protocol: ProtocolKind::NowaWaitFree,
        deque: DequeKind::Abp,
    };
    /// Wait-free protocol over a fully locked queue (additional ablation).
    pub const NOWA_LOCKED_DEQUE: Flavor = Flavor {
        protocol: ProtocolKind::NowaWaitFree,
        deque: DequeKind::Locked,
    };
    /// The lock-based baseline (Fibril stand-in). The protocol requires the
    /// fused locked deque; the `deque` field is ignored.
    pub const FIBRIL: Flavor = Flavor {
        protocol: ProtocolKind::FibrilLocked,
        deque: DequeKind::Locked,
    };

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match (self.protocol, self.deque) {
            (ProtocolKind::FibrilLocked, _) => "fibril-lock",
            (ProtocolKind::NowaWaitFree, DequeKind::Cl) => "nowa-cl",
            (ProtocolKind::NowaWaitFree, DequeKind::The) => "nowa-the",
            (ProtocolKind::NowaWaitFree, DequeKind::Abp) => "nowa-abp",
            (ProtocolKind::NowaWaitFree, DequeKind::Locked) => "nowa-lockq",
        }
    }

    /// Parses the names produced by [`Flavor::name`].
    pub fn parse(name: &str) -> Option<Flavor> {
        match name {
            "nowa" | "nowa-cl" => Some(Flavor::NOWA),
            "nowa-the" => Some(Flavor::NOWA_THE),
            "nowa-abp" => Some(Flavor::NOWA_ABP),
            "nowa-lockq" => Some(Flavor::NOWA_LOCKED_DEQUE),
            "fibril" | "fibril-lock" => Some(Flavor::FIBRIL),
            _ => None,
        }
    }
}

/// The deque used by the Fibril-style protocol: a single mutex protects the
/// queue, and the protocol briefly holds it together with the frame lock
/// (Listing 2 line 10) to fuse the pop/steal with the count update.
pub struct FusedDeque {
    q: Mutex<VecDeque<Rec>>,
}

impl FusedDeque {
    fn new(capacity: usize) -> Arc<FusedDeque> {
        Arc::new(FusedDeque {
            q: Mutex::new(VecDeque::with_capacity(capacity)),
        })
    }
}

/// Owner side of a flavor's deque. Every real deque algorithm is wrapped
/// in the split private/public layer (DESIGN.md §6g) — with the split
/// disabled in [`SplitConfig`] the wrapper is a pass-through. The fused
/// Fibril deque stays unsplit: its lock-based protocol is the baseline
/// being measured, not optimised.
pub enum OwnerDeque {
    /// Chase–Lev owner handle.
    Cl(SplitWorker<ClWorker<Rec>, Rec>),
    /// THE owner handle.
    The(SplitWorker<TheWorker<Rec>, Rec>),
    /// ABP owner handle.
    Abp(SplitWorker<AbpWorker<Rec>, Rec>),
    /// Locked-deque owner handle.
    Locked(SplitWorker<LockedWorker<Rec>, Rec>),
    /// Fibril fused deque (owner and thieves share it).
    Fused(Arc<FusedDeque>),
}

/// Thief side of a flavor's deque.
#[derive(Clone)]
pub enum SharedStealer {
    /// Chase–Lev stealer handle.
    Cl(SplitStealer<ClStealer<Rec>>),
    /// THE stealer handle.
    The(SplitStealer<TheStealer<Rec>>),
    /// ABP stealer handle.
    Abp(SplitStealer<AbpStealer<Rec>>),
    /// Locked-deque stealer handle.
    Locked(SplitStealer<LockedStealer<Rec>>),
    /// Fibril fused deque.
    Fused(Arc<FusedDeque>),
}

/// Creates the deque pair for `flavor` with the given capacity and split
/// configuration.
pub fn new_deque(
    flavor: Flavor,
    capacity: usize,
    split: SplitConfig,
) -> (OwnerDeque, SharedStealer) {
    match (flavor.protocol, flavor.deque) {
        (ProtocolKind::FibrilLocked, _) => {
            let fused = FusedDeque::new(capacity);
            (
                OwnerDeque::Fused(fused.clone()),
                SharedStealer::Fused(fused),
            )
        }
        (_, DequeKind::Cl) => {
            let (w, s) = ClDeque::new(capacity);
            let (w, s) = SplitDeque::wrap(w, s, split, capacity);
            (OwnerDeque::Cl(w), SharedStealer::Cl(s))
        }
        (_, DequeKind::The) => {
            let (w, s) = TheDeque::new(capacity);
            let (w, s) = SplitDeque::wrap(w, s, split, capacity);
            (OwnerDeque::The(w), SharedStealer::The(s))
        }
        (_, DequeKind::Abp) => {
            let (w, s) = AbpDeque::new(capacity);
            let (w, s) = SplitDeque::wrap(w, s, split, capacity);
            (OwnerDeque::Abp(w), SharedStealer::Abp(s))
        }
        (_, DequeKind::Locked) => {
            let (w, s) = LockedDeque::new(capacity);
            let (w, s) = SplitDeque::wrap(w, s, split, capacity);
            (OwnerDeque::Locked(w), SharedStealer::Locked(s))
        }
    }
}

/// Current occupancy of the owner side of a deque, private segment
/// included (observability only — the value is a racy snapshot for all
/// lock-free algorithms).
pub fn occupancy(dq: &OwnerDeque) -> usize {
    match dq {
        OwnerDeque::Cl(w) => w.len(),
        OwnerDeque::The(w) => w.len(),
        OwnerDeque::Abp(w) => w.len(),
        OwnerDeque::Locked(w) => w.len(),
        OwnerDeque::Fused(f) => f.q.lock().len(),
    }
}

/// Occupancy of the *public* (thief-visible) part of the owner's deque —
/// what the wake-threshold gate should consult: a promotion makes a wake
/// worthwhile only if the woken thief can actually see the work.
pub fn public_occupancy(dq: &OwnerDeque) -> usize {
    match dq {
        OwnerDeque::Cl(w) => w.public_len(),
        OwnerDeque::The(w) => w.public_len(),
        OwnerDeque::Abp(w) => w.public_len(),
        OwnerDeque::Locked(w) => w.public_len(),
        OwnerDeque::Fused(f) => f.q.lock().len(),
    }
}

/// Occupancy seen through a thief-side handle (racy snapshot) — used by the
/// idle engine's park validation re-scan: anything non-zero anywhere means
/// "don't sleep, go steal". Private segments are invisible here by design;
/// the hunger signal (raised by the failed steals of the sweep preceding a
/// park) covers them.
pub fn stealer_len(st: &SharedStealer) -> usize {
    match st {
        SharedStealer::Cl(s) => s.inner().len(),
        SharedStealer::The(s) => s.inner().len(),
        SharedStealer::Abp(s) => s.inner().len(),
        SharedStealer::Locked(s) => s.inner().len(),
        SharedStealer::Fused(f) => f.q.lock().len(),
    }
}

/// Whether the most recent successful owner-side pop on this deque was
/// served by the private segment (feeds the `private_pops` statistic).
pub fn last_pop_was_private(dq: &OwnerDeque) -> bool {
    match dq {
        OwnerDeque::Cl(w) => w.last_pop_was_private(),
        OwnerDeque::The(w) => w.last_pop_was_private(),
        OwnerDeque::Abp(w) => w.last_pop_was_private(),
        OwnerDeque::Locked(w) => w.last_pop_was_private(),
        OwnerDeque::Fused(_) => false,
    }
}

/// Promotes up to `max` private items to the public deque regardless of
/// batch or hunger state. Used by the wake path (`promote_on_wake`) and
/// the chaos `ForcePromote` site. Returns the number moved.
pub fn force_promote(dq: &OwnerDeque, max: usize) -> u32 {
    let moved = match dq {
        OwnerDeque::Cl(w) => w.force_promote(max),
        OwnerDeque::The(w) => w.force_promote(max),
        OwnerDeque::Abp(w) => w.force_promote(max),
        OwnerDeque::Locked(w) => w.force_promote(max),
        OwnerDeque::Fused(_) => 0,
    };
    moved as u32
}

/// Outcome of offering a continuation to the deques.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// The continuation was enqueued (privately or publicly). `false`
    /// means both segments of a bounded queue refused — the caller then
    /// simply runs the child without offering the continuation (less
    /// parallelism, same semantics).
    pub offered: bool,
    /// Private items promoted to the public deque as a side effect of this
    /// push (batch boundary, hunger signal, or private-ring overflow).
    pub promoted: u32,
}

#[inline]
fn push_outcome(res: Result<SplitPush, Full<Rec>>) -> PushOutcome {
    match res {
        Ok(p) => PushOutcome {
            offered: true,
            promoted: p.promoted,
        },
        Err(Full(_)) => PushOutcome {
            offered: false,
            promoted: 0,
        },
    }
}

/// Offers a continuation to thieves (Fig. 5 line 2). With the split layer
/// enabled the common case is a private, synchronization-free ring write;
/// see [`PushOutcome`] for the side-channel information the scheduler
/// consumes.
#[inline]
// lint: hot-path
pub fn push(dq: &OwnerDeque, rec: Rec) -> PushOutcome {
    match dq {
        OwnerDeque::Cl(w) => push_outcome(w.push_spawn(rec)),
        OwnerDeque::The(w) => push_outcome(w.push_spawn(rec)),
        OwnerDeque::Abp(w) => push_outcome(w.push_spawn(rec)),
        OwnerDeque::Locked(w) => push_outcome(w.push_spawn(rec)),
        OwnerDeque::Fused(f) => {
            // lint: allow(R5) — the fused baseline is lock-based by definition
            f.q.lock().push_back(rec);
            PushOutcome {
                offered: true,
                promoted: 0,
            }
        }
    }
}

/// After the child returned: reclaim our continuation or perform the child
/// join (Fig. 5 lines 4–5 plus the implicit-sync bookkeeping).
///
/// For the wait-free protocol this is where the benign race lives: the pop
/// and the counter decrement are *not* atomic together, which is safe
/// because the counter still holds `N_r' = I_max − ω` until the explicit
/// sync restores it (§IV-B). For the locked protocol the deque lock is held
/// until the frame lock is acquired, exactly as in Listing 2.
#[inline]
// lint: hot-path
pub fn pop_or_join(protocol: ProtocolKind, dq: &OwnerDeque, frame: &Frame) -> AfterChild {
    match protocol {
        ProtocolKind::NowaWaitFree => {
            let popped = match dq {
                OwnerDeque::Cl(w) => w.pop(),
                OwnerDeque::The(w) => w.pop(),
                OwnerDeque::Abp(w) => w.pop(),
                OwnerDeque::Locked(w) => w.pop(),
                OwnerDeque::Fused(_) => unreachable!("fused deque implies locked protocol"),
            };
            match popped {
                Some(rec) => {
                    debug_assert_eq!(
                        // SAFETY: a popped record is exclusively ours; it
                        // lives in the spawn wrapper's frame until resumed.
                        unsafe { (*rec.as_ptr()).frame },
                        frame as *const Frame,
                        "LIFO invariant: popped record belongs to our frame"
                    );
                    AfterChild::Continue
                }
                None => {
                    // Wait-free child join: one atomic RMW, no lock.
                    let post = frame.join.counter.fetch_sub(1, Ordering::AcqRel) - 1;
                    if post == 0 {
                        // We crossed zero, so the main path already
                        // restored the counter — and published its
                        // suspension before that restore. Claim it.
                        let retired = retire_suspension(frame);
                        debug_assert!(retired, "zero-crossing without a parked suspension");
                        AfterChild::ResumeSync
                    } else {
                        AfterChild::OutOfWork
                    }
                }
            }
        }
        ProtocolKind::FibrilLocked => {
            let OwnerDeque::Fused(f) = dq else {
                unreachable!("locked protocol requires the fused deque");
            };
            let mut q = f.q.lock();
            if let Some(rec) = q.pop_back() {
                // SAFETY: popping under the deque lock grants exclusive
                // ownership of the record.
                debug_assert_eq!(unsafe { (*rec.as_ptr()).frame }, frame as *const Frame);
                return AfterChild::Continue;
            }
            // Listing 2 discipline: acquire the frame lock before releasing
            // the deque lock, fusing pop-failure and count update.
            let mut j = frame.join.locked.lock();
            drop(q);
            j.count -= 1;
            debug_assert!(j.count >= 0, "locked join count underflow");
            if j.suspended && j.count == 0 {
                j.suspended = false;
                AfterChild::ResumeSync
            } else {
                AfterChild::OutOfWork
            }
        }
    }
}

/// Fork bookkeeping performed by whoever takes a continuation as new work —
/// a thief after a successful steal, or the owner popping its own deque in
/// the work-finding loop. For Nowa this is the `α` increment `run()`
/// performs before calling `resume()` (§III-B); it needs no synchronisation
/// because the taker *becomes* the main path (Invariant II).
#[inline]
// lint: hot-path
fn fork_bookkeeping(protocol: ProtocolKind, rec: Rec) {
    // SAFETY: the caller owns `rec` (a successful steal or pop), and the
    // frame outlives every record pointing at it.
    let frame = unsafe { &*(*rec.as_ptr()).frame };
    match protocol {
        ProtocolKind::NowaWaitFree => {
            frame.join.alpha.fetch_add(1, Ordering::Relaxed);
        }
        ProtocolKind::FibrilLocked => {
            // Count update happens under the frame lock, which the fused
            // call sites acquire; see `steal_from` / `take_own`.
            unreachable!("fibril fork bookkeeping is fused with the deque op")
        }
    }
}

/// Takes the bottom-most record of the worker's *own* deque as new work
/// (the work-finding loop prefers local work before stealing). Includes
/// fork bookkeeping.
#[inline]
// lint: hot-path
pub fn take_own(protocol: ProtocolKind, dq: &OwnerDeque) -> Option<Rec> {
    match protocol {
        ProtocolKind::NowaWaitFree => {
            let rec = match dq {
                OwnerDeque::Cl(w) => w.pop(),
                OwnerDeque::The(w) => w.pop(),
                OwnerDeque::Abp(w) => w.pop(),
                OwnerDeque::Locked(w) => w.pop(),
                OwnerDeque::Fused(_) => unreachable!(),
            }?;
            fork_bookkeeping(protocol, rec);
            Some(rec)
        }
        ProtocolKind::FibrilLocked => {
            let OwnerDeque::Fused(f) = dq else {
                unreachable!();
            };
            let mut q = f.q.lock();
            let rec = q.pop_back()?;
            // SAFETY: popped under the deque lock — the record is ours, and
            // its frame outlives it.
            let frame = unsafe { &*(*rec.as_ptr()).frame };
            let mut j = frame.join.locked.lock();
            drop(q);
            j.count += 1;
            drop(j);
            Some(rec)
        }
    }
}

/// Steals from a victim's top end, with fork bookkeeping (Fig. 5's
/// `popTop()` + the `N` increment in `run()`; Listing 2 for the locked
/// protocol).
#[inline]
// lint: hot-path
pub fn steal_from(protocol: ProtocolKind, st: &SharedStealer) -> Steal<Rec> {
    match protocol {
        ProtocolKind::NowaWaitFree => {
            let outcome = match st {
                SharedStealer::Cl(s) => s.steal(),
                SharedStealer::The(s) => s.steal(),
                SharedStealer::Abp(s) => s.steal(),
                SharedStealer::Locked(s) => s.steal(),
                SharedStealer::Fused(_) => unreachable!(),
            };
            if let Steal::Success(rec) = outcome {
                fork_bookkeeping(protocol, rec);
            }
            outcome
        }
        ProtocolKind::FibrilLocked => {
            // The fused queue bypasses the deque-layer steal entry points,
            // so the forced-steal injection is honoured here.
            #[cfg(feature = "chaos")]
            if let Some(forced) = nowa_deque::chaos::take_forced() {
                return forced.as_steal();
            }
            let SharedStealer::Fused(f) = st else {
                unreachable!();
            };
            let mut q = f.q.lock();
            let Some(rec) = q.pop_front() else {
                return Steal::Empty;
            };
            // SAFETY: stolen under the victim's deque lock — the record is
            // ours, and its frame outlives it.
            let frame = unsafe { &*(*rec.as_ptr()).frame };
            // Listing 2 lines 10–15: frame lock acquired while still
            // holding the victim's deque lock.
            let mut j = frame.join.locked.lock();
            drop(q);
            j.count += 1;
            drop(j);
            Steal::Success(rec)
        }
    }
}

/// At the explicit sync point: true if the sync condition already holds and
/// the main path can proceed without suspending.
#[inline]
pub fn sync_precheck(protocol: ProtocolKind, frame: &Frame) -> bool {
    match protocol {
        ProtocolKind::NowaWaitFree => {
            let alpha = frame.join.alpha.load(Ordering::Relaxed) as i64;
            // All α forked strands joined ⇔ counter == I_max − α. The
            // Acquire pairs with the joiners' AcqRel decrements so child
            // results are visible.
            frame.join.counter.load(Ordering::Acquire) == I_MAX - alpha
        }
        ProtocolKind::FibrilLocked => frame.join.locked.lock().count == 0,
    }
}

/// On the fresh stack, after the sync continuation has been captured:
/// publish the suspension and restore the counter. Returns `true` if the
/// sync condition holds *now* (all children joined in the meantime) — the
/// caller then resumes the sync continuation immediately instead of
/// stealing.
///
/// For Nowa this is Eq. 5: `N_r = N_r' − (I_max − α)`, one `fetch_sub`.
#[inline]
pub fn sync_restore(protocol: ProtocolKind, frame: &Frame) -> bool {
    match protocol {
        ProtocolKind::NowaWaitFree => {
            // Publish the suspension *before* restoring the counter: the
            // joiner whose decrement crosses zero must observe it (its
            // AcqRel RMW on the counter synchronizes with ours below, so
            // this Release store happens-before its `retire_suspension`).
            frame.join.susp.store(SUSP_SUSPENDED, Ordering::Release);
            let alpha = frame.join.alpha.load(Ordering::Relaxed) as i64;
            let delta = I_MAX - alpha;
            let post = frame.join.counter.fetch_sub(delta, Ordering::AcqRel) - delta;
            debug_assert!(post >= 0, "sync counter restored below zero");
            if post == 0 {
                // The restore itself crossed zero: no joiner will, so we
                // retire our own suspension and resume immediately.
                let retired = retire_suspension(frame);
                debug_assert!(retired, "restore zero-crossing lost its own suspension");
            }
            post == 0
        }
        ProtocolKind::FibrilLocked => {
            let mut j = frame.join.locked.lock();
            if j.count == 0 {
                true
            } else {
                j.suspended = true;
                false
            }
        }
    }
}

/// Claims a parked suspension at a counter zero-crossing: swaps the
/// suspension state machine back to [`SUSP_IDLE`] and reports whether this
/// call retired it. The zero crossing is a unique event in the counter's
/// modification order, so exactly one party retires each suspension — the
/// "retired exactly once" half of the abortable-suspension protocol
/// (DESIGN.md §6f); the loom cancel model asserts it.
#[inline]
pub fn retire_suspension(frame: &Frame) -> bool {
    // AcqRel: acquire the suspender's pre-suspension writes (sync_ctx,
    // suspended_stack) before resuming them; release our own join so the
    // resumed continuation sees it.
    frame.join.susp.swap(SUSP_IDLE, Ordering::AcqRel) == SUSP_SUSPENDED
}

/// Re-arms a frame after a completed sync so the same frame can host the
/// next spawn region (Listing 3 allows several spawn…sync regions per
/// spawning function).
#[inline]
pub fn rearm(protocol: ProtocolKind, frame: &Frame) {
    match protocol {
        ProtocolKind::NowaWaitFree => {
            debug_assert_eq!(
                frame.join.susp.load(Ordering::Relaxed),
                SUSP_IDLE,
                "rearm with a suspension still parked"
            );
            frame.join.counter.store(I_MAX, Ordering::Relaxed);
            frame.join.alpha.store(0, Ordering::Relaxed);
        }
        ProtocolKind::FibrilLocked => {
            let mut j = frame.join.locked.lock();
            debug_assert_eq!(j.count, 0);
            j.count = 0;
            j.suspended = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_names_round_trip() {
        for f in [
            Flavor::NOWA,
            Flavor::NOWA_THE,
            Flavor::NOWA_ABP,
            Flavor::NOWA_LOCKED_DEQUE,
            Flavor::FIBRIL,
        ] {
            assert_eq!(Flavor::parse(f.name()), Some(f));
        }
        assert_eq!(Flavor::parse("nope"), None);
    }

    /// Single-threaded protocol walk-through: spawn twice, steal one,
    /// join it, sync. Exercises the counter algebra of §IV-B.
    #[test]
    fn nowa_counter_algebra() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::NOWA, 8, SplitConfig::disabled());
        let rec1 = SpawnRecord::new(&frame);
        let rec2 = SpawnRecord::new(&frame);

        // spawn #1: push, child runs, not stolen: pop succeeds.
        assert!(push(&dq, Ptr::from_ref(&rec1)).offered);
        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::Continue);

        // spawn #2: push, continuation stolen while child runs.
        assert!(push(&dq, Ptr::from_ref(&rec2)).offered);
        let stolen = steal_from(p, &st).success().unwrap();
        assert_eq!(
            stolen.as_ptr() as *const SpawnRecord,
            &rec2 as *const SpawnRecord
        );
        assert_eq!(frame.join.alpha.load(Ordering::Relaxed), 1);

        // child of spawn #2 returns, finds the deque empty, joins; the
        // parent has not reached the sync, so the counter stays huge and
        // the child is simply out of work (benign race!).
        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::OutOfWork);
        assert_eq!(frame.join.counter.load(Ordering::Relaxed), I_MAX - 1);

        // main path reaches the explicit sync: everything already joined.
        assert!(sync_precheck(p, &frame));
        rearm(p, &frame);
        assert_eq!(frame.join.counter.load(Ordering::Relaxed), I_MAX);
        assert_eq!(frame.join.alpha.load(Ordering::Relaxed), 0);
    }

    /// The suspension ordering: sync before the join → restore leaves the
    /// counter positive; the late joiner then reports `ResumeSync`.
    #[test]
    fn nowa_late_joiner_resumes() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::NOWA, 8, SplitConfig::disabled());
        let rec = SpawnRecord::new(&frame);

        assert!(push(&dq, Ptr::from_ref(&rec)).offered);
        let _stolen = steal_from(p, &st).success().unwrap();

        // Main path reaches sync while the child still runs.
        assert!(!sync_precheck(p, &frame));
        assert!(!sync_restore(p, &frame), "one child outstanding");
        assert_eq!(frame.join.counter.load(Ordering::Relaxed), 1);
        assert_eq!(
            frame.join.susp.load(Ordering::Relaxed),
            SUSP_SUSPENDED,
            "restore published the parked suspension"
        );

        // Child joins: it is the last one and must resume the sync ctx,
        // retiring the suspension exactly once on the way.
        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::ResumeSync);
        assert_eq!(frame.join.susp.load(Ordering::Relaxed), SUSP_IDLE);
        assert!(
            !retire_suspension(&frame),
            "a second retire of the same suspension must fail"
        );
    }

    /// A restore that itself crosses zero retires its own suspension.
    #[test]
    fn nowa_restore_self_resume_retires_suspension() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::NOWA, 8, SplitConfig::disabled());
        let rec = SpawnRecord::new(&frame);

        assert!(push(&dq, Ptr::from_ref(&rec)).offered);
        let _stolen = steal_from(p, &st).success().unwrap();
        // Child joins *before* the main path syncs.
        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::OutOfWork);
        // Restore crosses zero itself: immediate resume, suspension retired.
        assert!(sync_restore(p, &frame));
        assert_eq!(frame.join.susp.load(Ordering::Relaxed), SUSP_IDLE);
    }

    #[test]
    fn fibril_locked_walkthrough() {
        let p = ProtocolKind::FibrilLocked;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::FIBRIL, 8, SplitConfig::disabled());
        let rec = SpawnRecord::new(&frame);

        assert!(push(&dq, Ptr::from_ref(&rec)).offered);
        let _stolen = steal_from(p, &st).success().unwrap();
        assert_eq!(frame.join.locked.lock().count, 1);

        assert!(!sync_precheck(p, &frame));
        assert!(!sync_restore(p, &frame));
        assert!(frame.join.locked.lock().suspended);

        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::ResumeSync);
        assert!(!frame.join.locked.lock().suspended);
        assert_eq!(frame.join.locked.lock().count, 0);
        rearm(p, &frame);
    }

    #[test]
    fn take_own_does_fork_bookkeeping() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, _st) = new_deque(Flavor::NOWA, 8, SplitConfig::disabled());
        let rec = SpawnRecord::new(&frame);
        assert!(push(&dq, Ptr::from_ref(&rec)).offered);
        let taken = take_own(p, &dq).unwrap();
        assert_eq!(
            taken.as_ptr() as *const SpawnRecord,
            &rec as *const SpawnRecord
        );
        assert_eq!(frame.join.alpha.load(Ordering::Relaxed), 1);
        assert!(take_own(p, &dq).is_none());
    }

    #[test]
    fn fibril_take_own_counts() {
        let p = ProtocolKind::FibrilLocked;
        let frame = Frame::new();
        let (dq, _st) = new_deque(Flavor::FIBRIL, 8, SplitConfig::disabled());
        let rec = SpawnRecord::new(&frame);
        assert!(push(&dq, Ptr::from_ref(&rec)).offered);
        let _ = take_own(p, &dq).unwrap();
        assert_eq!(frame.join.locked.lock().count, 1);
    }

    /// With the split enabled, a fresh spawn stays private; a thief's
    /// failed steal raises hunger; the next push promotes everything and
    /// the thief gets the globally oldest record, with fork bookkeeping.
    #[test]
    fn split_promotion_feeds_hungry_thief() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::NOWA, 8, SplitConfig::default());
        let rec1 = SpawnRecord::new(&frame);
        let rec2 = SpawnRecord::new(&frame);

        let first = push(&dq, Ptr::from_ref(&rec1));
        assert!(first.offered);
        assert_eq!(first.promoted, 0, "fresh spawn stays private");
        assert_eq!(public_occupancy(&dq), 0);
        assert_eq!(occupancy(&dq), 1, "private item counts in occupancy");

        // A thief sweeps: the public deque is empty, hunger is raised.
        assert!(steal_from(p, &st).is_empty());
        // The next push promotes both records for the hungry thief.
        let second = push(&dq, Ptr::from_ref(&rec2));
        assert_eq!(second.promoted, 2);
        assert_eq!(public_occupancy(&dq), 2);

        let stolen = steal_from(p, &st).success().unwrap();
        assert_eq!(
            stolen.as_ptr() as *const SpawnRecord,
            &rec1 as *const SpawnRecord,
            "thief receives the globally oldest spawn"
        );
        assert_eq!(frame.join.alpha.load(Ordering::Relaxed), 1);
    }

    /// The owner's pop reports which segment served it, and a forced
    /// promotion publishes private work without a push.
    #[test]
    fn split_private_pop_and_force_promote() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::NOWA, 8, SplitConfig::default());
        let rec1 = SpawnRecord::new(&frame);
        let rec2 = SpawnRecord::new(&frame);

        assert!(push(&dq, Ptr::from_ref(&rec1)).offered);
        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::Continue);
        assert!(last_pop_was_private(&dq));

        assert!(push(&dq, Ptr::from_ref(&rec2)).offered);
        assert_eq!(force_promote(&dq, usize::MAX), 1);
        assert_eq!(public_occupancy(&dq), 1);
        let _stolen = steal_from(p, &st).success().unwrap();
        assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::OutOfWork);
        assert!(
            !last_pop_was_private(&dq),
            "that join popped nothing private"
        );
    }

    /// The fused Fibril deque ignores the split layer entirely.
    #[test]
    fn fused_deque_has_no_private_segment() {
        let frame = Frame::new();
        let (dq, _st) = new_deque(Flavor::FIBRIL, 8, SplitConfig::default());
        let rec = SpawnRecord::new(&frame);
        let out = push(&dq, Ptr::from_ref(&rec));
        assert!(out.offered);
        assert_eq!(out.promoted, 0);
        assert_eq!(public_occupancy(&dq), 1, "fused pushes are public at once");
        assert_eq!(force_promote(&dq, usize::MAX), 0);
        assert!(!last_pop_was_private(&dq));
    }

    /// Two spawn…sync regions on one frame after `rearm`.
    #[test]
    fn frame_reuse_across_regions() {
        let p = ProtocolKind::NowaWaitFree;
        let frame = Frame::new();
        let (dq, st) = new_deque(Flavor::NOWA, 8, SplitConfig::disabled());

        for _region in 0..3 {
            let rec = SpawnRecord::new(&frame);
            assert!(push(&dq, Ptr::from_ref(&rec)).offered);
            let _ = steal_from(p, &st).success().unwrap();
            assert_eq!(pop_or_join(p, &dq, &frame), AfterChild::OutOfWork);
            assert!(sync_precheck(p, &frame));
            rearm(p, &frame);
        }
    }
}
