//! Watchdog thread: region deadlines plus the stall monitor.
//!
//! One background thread per runtime, always spawned, with two duties:
//!
//! * **Region deadlines** — [`Region::with_deadline`](crate::api::Region)
//!   arms an entry in [`Shared::deadlines`]; this thread sleeps on the
//!   queue's condvar until the earliest expiry (or a new arm, or
//!   shutdown), then fires due entries by latching their scopes with
//!   [`CancelReason::Deadline`](crate::cancel::CancelReason). Firing is a
//!   flag store — the cancelled region unwinds cooperatively at its next
//!   checkpoint — so a late watchdog delays detection, never correctness.
//! * **Stall monitoring** — only when `Config::watchdog` is `Some`: samples
//!   per-worker progress counters and reports workers that stop moving.
//!
//! Progress is [`WorkerStats::progress`] — any scheduling event,
//! work-finding iteration, or cancellation checkpoint advances it (a
//! worker cooperatively unwinding a cancelled subtree bumps `cancels` and
//! `loop_ticks`, so an unwind in progress never reads as a stall). A
//! deep-idle worker may be futex-parked for long stretches with a frozen
//! counter; the monitor asks the idle engine
//! ([`crate::idle::IdleState::is_parked`]) and classifies parked workers
//! as healthy, so only a genuinely wedged worker trips the threshold. A
//! genuine stall (a task stuck in a syscall, a deadlocked lock inside user
//! code, a scheduler bug) leaves the counter frozen; after `threshold`
//! without movement the watchdog prints one report per stall episode to
//! stderr — worker index, seconds stalled, last progress value — plus the
//! flight-recorder dump (when the flight recorder is on) and the merged
//! trace report (when tracing is enabled). Reports are counted in
//! `Shared::watchdog_reports` so tests and harnesses can assert on them.
//!
//! With stall monitoring on, the thread wakes four times per threshold (at
//! least every 5 ms), so detection latency is at most ~1.25 × threshold;
//! without it, the thread sleeps until the next armed deadline. The thread
//! exits when the runtime shuts down (the shutdown path notifies the
//! deadline condvar).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::worker::Shared;

/// Sleep cap while no deadline is armed and stall monitoring is off: a
/// periodic re-check of the shutdown flag in case the shutdown notify
/// raced the condvar wait.
const IDLE_NAP: Duration = Duration::from_millis(500);

/// Spawns the watchdog thread for `shared`. The stall threshold (if any)
/// comes from `shared.config.watchdog`; deadline firing is unconditional.
pub(crate) fn spawn(shared: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("nowa-watchdog".to_string())
        .spawn(move || run(&shared))
        .expect("spawning watchdog thread")
}

fn run(shared: &Shared) {
    let threshold = shared.config.watchdog;
    let interval = threshold.map(|t| (t / 4).max(Duration::from_millis(5)));
    let n = shared.stats.len();
    let mut last_progress: Vec<u64> = (0..n).map(|i| shared.stats[i].progress()).collect();
    let mut last_change: Vec<Instant> = vec![Instant::now(); n];
    // One report per stall episode: re-arm only after progress resumes.
    let mut reported: Vec<bool> = vec![false; n];

    while !shared.shutdown.load(Ordering::Acquire) {
        let now = Instant::now();
        let (next_deadline, fired) = shared.deadlines.fire_due(now);
        if fired > 0 {
            // A latched deadline cancels cooperatively — but a strand
            // parked in `block_on` has no checkpoint to trip. Broadcast so
            // every parked async cell re-checks its scope chain.
            shared.async_waiters.wake_all();
            shared.reactor.kick_if_claimed();
        }
        // Bound timer staleness under full saturation: when every worker
        // is busy, nobody reactor-polls, so the wheel would stall. The
        // watchdog sweep is the same backstop the deadline queue uses.
        shared.reactor.advance_timers_external();

        // Sleep until whichever comes first: the stall-sampling tick, the
        // earliest armed deadline, or a condvar notify (new deadline armed
        // earlier than our sleep, or shutdown).
        let mut nap = interval.unwrap_or(IDLE_NAP);
        if let Some(at) = next_deadline {
            nap = nap.min(at.saturating_duration_since(now));
        }
        // Armed wheel timers also cap the nap (floored at 5 ms so the
        // watchdog never busy-spins on 1 ms timers the poller normally
        // serves): the cap only matters when every worker stays busy.
        let timer_ms = shared
            .reactor
            .timers
            .next_timeout_ms(now, nap.as_millis().min(u64::MAX as u128) as u64);
        nap = nap.min(Duration::from_millis(timer_ms.max(5)));
        shared.deadlines.wait(nap);

        let Some(threshold) = threshold else { continue };
        let now = Instant::now();
        for i in 0..n {
            let progress = shared.stats[i].progress();
            // A futex-parked worker is healthy by construction (it is
            // exactly where an idle worker should be), so its frozen
            // progress counter must not read as a stall.
            if progress != last_progress[i]
                || shared.idle.is_parked(i)
                || shared.reactor.is_poller(i)
            {
                last_progress[i] = progress;
                last_change[i] = now;
                reported[i] = false;
            } else if !reported[i] && now.duration_since(last_change[i]) >= threshold {
                reported[i] = true;
                shared.watchdog_reports.fetch_add(1, Ordering::Relaxed);
                report(shared, i, now.duration_since(last_change[i]), progress);
            }
        }
    }
    // Fire anything already due one last time so a deadline that expired
    // during shutdown still latches (its region may already be cancelled
    // by the root latch anyway; latching twice is idempotent).
    let _ = shared.deadlines.fire_due(Instant::now());
}

fn report(shared: &Shared, worker: usize, stalled_for: Duration, progress: u64) {
    eprintln!(
        "nowa-watchdog: worker {worker} made no progress for {:.3}s \
         (progress counter stuck at {progress}); it may be blocked in user \
         code or wedged",
        stalled_for.as_secs_f64()
    );
    // The flight recorder first: the last per-worker scheduler events
    // usually show *where* the wedged worker stopped, which the summary
    // table cannot.
    #[cfg(feature = "trace")]
    if let Some(rings) = shared.flight.as_deref() {
        eprintln!(
            "nowa-watchdog: flight recorder at stall:\n{}",
            nowa_trace::flight::dump(rings)
        );
    }
    #[cfg(feature = "trace")]
    if let Some(buffers) = shared.trace.as_deref() {
        let report = nowa_trace::TraceReport::collect(buffers);
        eprintln!(
            "nowa-watchdog: trace report at stall:\n{}",
            report.summary_table()
        );
    }
    #[cfg(not(feature = "trace"))]
    let _ = shared;
}
