//! Stall watchdog: a monitor thread that samples per-worker progress
//! counters and reports workers that stop making progress.
//!
//! Progress is [`WorkerStats::progress`] — any scheduling event or
//! work-finding iteration advances it. A deep-idle worker may be futex-
//! parked for long stretches with a frozen counter; the monitor asks the
//! idle engine ([`crate::idle::IdleState::is_parked`]) and classifies
//! parked workers as healthy, so only a genuinely wedged worker trips the
//! threshold. A genuine stall (a task stuck in a
//! syscall, a deadlocked lock inside user code, a scheduler bug) leaves the
//! counter frozen; after `threshold` without movement the watchdog prints
//! one report per stall episode to stderr — worker index, seconds stalled,
//! last progress value — plus the flight-recorder dump (when the flight
//! recorder is on) and the merged trace report (when tracing is enabled).
//! Reports are counted in `Shared::watchdog_reports` so tests and
//! harnesses can assert on them.
//!
//! The monitor wakes four times per threshold (at least every 5 ms), so
//! detection latency is at most ~1.25 × threshold; the thread exits when
//! the runtime shuts down.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::worker::Shared;

/// Spawns the watchdog thread for `shared`, sampling against `threshold`.
pub(crate) fn spawn(shared: Arc<Shared>, threshold: Duration) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("nowa-watchdog".to_string())
        .spawn(move || run(&shared, threshold))
        .expect("spawning watchdog thread")
}

fn run(shared: &Shared, threshold: Duration) {
    let interval = (threshold / 4).max(Duration::from_millis(5));
    let n = shared.stats.len();
    let mut last_progress: Vec<u64> = (0..n).map(|i| shared.stats[i].progress()).collect();
    let mut last_change: Vec<Instant> = vec![Instant::now(); n];
    // One report per stall episode: re-arm only after progress resumes.
    let mut reported: Vec<bool> = vec![false; n];

    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        let now = Instant::now();
        for i in 0..n {
            let progress = shared.stats[i].progress();
            // A futex-parked worker is healthy by construction (it is
            // exactly where an idle worker should be), so its frozen
            // progress counter must not read as a stall.
            if progress != last_progress[i] || shared.idle.is_parked(i) {
                last_progress[i] = progress;
                last_change[i] = now;
                reported[i] = false;
            } else if !reported[i] && now.duration_since(last_change[i]) >= threshold {
                reported[i] = true;
                shared.watchdog_reports.fetch_add(1, Ordering::Relaxed);
                report(shared, i, now.duration_since(last_change[i]), progress);
            }
        }
    }
}

fn report(shared: &Shared, worker: usize, stalled_for: Duration, progress: u64) {
    eprintln!(
        "nowa-watchdog: worker {worker} made no progress for {:.3}s \
         (progress counter stuck at {progress}); it may be blocked in user \
         code or wedged",
        stalled_for.as_secs_f64()
    );
    // The flight recorder first: the last per-worker scheduler events
    // usually show *where* the wedged worker stopped, which the summary
    // table cannot.
    #[cfg(feature = "trace")]
    if let Some(rings) = shared.flight.as_deref() {
        eprintln!(
            "nowa-watchdog: flight recorder at stall:\n{}",
            nowa_trace::flight::dump(rings)
        );
    }
    #[cfg(feature = "trace")]
    if let Some(buffers) = shared.trace.as_deref() {
        let report = nowa_trace::TraceReport::collect(buffers);
        eprintln!(
            "nowa-watchdog: trace report at stall:\n{}",
            report.summary_table()
        );
    }
    #[cfg(not(feature = "trace"))]
    let _ = shared;
}
