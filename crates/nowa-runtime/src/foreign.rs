//! Foreign-executor hook: lets other runtime systems execute the same
//! fork/join kernel code.
//!
//! The paper's evaluation runs one benchmark suite over many runtime
//! systems (Nowa, Fibril, Cilk Plus, TBB, libgomp, libomp). Our kernels are
//! written against [`crate::api`]; baseline runtimes (the `nowa-baselines`
//! crate) install a [`ForeignForkJoin`] implementation in their workers'
//! thread-local state, and the combinators dispatch to it when the calling
//! thread is not a Nowa worker. Priority: Nowa worker → foreign executor →
//! serial elision.

use core::cell::Cell;

/// A fork/join executor other than the Nowa runtime (child-stealing pools,
/// central-queue task systems, …).
///
/// # Contract
/// `join2_dyn(a, b)` must invoke each closure exactly once and return only
/// after **both** have completed (fully-strict). The closures may run on
/// any thread (they are `Send`).
pub trait ForeignForkJoin: Sync {
    /// Runs `a` and `b`, potentially in parallel; returns when both are
    /// done.
    fn join2_dyn(&self, a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send));
}

std::thread_local! {
    static FOREIGN: Cell<Option<*const (dyn ForeignForkJoin + 'static)>> =
        const { Cell::new(None) };
}

/// Installs `executor` as the calling thread's foreign executor.
///
/// # Safety
/// `executor` must outlive every API call made from this thread until
/// [`clear_foreign_executor`] is called (baseline pools install it for the
/// lifetime of their worker threads).
pub unsafe fn set_foreign_executor(executor: *const (dyn ForeignForkJoin + 'static)) {
    FOREIGN.with(|c| c.set(Some(executor)));
}

/// Removes the calling thread's foreign executor.
pub fn clear_foreign_executor() {
    FOREIGN.with(|c| c.set(None));
}

/// The calling thread's foreign executor, if any.
///
/// Deliberately `#[inline(never)]` — same TLS-caching rationale as
/// [`crate::worker::current_worker`].
#[inline(never)]
pub fn foreign_executor() -> Option<*const (dyn ForeignForkJoin + 'static)> {
    FOREIGN.with(|c| c.get())
}

/// Runs `a` and `b` through the foreign executor, collecting results.
pub(crate) fn foreign_join2<A, B, RA, RB>(
    fx: *const (dyn ForeignForkJoin + 'static),
    a: A,
    b: B,
) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut fa = Some(a);
    let mut fb = Some(b);
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let mut ca = || ra = Some((fa.take().expect("called once"))());
        let mut cb = || rb = Some((fb.take().expect("called once"))());
        // SAFETY: the installer promised the executor outlives this call.
        unsafe { (*fx).join2_dyn(&mut ca, &mut cb) };
    }
    (
        ra.expect("foreign executor ran a"),
        rb.expect("foreign executor ran b"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial foreign executor that runs everything inline.
    struct Inline;

    impl ForeignForkJoin for Inline {
        fn join2_dyn(&self, a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send)) {
            a();
            b();
        }
    }

    #[test]
    fn dispatches_through_foreign_executor() {
        static INLINE: Inline = Inline;
        // SAFETY: `INLINE` is a `'static` executor, and the serial test
        // harness clears it before anything else can observe it.
        unsafe { set_foreign_executor(&INLINE) };
        assert!(foreign_executor().is_some());
        let (x, y) = crate::api::join2(|| 2 + 2, || "ok");
        assert_eq!((x, y), (4, "ok"));
        clear_foreign_executor();
        assert!(foreign_executor().is_none());
    }

    #[test]
    fn foreign_join2_collects_results() {
        static INLINE: Inline = Inline;
        let (a, b) = foreign_join2(&INLINE as *const Inline as *const _, || 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
