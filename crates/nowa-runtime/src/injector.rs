//! Lock-free MPMC segment queue for root-task submission.
//!
//! The old injector was a `Mutex<VecDeque>` — every work-finding iteration
//! of every worker took the lock just to find it empty, so root submission
//! from foreign threads serialized against N pollers. This queue makes the
//! empty poll three loads on read-mostly cache lines and the transfer path
//! lock-free:
//!
//! * **Producers** claim a slot index with one `fetch_add` on the tail
//!   segment, then publish the task pointer into the slot.
//! * **Consumers** check the committed range *before* claiming (an empty
//!   poll performs no RMW and burns no index), then claim an index with a
//!   CAS and spin the short producer-publish window out of the slot.
//! * Segments are linked by `next` and never unlinked; a drained segment
//!   is simply walked past. Memory is reclaimed in `Drop`, which sidesteps
//!   hazard-pointer/epoch reclamation entirely — the queue only carries
//!   root submissions (a handful per run), not per-spawn traffic, so a
//!   few hundred bytes per 64 submissions until runtime drop is a fine
//!   trade for a reclamation-free lock-free path.
//!
//! FIFO per producer, MPMC-safe, and unbounded (a full segment grows the
//! chain with one allocation per `SEG_CAP` submissions).

use crate::sync::{busy_spin, AtomicPtr, AtomicU32, Ordering};
use crate::worker::RootTask;

/// Slots per segment. The loom build shrinks segments to capacity 2 so the
/// bounded models can reach the segment-boundary paths (`advance_enq`, the
/// drained-segment walk in `pop`) within the preemption budget.
#[cfg(not(loom))]
const SEG_CAP: usize = 64;
#[cfg(loom)]
const SEG_CAP: usize = 2;

struct Segment<T> {
    /// Next producer slot; claims `>= SEG_CAP` mean "segment full, move on".
    enq: AtomicU32,
    /// Next consumer slot; never claimed past the committed range.
    deq: AtomicU32,
    /// Following segment in the chain (null until a producer grows it).
    next: AtomicPtr<Segment<T>>,
    /// Published item pointers; null = not yet published / consumed.
    slots: [AtomicPtr<T>; SEG_CAP],
}

impl<T> Segment<T> {
    fn boxed() -> Box<Segment<T>> {
        Box::new(Segment {
            enq: AtomicU32::new(0),
            deq: AtomicU32::new(0),
            next: AtomicPtr::new(core::ptr::null_mut()),
            slots: [const { AtomicPtr::new(core::ptr::null_mut()) }; SEG_CAP],
        })
    }
}

/// The queue. See the module docs for the algorithm.
///
/// Generic over the carried item: the runtime instantiates it twice, as
/// the root-task injector (`Injector<RootTask>`, the default) and as the
/// async ready queue (`Injector<ReadyCell>` — parked `block_on`
/// continuations claimed by their wakers, §6h). Both instances share this
/// one loom-modeled protocol.
pub struct Injector<T = RootTask> {
    /// Producers' segment (tail of the chain, possibly stale — producers
    /// re-advance it themselves).
    enq_seg: AtomicPtr<Segment<T>>,
    /// Consumers' segment (trails the tail; advanced past drained
    /// segments).
    deq_seg: AtomicPtr<Segment<T>>,
    /// Closed latch: once set by [`close`](Injector::close), `push`
    /// rejects new submissions. Monotonic — never reset.
    closed: AtomicU32,
    /// Head of the whole chain, for `Drop` reclamation only.
    chain: *mut Segment<T>,
}

// SAFETY: all shared mutation goes through atomics; the raw pointers are
// only dereferenced while the chain is alive (segments are never freed
// before `Drop`), and the carried item is `Send`.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: as for `Send`.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector with one pre-allocated segment.
    pub fn new() -> Injector<T> {
        let first = Box::into_raw(Segment::boxed());
        Injector {
            enq_seg: AtomicPtr::new(first),
            deq_seg: AtomicPtr::new(first),
            closed: AtomicU32::new(0),
            chain: first,
        }
    }

    /// Closes the queue: later `push` calls are rejected. A push that
    /// passed its closed check concurrently with this call may still land;
    /// shutdown tolerates that by draining *after* closing.
    pub fn close(&self) {
        // ordering: Relaxed — a monotonic admission latch; no data is
        // published through it (tasks synchronize via the slot Release/
        // Acquire pair), and the close/push race is benign by design.
        self.closed.store(1, Ordering::Relaxed);
    }

    /// Enqueues an item (any thread). Returns `false` — dropping `task`
    /// unrun — if the queue has been closed.
    #[must_use]
    pub fn push(&self, task: T) -> bool {
        // ordering: Relaxed — see `close`.
        if self.closed.load(Ordering::Relaxed) != 0 {
            return false;
        }
        let ptr = Box::into_raw(Box::new(task));
        loop {
            // Acquire pairs with `advance_enq`'s Release CAS: a segment
            // read here is fully initialised.
            let seg = self.enq_seg.load(Ordering::Acquire);
            // SAFETY: segments live until Drop; `seg` came from the chain.
            let seg_ref = unsafe { &*seg };
            // RMW atomicity hands each producer a unique slot index.
            let i = seg_ref.enq.fetch_add(1, Ordering::AcqRel) as usize;
            if i < SEG_CAP {
                // Release publishes the boxed task; pairs with the
                // consumer's Acquire spin on this slot.
                seg_ref.slots[i].store(ptr, Ordering::Release);
                return true;
            }
            self.advance_enq(seg);
        }
    }

    /// Installs (or discovers) the successor of a full segment and swings
    /// `enq_seg` forward. Losing either race is fine — someone advanced.
    fn advance_enq(&self, seg: *mut Segment<T>) {
        // SAFETY: segments live until Drop; `seg` came from the chain.
        let seg_ref = unsafe { &*seg };
        let mut next = seg_ref.next.load(Ordering::Acquire);
        if next.is_null() {
            let fresh = Box::into_raw(Segment::boxed());
            // The Release side of the CAS publishes the fresh segment's
            // zeroed fields to every later Acquire reader of `next`.
            match seg_ref.next.compare_exchange(
                core::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => next = fresh,
                Err(winner) => {
                    // SAFETY: `fresh` was never published.
                    drop(unsafe { Box::from_raw(fresh) });
                    next = winner;
                }
            }
        }
        let _ = self
            .enq_seg
            .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Dequeues an item, or `None` when the queue is (momentarily) empty.
    /// An empty poll performs no RMW.
    pub fn pop(&self) -> Option<T> {
        loop {
            let seg = self.deq_seg.load(Ordering::Acquire);
            // SAFETY: segments live until Drop.
            let seg_ref = unsafe { &*seg };
            let deq = seg_ref.deq.load(Ordering::Acquire);
            if deq as usize >= SEG_CAP {
                // Segment fully consumed: walk past it (it stays linked for
                // Drop — no reclamation here).
                let next = seg_ref.next.load(Ordering::Acquire);
                if next.is_null() {
                    return None;
                }
                let _ =
                    self.deq_seg
                        .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire);
                continue;
            }
            let enq = (seg_ref.enq.load(Ordering::Acquire) as usize).min(SEG_CAP) as u32;
            if deq >= enq {
                return None;
            }
            // The CAS claims index `deq` exclusively — exactly-once
            // delivery hangs on this RMW, not on the loads above.
            if seg_ref
                .deq
                .compare_exchange_weak(deq, deq + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Index claimed exclusively; the producer that claimed it on
            // the enq side may still be a store away from publishing.
            let slot = &seg_ref.slots[deq as usize];
            let ptr = loop {
                let p = slot.load(Ordering::Acquire);
                if !p.is_null() {
                    break p;
                }
                busy_spin();
            };
            // Null marks the slot consumed so `Drop`'s sweep of the still-
            // linked chain does not double-free the task.
            slot.store(core::ptr::null_mut(), Ordering::Release);
            // SAFETY: exclusive claim; the pointer came from `push`'s Box.
            return Some(*unsafe { Box::from_raw(ptr) });
        }
    }

    /// Racy emptiness snapshot for the park validation re-scan: may
    /// spuriously report non-empty (harmless — one extra sweep), and any
    /// push ordered before the caller's announce is reliably seen.
    pub fn is_empty(&self) -> bool {
        let seg = self.deq_seg.load(Ordering::Acquire);
        // SAFETY: segments live until Drop.
        let seg_ref = unsafe { &*seg };
        let deq = seg_ref.deq.load(Ordering::Acquire) as usize;
        let enq = (seg_ref.enq.load(Ordering::Acquire) as usize).min(SEG_CAP);
        deq >= enq && seg_ref.next.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Exclusive access now: free every unconsumed task, then the chain.
        let mut seg = self.chain;
        while !seg.is_null() {
            // SAFETY: exclusive; chain pointers all came from Box::into_raw.
            let boxed = unsafe { Box::from_raw(seg) };
            for slot in &boxed.slots {
                let p = slot.load(Ordering::Relaxed);
                if !p.is_null() {
                    // SAFETY: exclusive access in Drop; an unconsumed slot
                    // still owns the box `push` leaked into it.
                    drop(unsafe { Box::from_raw(p) });
                }
            }
            seg = boxed.next.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicU64;
    use std::sync::Arc;

    fn task(counter: &Arc<AtomicU64>, value: u64) -> RootTask {
        let counter = counter.clone();
        RootTask {
            run: Box::new(move || {
                counter.fetch_add(value, Ordering::Relaxed);
            }),
        }
    }

    #[test]
    fn fifo_single_thread() {
        let q = Injector::new();
        let sum = Arc::new(AtomicU64::new(0));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        for i in 1..=5 {
            assert!(q.push(task(&sum, i)));
        }
        assert!(!q.is_empty());
        let mut seen = 0;
        while let Some(t) = q.pop() {
            (t.run)();
            seen += 1;
        }
        assert_eq!(seen, 5);
        assert_eq!(sum.load(Ordering::Relaxed), 15);
        assert!(q.is_empty());
    }

    #[test]
    fn crosses_segment_boundaries() {
        let q = Injector::new();
        let sum = Arc::new(AtomicU64::new(0));
        let n = SEG_CAP * 3 + 7;
        for _ in 0..n {
            assert!(q.push(task(&sum, 1)));
        }
        let mut seen = 0;
        while let Some(t) = q.pop() {
            (t.run)();
            seen += 1;
        }
        assert_eq!(seen, n);
        assert_eq!(sum.load(Ordering::Relaxed), n as u64);
        assert!(q.is_empty());
    }

    #[test]
    fn drop_frees_unconsumed_tasks() {
        // Leak-checked implicitly (miri/asan would flag it); here we assert
        // the drop glue of queued closures runs.
        struct Marker(Arc<AtomicU64>);
        impl Drop for Marker {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let q = Injector::new();
        for _ in 0..(SEG_CAP + 3) {
            let m = Marker(drops.clone());
            assert!(q.push(RootTask {
                run: Box::new(move || {
                    let _keep = &m;
                }),
            }));
        }
        drop(q);
        assert_eq!(drops.load(Ordering::Relaxed), (SEG_CAP + 3) as u64);
    }

    #[test]
    fn close_rejects_new_pushes_but_drains_landed_ones() {
        let q = Injector::new();
        let sum = Arc::new(AtomicU64::new(0));
        assert!(q.push(task(&sum, 7)));
        q.close();
        assert!(!q.push(task(&sum, 100)));
        // The pre-close submission still drains.
        let t = q.pop().expect("landed task survives close");
        (t.run)();
        assert_eq!(sum.load(Ordering::Relaxed), 7);
        assert!(q.pop().is_none());
        // The rejected task was dropped unrun.
        assert_eq!(sum.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn mpmc_stress_transfers_everything_once() {
        let q = Arc::new(Injector::new());
        let sum = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let producers = 4;
        let per_producer = 500;

        let push_threads: Vec<_> = (0..producers)
            .map(|_| {
                let q = q.clone();
                let sum = sum.clone();
                std::thread::spawn(move || {
                    for i in 1..=per_producer {
                        assert!(q.push(task(&sum, i)));
                    }
                })
            })
            .collect();
        let expected = producers * (per_producer * (per_producer + 1)) / 2;
        let total = producers * per_producer;
        let pop_threads: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                let popped = popped.clone();
                std::thread::spawn(move || {
                    while popped.load(Ordering::Relaxed) < total {
                        if let Some(t) = q.pop() {
                            (t.run)();
                            popped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for t in push_threads {
            t.join().unwrap();
        }
        for t in pop_threads {
            t.join().unwrap();
        }
        assert_eq!(popped.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), expected);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
