//! The idle engine: eventcount-style futex parking with targeted wakeups.
//!
//! The work-finding loop must not burn cores when the runtime is quiescent,
//! but the spawn hot path must also never pay a syscall (the paper's whole
//! point is a lock- and syscall-free fork/join fast path). The classic
//! resolution is an *eventcount*: sleepers announce themselves in shared
//! state cheap enough for producers to check with one relaxed load, and the
//! announce/park sequence is constructed so a concurrent producer either
//! sees the sleeper (and wakes it) or the sleeper sees the producer's work
//! (and aborts the park). This module implements that protocol on raw
//! futexes ([`nowa_context::sys::futex_wait`]) — no condvar, no lock.
//!
//! # Protocol
//!
//! One packed `AtomicU64` word holds `[epoch:32 | sleepers:32]`:
//!
//! * **Workers** descend spin → yield → park. Before parking they
//!   [`announce`](IdleState::announce) (slot → `WAITING`, mask bit set,
//!   sleeper count incremented with a `SeqCst` RMW — the heavy barrier),
//!   then *re-scan every work source*. Anything runnable ⇒
//!   [`cancel`](IdleState::cancel) and go steal it. Nothing ⇒
//!   [`park`](IdleState::park), which re-validates the epoch and then
//!   `futex_wait`s on the worker's private slot.
//! * **Producers** (spawn path) do one relaxed load of the sleeper count;
//!   only when sleepers exist does [`wake_one`](IdleState::wake_one) run:
//!   it bumps the epoch (`SeqCst` RMW — pairs with the announcer's barrier
//!   and invalidates any in-flight announce) and claims one parked worker
//!   via the mask, flipping its slot `WAITING → NOTIFIED` and issuing one
//!   `FUTEX_WAKE`.
//!
//! A worker between announce and park observes either the producer's epoch
//! bump (validation fails, park aborts) or the produced work itself in its
//! re-scan; a producer that misses a *concurrent* announce had its push
//! ordered before the announcer's re-scan by the two `SeqCst` RMWs. The one
//! remaining hole is inherent to the relaxed producer-side load (a producer
//! whose store is still in its store buffer can read a stale sleeper count
//! of 0 while the sleeper's re-scan also misses the not-yet-visible push);
//! it is closed belt-and-braces by the bounded park timeout
//! ([`IdleConfig::max_park`](crate::config::IdleConfig)): a parked worker
//! self-wakes after ~1 ms and re-scans. That bound is the *worst case* of a
//! vanishingly rare race, not the common-case latency the old 200 µs blind
//! self-wake imposed on every deep-idle wakeup.
//!
//! # Targeted wakes
//!
//! `wake_one` wakes exactly one worker (the old condvar `notify_all`
//! stampeded every sleeper at every root submission). Workers `< 64` are
//! claimed through a `parked_mask` bit (one CAS, no scan); beyond that the
//! waker falls back to scanning the slot array.

use crate::sync::{futex_wait, futex_wake, AtomicU32, AtomicU64, Ordering};

/// Slot states. `WAITING` is the futex-wait value; a waker moves the slot
/// to `NOTIFIED` *before* the `FUTEX_WAKE`, so a worker that wasn't asleep
/// yet sees the notification on its own and skips the kernel entirely.
const IDLE: u32 = 0;
const WAITING: u32 = 1;
const NOTIFIED: u32 = 2;

/// Width of the `parked_mask`; workers beyond it are woken via slot scan.
const MASK_BITS: usize = 64;

const EPOCH_SHIFT: u32 = 32;
const SLEEPERS_MASK: u64 = (1 << EPOCH_SHIFT) - 1;

/// One worker's park flag, padded so futex traffic on one slot never
/// bounces a neighbour's cache line.
#[repr(align(128))]
#[derive(Debug)]
pub(crate) struct ParkSlot {
    state: AtomicU32,
}

/// Per-runtime idle coordination state. See the module docs for the
/// protocol; all methods are lock-free except the two that intentionally
/// enter the kernel (`park` via `FUTEX_WAIT`, wakes via `FUTEX_WAKE`).
#[derive(Debug)]
pub struct IdleState {
    /// Packed `[epoch:32 | sleepers:32]`.
    word: AtomicU64,
    /// Bit `i` set ⇒ worker `i` (< [`MASK_BITS`]) is announced or parked.
    parked_mask: AtomicU64,
    /// One futex word per worker.
    slots: Box<[ParkSlot]>,
}

impl IdleState {
    /// Idle state for `workers` workers.
    pub fn new(workers: usize) -> IdleState {
        IdleState {
            word: AtomicU64::new(0),
            parked_mask: AtomicU64::new(0),
            slots: (0..workers)
                .map(|_| ParkSlot {
                    state: AtomicU32::new(IDLE),
                })
                .collect(),
        }
    }

    /// Current sleeper count — the producer-side hot-path load, hence
    /// `Relaxed` (see the module docs for why that is sound here).
    #[inline]
    pub fn sleepers(&self) -> u32 {
        (self.word.load(Ordering::Relaxed) & SLEEPERS_MASK) as u32
    }

    /// Current epoch.
    #[inline]
    pub fn epoch(&self) -> u32 {
        (self.word.load(Ordering::Acquire) >> EPOCH_SHIFT) as u32
    }

    /// Whether worker `index` is currently announced or parked. Racy by
    /// nature; used by the watchdog to classify parked workers as healthy.
    #[inline]
    pub fn is_parked(&self, index: usize) -> bool {
        self.slots[index].state.load(Ordering::Relaxed) != IDLE
    }

    /// Announces worker `index`'s intent to sleep and returns the epoch to
    /// validate against in [`park`](IdleState::park). The caller **must**
    /// re-scan all work sources after this call and either `cancel` or
    /// `park` — never abandon an announce.
    // lint: hot-path
    pub fn announce(&self, index: usize) -> u32 {
        self.slots[index].state.store(WAITING, Ordering::Relaxed);
        if index < MASK_BITS {
            self.parked_mask.fetch_or(1 << index, Ordering::AcqRel);
        }
        // The SeqCst RMW publishes the slot/mask stores with the sleeper
        // count and — paired with the wakers' SeqCst epoch bump — orders
        // this announce before the caller's validation re-scan.
        let w = self.word.fetch_add(1, Ordering::SeqCst);
        debug_assert!(
            (w & SLEEPERS_MASK) < self.slots.len() as u64,
            "more sleepers than workers"
        );
        (w >> EPOCH_SHIFT) as u32
    }

    /// Revokes an announce (the validation re-scan found work). Returns
    /// `true` when a targeted wake had already claimed this worker — the
    /// caller should pass the wake on ([`wake_one`](IdleState::wake_one))
    /// so the work that triggered it still gets a thief.
    // lint: hot-path
    pub fn cancel(&self, index: usize) -> bool {
        if index < MASK_BITS {
            self.parked_mask.fetch_and(!(1 << index), Ordering::AcqRel);
        }
        let w = self.word.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(w & SLEEPERS_MASK != 0, "idle sleeper count underflow");
        self.slots[index].state.swap(IDLE, Ordering::AcqRel) == NOTIFIED
    }

    /// Parks worker `index` until a targeted wake, the timeout, or a missed
    /// epoch. Must follow an [`announce`](IdleState::announce) that
    /// returned `epoch`; always departs (the announce is consumed).
    /// Returns `true` iff the park ended by a targeted wake — everything
    /// else counts as a spurious return for accounting purposes.
    ///
    /// `skip_wait` skips the kernel wait (chaos injection of a spurious
    /// wake) while keeping the announce/depart pairing intact.
    pub fn park(&self, index: usize, epoch: u32, timeout_ns: u64, skip_wait: bool) -> bool {
        let slot = &self.slots[index].state;
        // Epoch validation: a wake issued since our announce means new work
        // (or shutdown) — fall through to depart and re-scan instead of
        // sleeping through it.
        if !skip_wait && self.epoch() == epoch {
            let _ = futex_wait(slot, WAITING, Some(timeout_ns));
        }
        // Depart. A targeted wake claimed our mask bit already; on the
        // spurious paths we clear it ourselves.
        let woken = slot.swap(IDLE, Ordering::AcqRel) == NOTIFIED;
        if !woken && index < MASK_BITS {
            self.parked_mask.fetch_and(!(1 << index), Ordering::AcqRel);
        }
        let w = self.word.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(w & SLEEPERS_MASK != 0, "idle sleeper count underflow");
        woken
    }

    /// Wakes exactly one announced/parked worker, if any. Returns the index
    /// of the worker claimed. Always bumps the epoch first, so even when no
    /// sleeper is claimable yet, any worker between announce and park will
    /// fail its validation and re-scan.
    // lint: hot-path
    pub fn wake_one(&self) -> Option<usize> {
        // SeqCst: pairs with the announcer's RMW — the waker's prior work
        // publication is ordered before the sleeper scan below.
        self.word.fetch_add(1 << EPOCH_SHIFT, Ordering::SeqCst);
        loop {
            let mask = self.parked_mask.load(Ordering::Acquire);
            if mask == 0 {
                return self.wake_scan();
            }
            let idx = mask.trailing_zeros() as usize;
            if self
                .parked_mask
                .compare_exchange_weak(
                    mask,
                    mask & !(1 << idx),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            let slot = &self.slots[idx].state;
            if slot
                .compare_exchange(WAITING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // The worker may already be asleep in the kernel on the old
                // value; the wake is unconditional (one syscall, and only
                // on the path that found a sleeper).
                futex_wake(slot, 1);
                return Some(idx);
            }
            // The worker departed between our mask claim and the slot CAS
            // (cancel or timeout); try the next candidate.
        }
    }

    /// Mask-less fallback: claim any waiting worker `>= MASK_BITS` by slot
    /// scan (runtimes that wide are rare; correctness over elegance).
    fn wake_scan(&self) -> Option<usize> {
        for (i, s) in self.slots.iter().enumerate().skip(MASK_BITS) {
            if s.state
                .compare_exchange(WAITING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                futex_wake(&s.state, 1);
                return Some(i);
            }
        }
        None
    }

    /// Wakes every announced/parked worker (shutdown path).
    pub fn wake_all(&self) {
        self.word.fetch_add(1 << EPOCH_SHIFT, Ordering::SeqCst);
        let mut mask = self.parked_mask.swap(0, Ordering::AcqRel);
        while mask != 0 {
            let idx = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let slot = &self.slots[idx].state;
            if slot
                .compare_exchange(WAITING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                futex_wake(slot, 1);
            }
        }
        for s in self.slots.iter().skip(MASK_BITS) {
            if s.state
                .compare_exchange(WAITING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                futex_wake(&s.state, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn announce_cancel_pairs() {
        let idle = IdleState::new(4);
        assert_eq!(idle.sleepers(), 0);
        let e = idle.announce(2);
        assert_eq!(idle.sleepers(), 1);
        assert!(idle.is_parked(2));
        assert!(!idle.cancel(2), "no wake was issued");
        assert_eq!(idle.sleepers(), 0);
        assert!(!idle.is_parked(2));
        assert_eq!(idle.epoch(), e, "cancel does not bump the epoch");
    }

    #[test]
    fn wake_one_with_no_sleepers_only_bumps_epoch() {
        let idle = IdleState::new(4);
        let e = idle.epoch();
        assert_eq!(idle.wake_one(), None);
        assert_eq!(idle.epoch(), e + 1);
        assert_eq!(idle.sleepers(), 0);
    }

    #[test]
    fn epoch_validation_aborts_park() {
        let idle = IdleState::new(2);
        let epoch = idle.announce(0);
        idle.word.fetch_add(1 << EPOCH_SHIFT, Ordering::SeqCst); // epoch moved on
        let t0 = std::time::Instant::now();
        let woken = idle.park(0, epoch, 1_000_000_000, false);
        assert!(!woken);
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(500),
            "park must not sleep through a stale epoch"
        );
        assert_eq!(idle.sleepers(), 0, "park always departs");
    }

    #[test]
    fn skip_wait_departs_without_sleeping() {
        let idle = IdleState::new(2);
        let epoch = idle.announce(1);
        assert!(!idle.park(1, epoch, u64::MAX, true));
        assert_eq!(idle.sleepers(), 0);
    }

    #[test]
    fn targeted_wake_unparks_exactly_one() {
        let idle = Arc::new(IdleState::new(2));
        let woken_flag = Arc::new(AtomicBool::new(false));
        let t = {
            let idle = idle.clone();
            let woken_flag = woken_flag.clone();
            std::thread::spawn(move || {
                let epoch = idle.announce(0);
                let woken = idle.park(0, epoch, 5_000_000_000, false);
                woken_flag.store(woken, Ordering::SeqCst);
            })
        };
        // Wait until the sleeper is visible, then wake it.
        while idle.sleepers() == 0 {
            std::thread::yield_now();
        }
        // The sleeper may still be pre-futex; wake_one handles both.
        let claimed = loop {
            if let Some(i) = idle.wake_one() {
                break i;
            }
            std::thread::yield_now();
        };
        assert_eq!(claimed, 0);
        t.join().unwrap();
        assert!(woken_flag.load(Ordering::SeqCst), "park reports the wake");
        assert_eq!(idle.sleepers(), 0);
        assert_eq!(idle.wake_one(), None, "the wake was consumed");
    }

    #[test]
    fn cancel_reports_consumed_notify() {
        let idle = IdleState::new(2);
        let _ = idle.announce(0);
        assert_eq!(idle.wake_one(), Some(0));
        assert!(idle.cancel(0), "the claimed wake is surfaced to the caller");
        assert_eq!(idle.sleepers(), 0);
    }

    /// The underflow invariant: concurrent announce/cancel/park against a
    /// wake-hammering thread never drives the sleeper count below zero
    /// (the debug_asserts in cancel/park are the checked oracle; the final
    /// count must come back to exactly zero).
    #[test]
    fn sleeper_word_never_underflows_under_stress() {
        let workers = 4;
        let idle = Arc::new(IdleState::new(workers));
        let stop = Arc::new(AtomicBool::new(false));

        let waker = {
            let idle = idle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    idle.wake_one();
                }
            })
        };
        let sleepers: Vec<_> = (0..workers)
            .map(|i| {
                let idle = idle.clone();
                std::thread::spawn(move || {
                    for round in 0..2000 {
                        let epoch = idle.announce(i);
                        if round % 3 == 0 {
                            if idle.cancel(i) {
                                idle.wake_one();
                            }
                        } else {
                            // Short timed park; outcome irrelevant, the
                            // pairing discipline is what's under test.
                            idle.park(i, epoch, 10_000, round % 2 == 0);
                        }
                    }
                })
            })
            .collect();
        for t in sleepers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        waker.join().unwrap();
        assert_eq!(
            idle.sleepers(),
            0,
            "every announce was departed exactly once"
        );
        for i in 0..workers {
            assert!(!idle.is_parked(i));
        }
    }

    #[test]
    fn wake_all_unparks_everyone() {
        let n = 3;
        let idle = Arc::new(IdleState::new(n));
        let threads: Vec<_> = (0..n)
            .map(|i| {
                let idle = idle.clone();
                std::thread::spawn(move || {
                    let epoch = idle.announce(i);
                    idle.park(i, epoch, 5_000_000_000, false)
                })
            })
            .collect();
        while idle.sleepers() < n as u32 {
            std::thread::yield_now();
        }
        idle.wake_all();
        for t in threads {
            // Every park ends promptly; `woken` may be true or (rarely)
            // false if a worker was still pre-futex when the epoch moved.
            let _ = t.join().unwrap();
        }
        assert_eq!(idle.sleepers(), 0);
    }
}
