//! The runtime instance: worker threads, submission, shutdown.

use crate::sync::{AtomicBool, AtomicU64, Ordering};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nowa_context::{RawContext, StackError, StackPool, WorkerStackCache};
use parking_lot::{Condvar, Mutex};

use crate::cancel::{CancelCell, CancelReason, DeadlineQueue};
use crate::config::Config;
use crate::flavor::{self, Flavor};
use crate::idle::IdleState;
use crate::injector::Injector;
use crate::stats::StatsSnapshot;
use crate::worker::{current_worker, worker_main, RootTask, Shared, Worker};

/// The shared state the guard-page crash hook dumps trace data from. A
/// plain `fn()` hook cannot capture, so the most recent tracing-enabled
/// runtime registers itself here (best-effort diagnostics; last one wins).
#[cfg(feature = "trace")]
static CRASH_SHARED: Mutex<std::sync::Weak<Shared>> = Mutex::new(std::sync::Weak::new());

/// Crash hook installed with the guard-page handler: dumps the last trace
/// events of the dying process. Runs inside a signal handler — the process
/// is already doomed, so allocation/locking here is best-effort by design.
///
/// The flight recorder is dumped first: it is the always-available bounded
/// history (last N events per worker, exact ordering), whereas the trace
/// report only exists when full tracing was on and summarises rather than
/// replays.
#[cfg(feature = "trace")]
fn crash_trace_dump() {
    let shared = CRASH_SHARED.lock().upgrade();
    if let Some(shared) = shared {
        if let Some(rings) = shared.flight.as_deref() {
            eprintln!(
                "nowa: flight recorder at crash:\n{}",
                nowa_trace::flight::dump(rings)
            );
        }
        if let Some(buffers) = shared.trace.as_deref() {
            let report = nowa_trace::TraceReport::collect(buffers);
            eprintln!("nowa: trace report at crash:\n{}", report.summary_table());
        }
    }
}

/// A running Nowa runtime instance.
///
/// Spawns `config.workers` worker threads on creation; [`Runtime::run`]
/// submits a root task and blocks until it completes. Dropping the runtime
/// shuts the workers down.
///
/// ```
/// use nowa_runtime::{Config, Runtime};
///
/// let rt = Runtime::new(Config::with_workers(2)).unwrap();
/// let sum = rt.run(|| {
///     let (a, b) = nowa_runtime::api::join2(|| 1 + 2, || 3 + 4);
///     a + b
/// });
/// assert_eq!(sum, 10);
/// ```
pub struct Runtime {
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    /// Memoized shutdown outcome: makes [`Runtime::shutdown`] idempotent
    /// and lets `Drop` skip the work after an explicit call.
    done: Mutex<Option<Result<(), ShutdownError>>>,
}

/// Error constructing a runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// `workers` was zero.
    NoWorkers,
    /// Pre-filling the stack pool failed (e.g. out of memory). The runtime
    /// was not constructed; nothing aborts.
    StackPrefill(StackError),
    /// Installing the guard-page SIGSEGV handler failed.
    GuardHandler(i32),
    /// Creating the I/O reactor failed (errno from `epoll_create1`,
    /// `eventfd2`, or the kick-fd registration).
    Reactor(i32),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::NoWorkers => write!(f, "runtime needs at least one worker"),
            RuntimeError::StackPrefill(e) => write!(f, "stack pool prefill failed: {e}"),
            RuntimeError::GuardHandler(errno) => {
                write!(
                    f,
                    "installing the guard-page handler failed (errno {errno})"
                )
            }
            RuntimeError::Reactor(errno) => {
                write!(f, "creating the I/O reactor failed (errno {errno})")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A shutdown that did not complete cleanly within its timeout.
///
/// Partial success is reported faithfully: workers that exited but died by
/// panic are in `panicked`; workers still running at the deadline (a task
/// ignoring cancellation, or a scheduler bug) are in `stuck` and have been
/// detached, not killed — their threads may still be alive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownError {
    /// Thread names of workers still running when the timeout expired.
    pub stuck: Vec<String>,
    /// `(thread name, panic message)` for workers that exited by panic.
    pub panicked: Vec<(String, String)>,
}

impl core::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "runtime shutdown incomplete:")?;
        for name in &self.stuck {
            write!(f, " [{name}: still running at timeout]")?;
        }
        for (name, msg) in &self.panicked {
            write!(f, " [{name}: panicked: {msg}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShutdownError {}

/// Renders a worker's panic payload for [`ShutdownError::panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

struct Completion<R> {
    result: Mutex<Option<std::thread::Result<R>>>,
    cv: Condvar,
}

impl Runtime {
    /// Builds a runtime and starts its workers.
    ///
    /// The workers begin stealing immediately but have nothing to run
    /// until [`run`](Runtime::run) submits a root task. Construction can
    /// fail — zero workers, stack-pool prefill failure, or a rejected
    /// guard-page handler — and failure leaves no OS state behind.
    ///
    /// # Example
    ///
    /// ```
    /// use nowa_runtime::{Config, Runtime};
    ///
    /// let rt = Runtime::new(Config::with_workers(2)).unwrap();
    /// assert_eq!(rt.run(|| 6 * 7), 42);
    ///
    /// // Zero workers is rejected, not clamped.
    /// assert!(Runtime::new(Config::with_workers(0)).is_err());
    /// ```
    pub fn new(config: Config) -> Result<Runtime, RuntimeError> {
        if config.workers == 0 {
            return Err(RuntimeError::NoWorkers);
        }
        if config.guard_diagnostics {
            // Process-wide and idempotent; failure is surfaced, not fatal
            // to the OS state (nothing was installed on error).
            nowa_context::signal::install_guard_handler()
                .map_err(|e| RuntimeError::GuardHandler(e.0))?;
        }
        let pool = StackPool::new(config.stack_size, config.madvise, config.pool_stripes);
        pool.prefill(config.pool_prefill)
            .map_err(RuntimeError::StackPrefill)?;

        let mut owners = Vec::with_capacity(config.workers);
        let mut stealers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (w, s) = flavor::new_deque(config.flavor, config.deque_capacity, config.split);
            owners.push(w);
            stealers.push(s);
        }
        let stats = (0..config.workers).map(|_| Default::default()).collect();

        let shared = Arc::new(Shared {
            flavor: config.flavor,
            stealers: stealers.into_boxed_slice(),
            stats,
            injector: Injector::new(),
            idle: IdleState::new(config.workers),
            shutdown: AtomicBool::new(false),
            cancel_root: CancelCell::new(core::ptr::null()),
            active_roots: AtomicU64::new(0),
            deadlines: DeadlineQueue::default(),
            ready: Injector::new(),
            async_waiters: Default::default(),
            reactor: crate::reactor::Reactor::new().map_err(|e| RuntimeError::Reactor(e.0))?,
            pool: pool.clone(),
            #[cfg(feature = "trace")]
            trace: config.tracing.then(|| {
                (0..config.workers)
                    .map(|_| nowa_trace::TraceBuffer::new(config.trace_ring))
                    .collect()
            }),
            #[cfg(feature = "trace")]
            flight: config.flight.map(|capacity| {
                (0..config.workers)
                    .map(|_| nowa_trace::FlightRing::new(capacity))
                    .collect()
            }),
            #[cfg(feature = "chaos")]
            chaos: config.chaos.map(|c| {
                (0..config.workers)
                    .map(|i| crate::chaos::ChaosWorkerState::new(c.seed, i))
                    .collect()
            }),
            watchdog_reports: crate::sync::AtomicU64::new(0),
            config: config.clone(),
        });

        #[cfg(feature = "trace")]
        if (config.tracing || config.flight.is_some()) && config.guard_diagnostics {
            *CRASH_SHARED.lock() = Arc::downgrade(&shared);
            nowa_context::signal::set_crash_hook(crash_trace_dump);
        }

        // Always spawned: the thread drives region deadlines even when the
        // stall watchdog (`config.watchdog`) is off, and sleeps on the
        // deadline condvar when it has nothing to do.
        let watchdog = Some(crate::watchdog::spawn(shared.clone()));

        let threads = owners
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let worker = Box::new(Worker {
                    index,
                    deque,
                    shared: shared.clone(),
                    cache: WorkerStackCache::new(pool.clone(), config.stack_cache),
                    current_stack: None,
                    incoming_stack: None,
                    pending_recycle: None,
                    exit_ctx: RawContext::null(),
                    rng: 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1) | 1,
                    last_victim: usize::MAX,
                    cancel_scope: &shared.cancel_root,
                });
                std::thread::Builder::new()
                    .name(format!("nowa-worker-{index}"))
                    // Workers barely use their OS stack (all task execution
                    // happens on fiber stacks), but unwinding diagnostics do.
                    .stack_size(256 * 1024)
                    .spawn(move || worker_main(worker))
                    .expect("spawning worker thread")
            })
            .collect();

        Ok(Runtime {
            shared,
            threads: Mutex::new(threads),
            watchdog: Mutex::new(watchdog),
            done: Mutex::new(None),
        })
    }

    /// Convenience: default configuration with `workers` threads.
    pub fn with_workers(workers: usize) -> Result<Runtime, RuntimeError> {
        Runtime::new(Config::with_workers(workers))
    }

    /// The flavor this runtime was built with.
    pub fn flavor(&self) -> Flavor {
        self.shared.flavor
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.config.workers
    }

    /// Aggregated scheduler statistics since startup.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Stack-pool statistics `(global gets, global puts, mmaps)`.
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        self.shared.pool.stats().snapshot()
    }

    /// Stack-map attempts that failed so far (real `ENOMEM` or injected via
    /// the `chaos` feature) and were absorbed by the bounded-retry path.
    pub fn stack_map_failures(&self) -> u64 {
        self.shared.pool.stats().map_failures()
    }

    /// Workers currently announced to the idle engine (parked in a futex
    /// or in the final validation step before parking). Racy snapshot —
    /// useful for observability and for benchmarks that want to start
    /// from a fully-parked runtime.
    pub fn idle_workers(&self) -> usize {
        self.shared.idle.sleepers() as usize
    }

    /// Stall reports emitted by the watchdog since startup (0 when the
    /// watchdog is disabled or every worker kept making progress).
    pub fn watchdog_reports(&self) -> u64 {
        self.shared
            .watchdog_reports
            .load(crate::sync::Ordering::Relaxed)
    }

    /// Fault-injection counters (site visits and injections fired),
    /// aggregated over workers. `None` unless the runtime was configured
    /// with [`Config::chaos`].
    #[cfg(feature = "chaos")]
    pub fn chaos_stats(&self) -> Option<crate::chaos::ChaosSnapshot> {
        self.shared
            .chaos
            .as_deref()
            .map(crate::chaos::ChaosSnapshot::aggregate)
    }

    /// Drains the per-worker trace rings and merges everything recorded so
    /// far into a [`nowa_trace::TraceReport`]. `None` unless the runtime
    /// was configured with [`Config::tracing`]`(true)`.
    ///
    /// Draining consumes the buffered events (a second call reports only
    /// events recorded in between) but histograms are cumulative. Safe to
    /// call between [`Runtime::run`]s; calling it *during* a run yields a
    /// consistent prefix of each worker's stream.
    #[cfg(feature = "trace")]
    pub fn trace_report(&self) -> Option<nowa_trace::TraceReport> {
        self.shared
            .trace
            .as_deref()
            .map(nowa_trace::TraceReport::collect)
    }

    /// Formats a post-mortem dump of the flight recorder: the last moments
    /// of scheduler history across all workers, merged by timestamp. `None`
    /// unless the runtime was configured with [`Config::flight_recorder`].
    ///
    /// Non-destructive (the rings keep recording) and safe to call at any
    /// time, including while tasks are running.
    #[cfg(feature = "trace")]
    pub fn flight_dump(&self) -> Option<String> {
        self.shared.flight.as_deref().map(nowa_trace::flight::dump)
    }

    /// Builds a fresh metrics registry from the runtime's live counters:
    /// per-worker scheduler statistics (also aggregated process-wide),
    /// idle-engine counters, stack-pool activity, and watchdog reports.
    ///
    /// Pull-based: each call re-reads the relaxed counters — no background
    /// thread, no hot-path cost. Encode with
    /// [`nowa_trace::MetricsRegistry::render_prometheus`] /
    /// [`render_json`](nowa_trace::MetricsRegistry::render_json), or use
    /// the [`Runtime::metrics_text`] / [`Runtime::metrics_json`] shortcuts.
    #[cfg(feature = "trace")]
    pub fn metrics_registry(&self) -> nowa_trace::MetricsRegistry {
        use crate::stats::StatsSnapshot;
        let mut reg = nowa_trace::MetricsRegistry::new();
        reg.gauge(
            "nowa_workers",
            "Worker threads in this runtime.",
            self.workers() as f64,
        );
        reg.gauge_with(
            "nowa_build_info",
            "Runtime build information (value is always 1).",
            &[("flavor", format!("{:?}", self.flavor()))],
            1.0,
        );
        reg.gauge(
            "nowa_idle_workers",
            "Workers currently announced to the idle engine.",
            self.idle_workers() as f64,
        );
        reg.counter(
            "nowa_watchdog_reports_total",
            "Stall reports emitted by the watchdog.",
            self.watchdog_reports() as f64,
        );
        let (gets, puts, mmaps) = self.pool_stats();
        reg.counter(
            "nowa_stack_pool_gets_total",
            "Global stack-pool gets.",
            gets as f64,
        );
        reg.counter(
            "nowa_stack_pool_puts_total",
            "Global stack-pool puts.",
            puts as f64,
        );
        reg.counter(
            "nowa_stack_mmaps_total",
            "Stacks mapped from the OS.",
            mmaps as f64,
        );
        reg.counter(
            "nowa_stack_map_failures_total",
            "Stack-map attempts absorbed by the bounded-retry path.",
            self.stack_map_failures() as f64,
        );

        let s = self.stats();
        let totals: [(&str, &str, u64); 26] = [
            (
                "nowa_spawns_total",
                "Continuations offered to thieves.",
                s.spawns,
            ),
            (
                "nowa_unoffered_total",
                "Spawns elided (deque full).",
                s.unoffered,
            ),
            (
                "nowa_fast_pops_total",
                "Fast-path continuation pops.",
                s.fast_pops,
            ),
            ("nowa_steals_total", "Successful steals.", s.steals),
            (
                "nowa_steal_empty_total",
                "Steal attempts on empty deques.",
                s.steal_empty,
            ),
            (
                "nowa_steal_retry_total",
                "Steal attempts that lost a race.",
                s.steal_retry,
            ),
            (
                "nowa_own_takes_total",
                "Local takes by the work-finding loop.",
                s.own_takes,
            ),
            ("nowa_joins_total", "Child joins.", s.joins),
            (
                "nowa_syncs_inline_total",
                "Syncs satisfied without suspending.",
                s.syncs_inline,
            ),
            (
                "nowa_suspensions_total",
                "Syncs that suspended the frame.",
                s.suspensions,
            ),
            (
                "nowa_sync_resumes_total",
                "Suspended syncs resumed by joiners.",
                s.sync_resumes,
            ),
            (
                "nowa_cancels_total",
                "Cooperative checkpoints that raised cancellation.",
                s.cancels,
            ),
            (
                "nowa_aborts_total",
                "Suspended syncs resumed into a cancelled scope.",
                s.aborts,
            ),
            ("nowa_roots_total", "Root tasks executed.", s.roots),
            (
                "nowa_parks_total",
                "Futex parks entered by the idle engine.",
                s.parks,
            ),
            (
                "nowa_wakes_issued_total",
                "Targeted wakes issued.",
                s.wakes_issued,
            ),
            (
                "nowa_wakes_spurious_total",
                "Parks ended without a targeted wake.",
                s.wakes_spurious,
            ),
            (
                "nowa_parked_ns_total",
                "Nanoseconds spent parked.",
                s.parked_ns,
            ),
            (
                "nowa_promotions_total",
                "Private-to-public promotion batches (split deque).",
                s.promotions,
            ),
            (
                "nowa_promoted_items_total",
                "Items moved public by promotion batches.",
                s.promoted_items,
            ),
            (
                "nowa_private_pops_total",
                "Fast-path pops served by the private segment.",
                s.private_pops,
            ),
            (
                "nowa_async_parks_total",
                "block_on continuations parked behind a waker.",
                s.async_parks,
            ),
            (
                "nowa_async_resumes_total",
                "Parked async continuations resumed.",
                s.async_resumes,
            ),
            (
                "nowa_reactor_polls_total",
                "Reactor polls (epoll_wait + dispatch).",
                s.reactor_polls,
            ),
            (
                "nowa_reactor_events_total",
                "I/O readiness events dispatched.",
                s.reactor_events,
            ),
            (
                "nowa_timer_fires_total",
                "Timer-wheel entries fired.",
                s.timer_fires,
            ),
        ];
        for (name, help, value) in totals {
            reg.counter(name, help, value as f64);
        }
        reg.gauge(
            "nowa_fast_path_ratio",
            "Fraction of consumed continuations reclaimed on the fast path.",
            s.fast_path_ratio(),
        );
        reg.gauge(
            "nowa_steal_success_ratio",
            "Fraction of steal attempts that succeeded.",
            s.steal_success_ratio(),
        );
        reg.gauge(
            "nowa_targeted_wake_ratio",
            "Fraction of parks ended by a targeted wake.",
            s.targeted_wake_ratio(),
        );
        reg.gauge(
            "nowa_promotion_ratio",
            "Fraction of spawned continuations that ever became public.",
            s.promotion_ratio(),
        );

        for (i, w) in self.shared.stats.iter().enumerate() {
            let one = std::slice::from_ref(w);
            let per = StatsSnapshot::aggregate(one);
            let labels = [("worker", i.to_string())];
            reg.counter_with(
                "nowa_worker_spawns_total",
                "Continuations offered, per worker.",
                &labels,
                per.spawns as f64,
            );
            reg.counter_with(
                "nowa_worker_steals_total",
                "Successful steals, per worker.",
                &labels,
                per.steals as f64,
            );
            reg.counter_with(
                "nowa_worker_parks_total",
                "Futex parks, per worker.",
                &labels,
                per.parks as f64,
            );
        }
        reg
    }

    /// The live metrics in Prometheus text exposition format. See
    /// [`Runtime::metrics_registry`] for what is exported.
    #[cfg(feature = "trace")]
    pub fn metrics_text(&self) -> String {
        self.metrics_registry().render_prometheus()
    }

    /// The live metrics as JSON. See [`Runtime::metrics_registry`].
    #[cfg(feature = "trace")]
    pub fn metrics_json(&self) -> String {
        self.metrics_registry().render_json()
    }

    /// Runs `f` as a root task on the runtime and blocks until it finishes,
    /// returning its result. Panics in `f` (or any strand it spawns) are
    /// propagated to the caller.
    ///
    /// Must not be called from inside a task running on a runtime (no
    /// nested blocking — it would deadlock a worker); task code composes
    /// with [`crate::api::join2`] and friends instead.
    pub fn run<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        assert!(
            current_worker().is_null(),
            "Runtime::run must not be called from inside a task; use api::join2 / api::scope"
        );
        let completion = Arc::new(Completion {
            result: Mutex::new(None),
            cv: Condvar::new(),
        });

        {
            let completion = completion.clone();
            let shared = self.shared.clone();
            // Counted before the push so `shutdown`'s drain wait can never
            // observe zero while a submitted task is still in flight.
            // ordering: AcqRel — the decrement releases the task's writes
            // (the filled completion slot) to shutdown's Acquire drain load.
            self.shared.active_roots.fetch_add(1, Ordering::AcqRel);
            let task: Box<dyn FnOnce() + Send> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(f));
                *completion.result.lock() = Some(result);
                completion.cv.notify_all();
                // ordering: AcqRel — see the increment above.
                shared.active_roots.fetch_sub(1, Ordering::AcqRel);
            });
            // SAFETY: lifetime erasure of `f`'s borrows (and `R`). Sound
            // because this function blocks until the task has completed and
            // the completion slot has been consumed — the same argument as
            // `std::thread::scope`.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { core::mem::transmute(task) };
            if !self.shared.injector.push(RootTask { run: task }) {
                // ordering: AcqRel — undo of the pre-push increment.
                self.shared.active_roots.fetch_sub(1, Ordering::AcqRel);
                panic!("runtime is shut down");
            }
            // Root submission always wakes one worker: there is no spawner
            // on a worker thread to pick this up, so the eventcount is the
            // only thing standing between the task and a full `max_park`.
            if self.shared.idle.wake_one().is_none() {
                // Every sleeper may be the claimed reactor poller, which
                // the eventcount cannot see; kick it out of `epoll_wait`.
                self.shared.reactor.kick_if_claimed();
            }
        }

        let mut guard = completion.result.lock();
        while guard.is_none() {
            completion.cv.wait(&mut guard);
        }
        match guard.take().expect("completion filled") {
            Ok(result) => result,
            Err(payload) => {
                // A propagating task panic is exactly what the flight
                // recorder exists for: dump the final scheduler events
                // before the unwind leaves the runtime.
                #[cfg(feature = "trace")]
                if let Some(dump) = self.flight_dump() {
                    eprintln!("nowa: flight recorder at task panic:\n{dump}");
                }
                resume_unwind(payload)
            }
        }
    }

    /// Graceful shutdown: cancels in-flight work, refuses new submissions,
    /// and joins every runtime thread, all bounded by `timeout`.
    ///
    /// The sequence: the root cancellation scope is latched with
    /// [`CancelReason::Shutdown`] (every cooperative checkpoint in every
    /// in-flight task starts unwinding), the injector is closed (later
    /// [`run`](Runtime::run) calls panic with "runtime is shut down"),
    /// and the call waits for in-flight root tasks to drain before
    /// flipping the worker-exit flag and joining threads.
    ///
    /// `Ok(())` means full quiescence: no task running, every worker and
    /// the watchdog joined. Otherwise the [`ShutdownError`] enumerates
    /// workers that panicked and workers still stuck at the deadline
    /// (detached, not killed). Idempotent — the first outcome is memoized
    /// and returned to later callers, including the implicit one in `Drop`.
    pub fn shutdown(&self, timeout: Duration) -> Result<(), ShutdownError> {
        assert!(
            current_worker().is_null(),
            "Runtime::shutdown must not be called from inside a task"
        );
        let mut done = self.done.lock();
        if let Some(result) = &*done {
            return result.clone();
        }
        let deadline = Instant::now() + timeout;
        const POLL: Duration = Duration::from_micros(200);

        // Cancel before closing: a task observing the closed injector has
        // a cancelled ambient scope to unwind with.
        self.shared.cancel_root.cancel(CancelReason::Shutdown);
        self.shared.injector.close();
        // Parked workers hold no tasks; waking them here just accelerates
        // the exit-flag observation below. Running ones see the root latch
        // at their next checkpoint.
        self.shared.idle.wake_all();
        // Async strands parked behind wakers have no checkpoint to trip:
        // broadcast to every registered cell so their `block_on` loops
        // re-check the (now latched) scope chain and unwind, and kick the
        // reactor so a claimed poller re-scans instead of napping.
        self.shared.async_waiters.wake_all();
        self.shared.reactor.kick();

        // Drain: wait (bounded) for in-flight root tasks to finish their
        // cooperative unwind. Workers must keep scheduling during this
        // window — a suspended continuation still needs its joiners to run
        // so the abort-resume at the sync can happen.
        loop {
            // ordering: Acquire — pairs with the AcqRel decrement in the
            // completion closure; zero here means those tasks' effects
            // (filled completion slots) are visible.
            let drained = self.shared.active_roots.load(Ordering::Acquire) == 0;
            if drained || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(POLL);
        }

        // Quiesce: tell worker loops to exit, and wake everything that
        // could be sleeping — parked workers and the deadline watchdog.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.idle.wake_all();
        self.shared.reactor.kick();
        self.shared.deadlines.cv.notify_all();

        let mut error = ShutdownError::default();
        for t in self.threads.lock().drain(..) {
            let name = t
                .thread()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| "<unnamed>".to_owned());
            while !t.is_finished() && Instant::now() < deadline {
                std::thread::sleep(POLL);
            }
            if t.is_finished() {
                if let Err(payload) = t.join() {
                    error.panicked.push((name, panic_message(&*payload)));
                }
            } else {
                // Detach: joining would block past the caller's budget. The
                // thread stays alive (we cannot kill it), which is exactly
                // what `stuck` reports.
                error.stuck.push(name);
            }
        }
        if let Some(w) = self.watchdog.lock().take() {
            // The watchdog re-checks the exit flag on every condvar wakeup
            // and was notified above; its join is prompt.
            if let Err(payload) = w.join() {
                error
                    .panicked
                    .push(("nowa-watchdog".to_owned(), panic_message(&*payload)));
            }
        }

        let result = if error.stuck.is_empty() && error.panicked.is_empty() {
            Ok(())
        } else {
            // The fourth flight-drain leg: a shutdown timeout is a
            // post-mortem moment like a crash or a task panic — dump the
            // last scheduler events while the rings are still alive.
            #[cfg(feature = "trace")]
            if let Some(dump) = self.flight_dump() {
                eprintln!("nowa: flight recorder at shutdown timeout:\n{dump}");
            }
            Err(error)
        };
        *done = Some(result.clone());
        result
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Best-effort wrapper over the real shutdown path. A worker dying
        // by panic is a runtime bug — surfaced on stderr here because Drop
        // cannot return the typed error; call `shutdown` to receive it.
        if let Err(e) = self.shutdown(Duration::from_secs(10)) {
            eprintln!("nowa-runtime: {e}");
        }
    }
}
