//! Machine-context capture and switching.
//!
//! Three primitives carry the whole continuation-stealing machinery
//! (§III-B of the Nowa paper):
//!
//! * [`capture_and_run_on`] — capture the current continuation, then run a
//!   diverging body on a *different* stack. Used at **spawn** (capture the
//!   parent's continuation, run the child) and at a failed **explicit sync**
//!   (capture the sync continuation, go stealing). Returns — exactly once —
//!   when someone resumes the captured continuation.
//! * [`resume`] — abandon the current context and resume a captured one,
//!   delivering a payload word. Used by the fast path (continuation not
//!   stolen), by thieves, and by the last-joining child.
//! * [`switch`] — save the current continuation and resume another in one
//!   step (symmetric coroutine switch). Not needed by the scheduler's core
//!   but exposed for tests and for alternative runtimes.
//!
//! # Representation
//!
//! A captured context is a single stack pointer ([`RawContext`]): the
//! callee-saved registers and the resume address live on the context's own
//! stack, exactly where Fibril's `fibril_t` saves them. Resuming pops them
//! and returns into the captured call site, which observes the primitive
//! *returning* with the payload.
//!
//! # Why this is sound in Rust
//!
//! Unlike `setjmp`, no primitive here ever returns twice: the capture path
//! *diverges* into `body`, and the return path happens once, on resume. The
//! compiler sees ordinary `extern "C"` calls. Cross-thread resumption is
//! fenced by the work-stealing deque (release push / acquire steal) or the
//! join counter (`AcqRel`), which the runtime layer is responsible for.
//!
//! # Caveats imposed on callers
//!
//! * `body` must never return; it must eventually [`resume`] some context.
//! * Values live across a capture point may be touched by another OS thread
//!   after a steal; the public runtime API restricts them to `Send` data.
//! * Panics must not unwind through these frames; runtime bodies wrap user
//!   code in `catch_unwind`.

use core::ffi::c_void;

/// A captured continuation: the stack pointer under which the callee-saved
/// register set and resume address are spilled.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawContext(pub *mut c_void);

impl RawContext {
    /// A null context, useful as an initializer before capture.
    pub const fn null() -> RawContext {
        RawContext(core::ptr::null_mut())
    }

    /// True if this context has not been captured yet.
    pub fn is_null(&self) -> bool {
        self.0.is_null()
    }
}

/// The type of the diverging body run on the new stack by
/// [`capture_and_run_on`].
pub type Body = unsafe extern "C" fn(arg: *mut c_void) -> !;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;

    /// Captures the current continuation into `*ctx`, switches to
    /// `stack_top` and calls `body(arg)` there. Returns the resume payload
    /// when `*ctx` is resumed.
    ///
    /// # Safety
    /// `stack_top` must be the high end of a writable region large enough
    /// for `body`; `body` must never return; `*ctx` must be resumed at most
    /// once, and only after this call captured it (the deque push that
    /// publishes `ctx` must be ordered after the capture — the runtime
    /// performs the push *inside* `body`).
    #[unsafe(naked)]
    pub unsafe extern "C" fn capture_and_run_on(
        ctx: *mut RawContext,
        stack_top: *mut c_void,
        body: Body,
        arg: *mut c_void,
    ) -> *mut c_void {
        core::arch::naked_asm!(
            // Spill callee-saved registers below the return address.
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            // Publish the continuation: ctx->sp = rsp.
            "mov [rdi], rsp",
            // Move to the new stack (16-byte aligned for the ABI).
            "mov rsp, rsi",
            "and rsp, -16",
            "xor ebp, ebp",
            // body(arg) — never returns.
            "mov rdi, rcx",
            "call rdx",
            "ud2",
        )
    }

    /// Resumes `ctx`, making its capture site return `payload`. Never
    /// returns; the current stack is abandoned as-is.
    ///
    /// # Safety
    /// `ctx` must hold a context captured by [`capture_and_run_on`] or
    /// [`switch`] that has not been resumed before, and whose stack is
    /// still intact. Happens-before between the capturing and resuming
    /// threads must be established externally.
    #[unsafe(naked)]
    pub unsafe extern "C" fn resume(ctx: RawContext, payload: *mut c_void) -> ! {
        core::arch::naked_asm!(
            "mov rsp, rdi",
            "mov rax, rsi",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// Saves the current continuation into `*save` and resumes `target`
    /// with `payload`; returns (with the peer's payload) when `*save` is
    /// itself resumed.
    ///
    /// # Safety
    /// Same contract as [`capture_and_run_on`] + [`resume`] combined.
    #[unsafe(naked)]
    pub unsafe extern "C" fn switch(
        save: *mut RawContext,
        target: RawContext,
        payload: *mut c_void,
    ) -> *mut c_void {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, rsi",
            "mov rax, rdx",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }
}

#[cfg(target_arch = "aarch64")]
mod imp {
    use super::*;

    // AAPCS64 callee-saved: x19–x28, fp (x29), lr (x30), d8–d15.
    // Frame layout pushed on capture (20 × 8 = 160 bytes, 16-aligned):
    //   [sp+0]   x19 x20 x21 x22 x23 x24 x25 x26 x27 x28
    //   [sp+80]  fp lr
    //   [sp+96]  d8..d15
    //   resume address = saved lr.

    /// See the x86_64 documentation; identical contract.
    ///
    /// # Safety
    /// Same contract as the x86_64 twin: `stack_top` is the high end of a
    /// writable region large enough for `body`; `body` never returns;
    /// `*ctx` is resumed at most once, after this call captured it.
    #[unsafe(naked)]
    pub unsafe extern "C" fn capture_and_run_on(
        ctx: *mut RawContext,
        stack_top: *mut c_void,
        body: Body,
        arg: *mut c_void,
    ) -> *mut c_void {
        core::arch::naked_asm!(
            "sub sp, sp, #160",
            "stp x19, x20, [sp, #0]",
            "stp x21, x22, [sp, #16]",
            "stp x23, x24, [sp, #32]",
            "stp x25, x26, [sp, #48]",
            "stp x27, x28, [sp, #64]",
            "stp x29, x30, [sp, #80]",
            "stp d8, d9, [sp, #96]",
            "stp d10, d11, [sp, #112]",
            "stp d12, d13, [sp, #128]",
            "stp d14, d15, [sp, #144]",
            "mov x9, sp",
            "str x9, [x0]",
            // New stack, aligned.
            "and x9, x1, #-16",
            "mov sp, x9",
            "mov x29, xzr",
            "mov x30, xzr",
            "mov x0, x3",
            "br x2",
        )
    }

    /// See the x86_64 documentation; identical contract.
    ///
    /// # Safety
    /// Same contract as the x86_64 twin: `ctx` holds an unresumed captured
    /// context whose stack is intact; cross-thread happens-before is the
    /// caller's responsibility.
    #[unsafe(naked)]
    pub unsafe extern "C" fn resume(ctx: RawContext, payload: *mut c_void) -> ! {
        core::arch::naked_asm!(
            "mov x9, x0",
            "mov x0, x1",
            "mov sp, x9",
            "ldp x19, x20, [sp, #0]",
            "ldp x21, x22, [sp, #16]",
            "ldp x23, x24, [sp, #32]",
            "ldp x25, x26, [sp, #48]",
            "ldp x27, x28, [sp, #64]",
            "ldp x29, x30, [sp, #80]",
            "ldp d8, d9, [sp, #96]",
            "ldp d10, d11, [sp, #112]",
            "ldp d12, d13, [sp, #128]",
            "ldp d14, d15, [sp, #144]",
            "add sp, sp, #160",
            "ret",
        )
    }

    /// See the x86_64 documentation; identical contract.
    ///
    /// # Safety
    /// Same contract as the x86_64 twin ([`capture_and_run_on`] +
    /// [`resume`] combined).
    #[unsafe(naked)]
    pub unsafe extern "C" fn switch(
        save: *mut RawContext,
        target: RawContext,
        payload: *mut c_void,
    ) -> *mut c_void {
        core::arch::naked_asm!(
            "sub sp, sp, #160",
            "stp x19, x20, [sp, #0]",
            "stp x21, x22, [sp, #16]",
            "stp x23, x24, [sp, #32]",
            "stp x25, x26, [sp, #48]",
            "stp x27, x28, [sp, #64]",
            "stp x29, x30, [sp, #80]",
            "stp d8, d9, [sp, #96]",
            "stp d10, d11, [sp, #112]",
            "stp d12, d13, [sp, #128]",
            "stp d14, d15, [sp, #144]",
            "mov x9, sp",
            "str x9, [x0]",
            "mov x0, x2",
            "mov sp, x1",
            "ldp x19, x20, [sp, #0]",
            "ldp x21, x22, [sp, #16]",
            "ldp x23, x24, [sp, #32]",
            "ldp x25, x26, [sp, #48]",
            "ldp x27, x28, [sp, #64]",
            "ldp x29, x30, [sp, #80]",
            "ldp d8, d9, [sp, #96]",
            "ldp d10, d11, [sp, #112]",
            "ldp d12, d13, [sp, #128]",
            "ldp d14, d15, [sp, #144]",
            "add sp, sp, #160",
            "ret",
        )
    }
}

pub use imp::{capture_and_run_on, resume, switch};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Stack;

    /// Body that immediately resumes the captured parent with payload 7.
    // SAFETY: callers pass `arg` pointing at the `RawContext` they captured.
    unsafe extern "C" fn bounce_back(arg: *mut c_void) -> ! {
        let ctx = unsafe { *(arg as *mut RawContext) };
        unsafe { resume(ctx, 7usize as *mut c_void) }
    }

    #[test]
    fn capture_resume_round_trip() {
        let stack = Stack::map(64 * 1024).unwrap();
        let mut ctx = RawContext::null();
        // SAFETY: fresh mapped stack; `bounce_back` diverges into `resume`
        // and resumes `ctx` exactly once.
        let payload = unsafe {
            capture_and_run_on(
                &mut ctx,
                stack.top(),
                bounce_back,
                &mut ctx as *mut RawContext as *mut c_void,
            )
        };
        assert_eq!(payload as usize, 7);
    }

    struct PingPong {
        main: RawContext,
        coro: RawContext,
        trace: Vec<u32>,
    }

    // SAFETY: callers pass `arg` pointing at a live `PingPong` owned by the
    // main context for the whole test.
    unsafe extern "C" fn pingpong_body(arg: *mut c_void) -> ! {
        let state = unsafe { &mut *(arg as *mut PingPong) };
        state.trace.push(1);
        // Switch back to main; main later switches to us again.
        let _ = unsafe { switch(&mut state.coro, state.main, core::ptr::null_mut()) };
        state.trace.push(3);
        let main = state.main;
        unsafe { resume(main, core::ptr::null_mut()) }
    }

    #[test]
    fn symmetric_switch_ping_pong() {
        let stack = Stack::map(64 * 1024).unwrap();
        let mut state = PingPong {
            main: RawContext::null(),
            coro: RawContext::null(),
            trace: Vec::new(),
        };
        // SAFETY: fresh stack; the body switches back to `main` exactly once
        // before this call returns.
        unsafe {
            // First entry: runs body until it switches back.
            capture_and_run_on(
                &mut state.main,
                stack.top(),
                pingpong_body,
                &mut state as *mut PingPong as *mut c_void,
            );
        }
        state.trace.push(2);
        // SAFETY: `state.coro` was captured by the body's switch and is
        // resumed exactly once here.
        unsafe {
            // Re-enter the coroutine; it finishes and resumes us.
            switch(&mut state.main, state.coro, core::ptr::null_mut());
        }
        assert_eq!(state.trace, vec![1, 2, 3]);
    }

    struct DeepState {
        parent: RawContext,
        depth: u64,
    }

    // SAFETY: callers pass `arg` pointing at a live `DeepState`.
    unsafe extern "C" fn deep_body(arg: *mut c_void) -> ! {
        let state = unsafe { &mut *(arg as *mut DeepState) };
        // Burn real stack to prove the new stack is actually in use.
        let sum = recurse(state.depth);
        let parent = state.parent;
        unsafe { resume(parent, sum as *mut c_void) }
    }

    #[inline(never)]
    fn recurse(n: u64) -> u64 {
        let mut pad = [0u64; 16];
        pad[0] = n;
        if n == 0 {
            return 0;
        }
        pad[0] + recurse(n - 1) + std::hint::black_box(pad[15])
    }

    #[test]
    fn body_uses_the_new_stack() {
        let stack = Stack::map(256 * 1024).unwrap();
        let mut state = DeepState {
            parent: RawContext::null(),
            depth: 500,
        };
        // SAFETY: 256 KiB stack covers the depth-500 recursion; `deep_body`
        // diverges into `resume(parent)`.
        let payload = unsafe {
            capture_and_run_on(
                &mut state.parent,
                stack.top(),
                deep_body,
                &mut state as *mut DeepState as *mut c_void,
            )
        };
        assert_eq!(payload as usize as u64, 500 * 501 / 2);
    }

    /// A continuation captured on one OS thread may be resumed by another —
    /// this happens on every steal. The coroutine body runs its first half
    /// on the main thread and its second half on a spawned thread, and the
    /// frame locals must survive the migration.
    #[test]
    fn cross_thread_resume() {
        struct Shared {
            main: RawContext,
            coro: RawContext,
            t2: RawContext,
            value: u64,
        }

        // SAFETY: callers pass `arg` pointing at a `Shared` that outlives
        // both halves of the coroutine (the test joins before dropping it).
        unsafe extern "C" fn body(arg: *mut c_void) -> ! {
            let shared = unsafe { &mut *(arg as *mut Shared) };
            let local = 40u64; // lives in the coroutine frame across threads
            let payload = unsafe { switch(&mut shared.coro, shared.main, core::ptr::null_mut()) };
            // ---- resumed here, by a different OS thread ----
            shared.value = local + payload as usize as u64;
            let t2 = shared.t2;
            unsafe { resume(t2, core::ptr::null_mut()) }
        }

        let stack = Stack::map(64 * 1024).unwrap();
        let mut shared = Shared {
            main: RawContext::null(),
            coro: RawContext::null(),
            t2: RawContext::null(),
            value: 0,
        };
        // SAFETY: fresh stack; `body` switches back to `main` once, then
        // later (on the second thread) diverges into `resume(t2)`.
        unsafe {
            capture_and_run_on(
                &mut shared.main,
                stack.top(),
                body,
                &mut shared as *mut Shared as *mut c_void,
            );
        }
        // The coroutine is suspended; hand its continuation to a new thread.
        let addr = &mut shared as *mut Shared as usize;
        std::thread::spawn(move || {
            // SAFETY: `shared` outlives the spawned thread (joined below).
            let shared = unsafe { &mut *(addr as *mut Shared) };
            // Switch into the coroutine; it resumes `t2` when done, which
            // makes this switch return and lets the thread exit cleanly on
            // its own stack.
            // SAFETY: `coro` is suspended and resumed exactly once, here.
            unsafe { switch(&mut shared.t2, shared.coro, 2usize as *mut c_void) };
        })
        .join()
        .unwrap();
        assert_eq!(shared.value, 42);
    }
}
