//! Fiber stacks: guarded anonymous mappings with optional `madvise` release.
//!
//! Each stack is one `mmap` region: a `PROT_NONE` guard page at the low end
//! (stacks grow downward) followed by the usable area. The paper's
//! evaluation uses 1 MiB stacks and 4 KiB pages; those are the defaults.
//!
//! The `madvise` experiments (§V-B, Fig. 8 and Table II) are driven by
//! [`MadvisePolicy`]: when a stack is released while holding a suspended
//! frame above, or recycled into a pool, the runtime may tell the kernel
//! that the pages are unused — trading refault cost for resident-set size.

use core::ffi::c_void;

use crate::sys::{self, Advice, SysError, PAGE_SIZE};

/// How (and whether) unused stack space is returned to the kernel.
///
/// Reproduces the §V-B knob: Fibril/Nowa were adjusted to *not* unmap unused
/// stack space for the Fig. 7 comparison, and Fig. 8/Table II measure the
/// cost of turning it back on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MadvisePolicy {
    /// Never advise; pages stay resident (the Fig. 7 configuration).
    #[default]
    Keep,
    /// `MADV_FREE`: lazy reclaim (the Fig. 8 "w/ madvise()" configuration).
    Free,
    /// `MADV_DONTNEED`: immediate reclaim (Yang & Mellor-Crummey's original
    /// choice).
    DontNeed,
}

impl MadvisePolicy {
    /// Parses the policy names used by the harness CLI.
    pub fn parse(name: &str) -> Option<MadvisePolicy> {
        match name {
            "keep" => Some(MadvisePolicy::Keep),
            "free" => Some(MadvisePolicy::Free),
            "dontneed" => Some(MadvisePolicy::DontNeed),
            _ => None,
        }
    }

    fn advice(self) -> Option<Advice> {
        match self {
            MadvisePolicy::Keep => None,
            MadvisePolicy::Free => Some(Advice::Free),
            MadvisePolicy::DontNeed => Some(Advice::DontNeed),
        }
    }
}

/// Typed error for fallible stack allocation.
///
/// Carries enough context for the caller to decide between retrying,
/// degrading (shrink caches, reuse pooled stacks) and giving up. The raw
/// errno is preserved so transient (`EAGAIN`) and hard (`ENOMEM`) failures
/// stay distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// The anonymous mapping (or its guard-page `mprotect`) failed.
    Map {
        /// Usable bytes that were requested.
        usable: usize,
        /// Raw errno from the kernel.
        errno: i32,
    },
    /// Bounded retry with backpressure gave up.
    Exhausted {
        /// Map attempts made before giving up.
        attempts: u32,
        /// errno of the last failed attempt.
        errno: i32,
    },
}

impl core::fmt::Display for StackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StackError::Map { usable, errno } => {
                write!(
                    f,
                    "mapping a {usable}-byte fiber stack failed (errno {errno})"
                )
            }
            StackError::Exhausted { attempts, errno } => write!(
                f,
                "fiber stack allocation exhausted after {attempts} attempts (last errno {errno})"
            ),
        }
    }
}

impl std::error::Error for StackError {}

/// An owned fiber stack.
///
/// Dropping unmaps the region. Stacks are usually recycled through a
/// [`StackPool`](crate::pool::StackPool) instead of being dropped.
#[derive(Debug)]
pub struct Stack {
    /// Low end of the mapping (the guard page).
    base: *mut u8,
    /// Total mapping length including the guard page.
    len: usize,
}

// SAFETY: a `Stack` is just an owned mapping (base + len); nothing in it is
// thread-affine, and ownership transfer is exactly how continuations migrate
// between workers.
unsafe impl Send for Stack {}

impl Stack {
    /// Maps a stack whose *usable* size is at least `usable` bytes
    /// (rounded up to whole pages), plus one guard page.
    pub fn map(usable: usize) -> Result<Stack, SysError> {
        let usable = usable.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE;
        let len = usable + PAGE_SIZE;
        // SAFETY: fresh anonymous mapping with a length we computed; no
        // existing memory is affected.
        let base = unsafe {
            sys::mmap(
                len,
                sys::prot::READ | sys::prot::WRITE,
                sys::map::PRIVATE | sys::map::ANONYMOUS | sys::map::NORESERVE,
            )?
        } as *mut u8;
        // Low page becomes the guard: stacks grow downward into it on
        // overflow, faulting instead of corrupting a neighbour.
        // SAFETY: `base..base+PAGE_SIZE` is the low page of the mapping we
        // just created and nothing points into it yet.
        if let Err(e) = unsafe { sys::mprotect(base as *mut c_void, PAGE_SIZE, sys::prot::NONE) } {
            // SAFETY: unmapping the region we just mapped; it was never
            // published.
            unsafe {
                let _ = sys::munmap(base as *mut c_void, len);
            }
            return Err(e);
        }
        crate::signal::register_stack(base as usize, len);
        Ok(Stack { base, len })
    }

    /// Fallible variant of [`Stack::map`] with a typed error. Under the
    /// `chaos` feature this is also the `mmap`-failure injection point: an
    /// armed failure (see `crate::chaos`) is consumed here and surfaces as
    /// an `ENOMEM` [`StackError::Map`], indistinguishable from the real
    /// thing to the recovery paths above.
    pub fn try_map(usable: usize) -> Result<Stack, StackError> {
        #[cfg(feature = "chaos")]
        if crate::chaos::take_map_failure() {
            return Err(StackError::Map {
                usable,
                errno: 12, // ENOMEM
            });
        }
        Stack::map(usable).map_err(|e| StackError::Map { usable, errno: e.0 })
    }

    /// The high end of the usable area — the initial stack pointer.
    #[inline]
    pub fn top(&self) -> *mut c_void {
        // SAFETY: `base + len` is one-past-the-end of the owned mapping —
        // in bounds for pointer arithmetic.
        unsafe { self.base.add(self.len) as *mut c_void }
    }

    /// The low end of the usable area (just above the guard page).
    #[inline]
    pub fn usable_base(&self) -> *mut u8 {
        // SAFETY: the mapping is at least one page plus the guard page, so
        // `base + PAGE_SIZE` stays in bounds.
        unsafe { self.base.add(PAGE_SIZE) }
    }

    /// Usable bytes between guard page and top.
    #[inline]
    pub fn usable_len(&self) -> usize {
        self.len - PAGE_SIZE
    }

    /// True if `sp` points into this stack's usable area.
    pub fn contains(&self, sp: *mut c_void) -> bool {
        let sp = sp as usize;
        let lo = self.usable_base() as usize;
        let hi = self.top() as usize;
        lo <= sp && sp <= hi
    }

    /// Tells the kernel the *entire* usable area is unused (the stack holds
    /// no live frames). Used when recycling through a pool.
    pub fn release_all(&self, policy: MadvisePolicy) {
        if let Some(advice) = policy.advice() {
            // SAFETY: the range is the usable area of the owned mapping, and
            // the caller asserts no live frames occupy it.
            unsafe {
                let _ = sys::madvise(self.usable_base() as *mut c_void, self.usable_len(), advice);
            }
        }
    }

    /// Tells the kernel the area *below* `sp` is unused — the paper's
    /// practical cactus-stack solution applied to a suspended frame: the
    /// frames above `sp` stay resident, everything deeper is released.
    pub fn release_below(&self, sp: *mut c_void, policy: MadvisePolicy) {
        let Some(advice) = policy.advice() else {
            return;
        };
        let sp = sp as usize;
        let lo = self.usable_base() as usize;
        // Round down to a page boundary; the partial page holding `sp`
        // itself stays mapped.
        let hi = (sp / PAGE_SIZE) * PAGE_SIZE;
        if hi > lo {
            // SAFETY: `lo..hi` lies inside the owned mapping, strictly below
            // the page holding `sp`, so no live frame is touched.
            unsafe {
                let _ = sys::madvise(lo as *mut c_void, hi - lo, advice);
            }
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        crate::signal::unregister_stack(self.base as usize);
        // SAFETY: `Drop` has exclusive ownership of the mapping; nothing can
        // reference it afterwards.
        unsafe {
            let _ = sys::munmap(self.base as *mut c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_touch() {
        let stack = Stack::map(64 * 1024).unwrap();
        assert_eq!(stack.usable_len(), 64 * 1024);
        // SAFETY: writing within the freshly mapped usable area.
        unsafe {
            // Touch the whole usable area.
            core::ptr::write_bytes(stack.usable_base(), 0xAB, stack.usable_len());
        }
        assert!(stack.contains(stack.top()));
        assert!(stack.contains(stack.usable_base() as *mut c_void));
        assert!(!stack.contains((stack.usable_base() as usize - 1) as *mut c_void));
    }

    #[test]
    fn rounding_to_pages() {
        let stack = Stack::map(1).unwrap();
        assert_eq!(stack.usable_len(), PAGE_SIZE);
    }

    #[test]
    fn release_all_dontneed_zeroes() {
        let stack = Stack::map(16 * 1024).unwrap();
        // SAFETY: both accesses are single-byte reads/writes inside the
        // mapped usable area.
        unsafe { *stack.usable_base() = 9 };
        stack.release_all(MadvisePolicy::DontNeed);
        // SAFETY: as above; DONTNEED keeps the mapping readable.
        assert_eq!(unsafe { *stack.usable_base() }, 0);
    }

    #[test]
    fn release_below_keeps_upper_frames() {
        let stack = Stack::map(16 * 1024).unwrap();
        let top_word = (stack.top() as usize - 8) as *mut u64;
        // SAFETY: `top-8` and `usable_base` are in-bounds, aligned slots of
        // the mapped usable area.
        unsafe { *top_word = 0xDEAD_BEEF };
        // SAFETY: as above.
        unsafe { *stack.usable_base() = 7 };
        // Pretend a frame is suspended near the top; release everything
        // below an sp two pages under the top.
        let sp = (stack.top() as usize - 2 * PAGE_SIZE) as *mut c_void;
        stack.release_below(sp, MadvisePolicy::DontNeed);
        // SAFETY: reads of the same in-bounds slots; the mapping survives
        // madvise.
        assert_eq!(unsafe { *top_word }, 0xDEAD_BEEF, "upper frames intact");
        // SAFETY: as above.
        assert_eq!(unsafe { *stack.usable_base() }, 0, "lower pages reclaimed");
    }

    #[test]
    fn release_below_keep_policy_is_noop() {
        let stack = Stack::map(16 * 1024).unwrap();
        // SAFETY: in-bounds single-byte write inside the mapped area.
        unsafe { *stack.usable_base() = 7 };
        stack.release_below(stack.top(), MadvisePolicy::Keep);
        // SAFETY: as above; `Keep` touches nothing.
        assert_eq!(unsafe { *stack.usable_base() }, 7);
    }

    #[test]
    fn policy_parse() {
        assert_eq!(MadvisePolicy::parse("keep"), Some(MadvisePolicy::Keep));
        assert_eq!(MadvisePolicy::parse("free"), Some(MadvisePolicy::Free));
        assert_eq!(
            MadvisePolicy::parse("dontneed"),
            Some(MadvisePolicy::DontNeed)
        );
        assert_eq!(MadvisePolicy::parse("bogus"), None);
    }
}
