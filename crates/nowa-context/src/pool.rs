//! Stack recirculation: per-worker caches over a global pool.
//!
//! §V-A of the paper: *“Nowa and Fibril use small per worker buffers of
//! stacks and a global pool to recirculate stacks that changed ownership in
//! the course of work-stealing. When put under stress by many workers, this
//! single global pool can become a bottleneck”* (observed on `cholesky`).
//!
//! This module reproduces that design: [`WorkerStackCache`] is a bounded
//! LIFO owned by one worker; overflow and underflow go to the shared
//! [`StackPool`]. The pool keeps contention statistics so the bottleneck is
//! observable, and offers an optional striped mode (the paper's suggested
//! “improvements to the pool”) used as an ablation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stack::{MadvisePolicy, Stack, StackError};

/// Map attempts (each preceded by a full stripe sweep) before a stack
/// request gives up with [`StackError::Exhausted`]. Between attempts the
/// thread yields, giving other workers a chance to recycle a stack into the
/// pool — under genuine memory pressure a recycled stack is the only way
/// forward.
pub const MAP_RETRIES: u32 = 4;

/// Counters exposed by the global pool (all Relaxed; statistics only).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Stacks handed out by the global pool.
    pub global_gets: AtomicU64,
    /// Stacks returned to the global pool.
    pub global_puts: AtomicU64,
    /// Fresh `mmap`s because the pool was empty.
    pub maps: AtomicU64,
    /// Map attempts that failed (real `ENOMEM` or injected via `chaos`).
    pub map_failures: AtomicU64,
}

impl PoolStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as `(gets, puts, maps)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.global_gets.load(Ordering::Relaxed),
            self.global_puts.load(Ordering::Relaxed),
            self.maps.load(Ordering::Relaxed),
        )
    }

    /// Map attempts that failed so far (real or injected).
    pub fn map_failures(&self) -> u64 {
        self.map_failures.load(Ordering::Relaxed)
    }
}

/// The global stack pool shared by all workers of a runtime instance.
pub struct StackPool {
    /// One or more stripes; a single stripe reproduces the paper's
    /// bottleneck-prone design.
    stripes: Box<[Mutex<Vec<Stack>>]>,
    stack_size: usize,
    madvise: MadvisePolicy,
    stats: PoolStats,
    /// Round-robin-ish stripe selector.
    next: AtomicU64,
}

impl StackPool {
    /// Creates a pool producing stacks of `stack_size` usable bytes.
    ///
    /// `stripes = 1` is the paper's single global pool; more stripes is the
    /// contention-dampening variant evaluated as an ablation.
    pub fn new(stack_size: usize, madvise: MadvisePolicy, stripes: usize) -> Arc<StackPool> {
        let stripes = stripes.max(1);
        Arc::new(StackPool {
            stripes: (0..stripes).map(|_| Mutex::new(Vec::new())).collect(),
            stack_size,
            madvise,
            stats: PoolStats::default(),
            next: AtomicU64::new(0),
        })
    }

    /// The usable size of stacks produced by this pool.
    pub fn stack_size(&self) -> usize {
        self.stack_size
    }

    /// The madvise policy stacks are recycled under.
    pub fn madvise_policy(&self) -> MadvisePolicy {
        self.madvise
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    fn stripe(&self) -> &Mutex<Vec<Stack>> {
        let n = self.next.fetch_add(1, Ordering::Relaxed) as usize;
        &self.stripes[n % self.stripes.len()]
    }

    /// One stripe sweep: pops a pooled stack if any stripe has one.
    fn sweep(&self) -> Option<Stack> {
        // Probe every stripe starting at a rotating offset. A pooled stack
        // from *any* stripe beats a fresh map — this doubles as the
        // backpressure path when mapping fails.
        let start = self.next.fetch_add(1, Ordering::Relaxed) as usize;
        for i in 0..self.stripes.len() {
            let stripe = &self.stripes[(start + i) % self.stripes.len()];
            if let Some(stack) = stripe.lock().pop() {
                PoolStats::bump(&self.stats.global_gets);
                return Some(stack);
            }
        }
        None
    }

    /// Takes a stack from the pool, mapping a fresh one if empty; bounded
    /// retry instead of aborting.
    ///
    /// Each attempt sweeps every stripe and then maps; a map failure (real
    /// or injected) yields the thread and retries, so a stack recycled by
    /// another worker in the meantime satisfies the request. After
    /// [`MAP_RETRIES`] failed attempts the typed error is returned for the
    /// caller to degrade on.
    pub fn try_get(&self) -> Result<Stack, StackError> {
        let mut last_errno = 0;
        for attempt in 0..MAP_RETRIES {
            #[cfg(feature = "chaos")]
            if crate::chaos::take_map_failure() {
                // An injected failure consumes this attempt before the
                // stripes are even probed, exercising the retry path from
                // the very top.
                PoolStats::bump(&self.stats.map_failures);
                last_errno = 12; // ENOMEM
                std::thread::yield_now();
                continue;
            }
            if let Some(stack) = self.sweep() {
                return Ok(stack);
            }
            match Stack::try_map(self.stack_size) {
                Ok(stack) => {
                    PoolStats::bump(&self.stats.maps);
                    return Ok(stack);
                }
                Err(StackError::Map { errno, .. }) => {
                    PoolStats::bump(&self.stats.map_failures);
                    last_errno = errno;
                    if attempt + 1 < MAP_RETRIES {
                        // Give other workers a chance to recycle a stack.
                        std::thread::yield_now();
                    }
                }
                Err(e @ StackError::Exhausted { .. }) => return Err(e),
            }
        }
        Err(StackError::Exhausted {
            attempts: MAP_RETRIES,
            errno: last_errno,
        })
    }

    /// Takes a stack from the pool, mapping a fresh one if empty.
    ///
    /// Panics (with the [`StackError`] message) only after the bounded
    /// retry and backpressure of [`StackPool::try_get`] are exhausted.
    pub fn get(&self) -> Stack {
        self.try_get()
            .unwrap_or_else(|e| panic!("nowa: stack allocation failed: {e}"))
    }

    /// Returns a drained stack to the pool, applying the madvise policy.
    pub fn put(&self, stack: Stack) {
        stack.release_all(self.madvise);
        PoolStats::bump(&self.stats.global_puts);
        self.stripe().lock().push(stack);
    }

    /// Pre-populates the pool with `n` mapped stacks. Fails without side
    /// effects beyond the stacks already pooled; callers (e.g.
    /// `Runtime::new`) surface the error instead of aborting.
    pub fn prefill(&self, n: usize) -> Result<(), StackError> {
        for _ in 0..n {
            let stack = Stack::try_map(self.stack_size)?;
            self.stripe().lock().push(stack);
        }
        Ok(())
    }

    /// Number of stacks currently pooled (racy snapshot).
    pub fn pooled(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }
}

/// A worker-private bounded LIFO of stacks, backed by the global pool.
pub struct WorkerStackCache {
    pool: Arc<StackPool>,
    cache: Vec<Stack>,
    capacity: usize,
    /// Cache hits (no global pool traffic).
    pub hits: u64,
    /// Cache misses (had to go to the global pool).
    pub misses: u64,
    /// Times allocation pressure made this cache shed capacity.
    pub pressure_events: u64,
}

impl WorkerStackCache {
    /// Creates a cache holding at most `capacity` spare stacks.
    pub fn new(pool: Arc<StackPool>, capacity: usize) -> WorkerStackCache {
        WorkerStackCache {
            pool,
            cache: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
            pressure_events: 0,
        }
    }

    /// Takes a stack, preferring the private cache. Fallible: a pool-level
    /// exhaustion surfaces as the typed error instead of aborting.
    pub fn try_get(&mut self) -> Result<Stack, StackError> {
        if let Some(stack) = self.cache.pop() {
            self.hits += 1;
            return Ok(stack);
        }
        self.misses += 1;
        self.pool.try_get()
    }

    /// Reacts to allocation pressure: halves this cache's capacity and
    /// drains the hoarded stacks back to the global pool, where a starving
    /// worker on any stripe can pick them up.
    pub fn shed_pressure(&mut self) {
        self.pressure_events += 1;
        self.capacity = (self.capacity / 2).max(1);
        for stack in self.cache.drain(..) {
            self.pool.put(stack);
        }
    }

    /// Takes a stack, preferring the private cache.
    ///
    /// On pool exhaustion this degrades — sheds cache capacity, yields, and
    /// retries a few times (other workers' caches recycle through the pool
    /// in the meantime) — and only panics when the process is genuinely out
    /// of address space.
    pub fn get(&mut self) -> Stack {
        let mut error = match self.try_get() {
            Ok(stack) => return stack,
            Err(e) => e,
        };
        for _ in 0..3 {
            self.shed_pressure();
            std::thread::yield_now();
            match self.pool.try_get() {
                Ok(stack) => return stack,
                Err(e) => error = e,
            }
        }
        panic!("nowa: stack allocation failed: {error}");
    }

    /// Returns a drained stack, spilling to the global pool when full.
    ///
    /// No `madvise` happens on the cache path: recycling here is the
    /// per-spawn hot path, and the paper's practical cactus-stack solution
    /// only advises the kernel on frame *suspension* (handled by the
    /// runtime via [`Stack::release_below`]) and on global-pool recycling.
    pub fn put(&mut self, stack: Stack) {
        if self.cache.len() < self.capacity {
            self.cache.push(stack);
        } else {
            self.pool.put(stack);
        }
    }

    /// The shared pool backing this cache.
    pub fn pool(&self) -> &Arc<StackPool> {
        &self.pool
    }
}

impl Drop for WorkerStackCache {
    fn drop(&mut self) {
        // Return cached stacks so other workers (or the next runtime
        // instance sharing the pool) can reuse them.
        for stack in self.cache.drain(..) {
            self.pool.put(stack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        let a = pool.get();
        let a_top = a.top();
        pool.put(a);
        let b = pool.get();
        assert_eq!(b.top(), a_top, "same stack came back");
        let (gets, puts, maps) = pool.stats().snapshot();
        assert_eq!((gets, puts, maps), (1, 1, 1));
    }

    #[test]
    fn prefill_avoids_maps() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        pool.prefill(4).unwrap();
        assert_eq!(pool.pooled(), 4);
        let _s1 = pool.get();
        let _s2 = pool.get();
        let (_, _, maps) = pool.stats().snapshot();
        assert_eq!(maps, 0);
    }

    #[test]
    fn worker_cache_hits_before_pool() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        let mut cache = WorkerStackCache::new(pool.clone(), 2);
        let s = cache.get(); // miss -> pool -> map
        cache.put(s);
        let _s = cache.get(); // hit
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        let (gets, _, _) = pool.stats().snapshot();
        assert_eq!(gets, 0, "pool only saw the miss-map, not a get");
    }

    #[test]
    fn worker_cache_spills_to_pool() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        let mut cache = WorkerStackCache::new(pool.clone(), 1);
        let a = cache.get();
        let b = cache.get();
        cache.put(a); // cached
        cache.put(b); // spills
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn cache_drop_returns_stacks() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        {
            let mut cache = WorkerStackCache::new(pool.clone(), 4);
            let s = cache.get();
            cache.put(s);
            assert_eq!(pool.pooled(), 0);
        }
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn striped_pool_distributes() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 4);
        pool.prefill(8).unwrap();
        assert_eq!(pool.pooled(), 8);
        let stacks: Vec<_> = (0..8).map(|_| pool.get()).collect();
        let (_, _, maps) = pool.stats().snapshot();
        assert_eq!(maps, 0, "all gets served from stripes");
        for s in stacks {
            pool.put(s);
        }
        assert_eq!(pool.pooled(), 8);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn injected_map_failures_retry_then_succeed() {
        // Fewer armed failures than MAP_RETRIES: try_get must recover.
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        crate::chaos::reset();
        crate::chaos::arm_map_failures(MAP_RETRIES - 1);
        let stack = pool.try_get().expect("bounded retry recovers");
        drop(stack);
        assert_eq!(pool.stats().map_failures(), (MAP_RETRIES - 1) as u64);
        assert_eq!(crate::chaos::armed_map_failures(), 0);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn injected_exhaustion_is_typed_not_abort() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        crate::chaos::reset();
        crate::chaos::arm_map_failures(MAP_RETRIES);
        let err = pool.try_get().expect_err("all attempts consumed");
        assert_eq!(
            err,
            StackError::Exhausted {
                attempts: MAP_RETRIES,
                errno: 12,
            }
        );
        crate::chaos::reset();
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn cache_sheds_pressure_and_recovers_from_pool() {
        // The pool holds a recycled stack; mapping is "broken". get() must
        // degrade (shed the cache) and serve from the pool, not panic.
        let pool = StackPool::new(64 * 1024, MadvisePolicy::Keep, 1);
        pool.prefill(1).unwrap();
        let mut cache = WorkerStackCache::new(pool.clone(), 8);
        crate::chaos::reset();
        crate::chaos::arm_map_failures(MAP_RETRIES);
        let stack = cache.get();
        assert!(cache.pressure_events >= 1, "cache shed under pressure");
        drop(stack);
        crate::chaos::reset();
    }

    #[test]
    fn dontneed_policy_applied_on_put() {
        let pool = StackPool::new(64 * 1024, MadvisePolicy::DontNeed, 1);
        let stack = pool.get();
        // SAFETY: single-byte write inside the mapped usable area.
        unsafe { *stack.usable_base() = 5 };
        pool.put(stack);
        let stack = pool.get();
        // SAFETY: as above; DONTNEED keeps the mapping readable.
        assert_eq!(unsafe { *stack.usable_base() }, 0, "pages were reclaimed");
    }
}
