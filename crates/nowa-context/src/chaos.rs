//! Fault injection for the context layer (compiled only with the `chaos`
//! cargo feature).
//!
//! The only fault this layer can fake is a failing stack `mmap`. Failures
//! are *armed* per thread (the runtime's chaos driver arms on the worker
//! that will perform the map, keeping the injection sequence deterministic
//! per worker) and consumed by the next [`crate::stack::Stack::try_map`] or
//! [`crate::pool::StackPool::try_get`] attempt on that thread. A global
//! counter records how many injected failures were actually consumed, so
//! tests can assert that the recovery paths really ran.

use core::cell::Cell;
use core::sync::atomic::{AtomicU64, Ordering};

std::thread_local! {
    static ARMED: Cell<u32> = const { Cell::new(0) };
}

static CONSUMED: AtomicU64 = AtomicU64::new(0);

/// Arms `n` additional map failures on the calling thread. Each is consumed
/// by one subsequent map attempt on this thread.
pub fn arm_map_failures(n: u32) {
    ARMED.with(|a| a.set(a.get().saturating_add(n)));
}

/// Map failures currently armed on the calling thread.
pub fn armed_map_failures() -> u32 {
    ARMED.with(|a| a.get())
}

/// Disarms any pending map failures on the calling thread (test hygiene).
pub fn reset() {
    ARMED.with(|a| a.set(0));
}

/// Injected map failures consumed so far, across all threads since process
/// start. Monotonic; an end-to-end chaos test asserts this advanced.
pub fn consumed_map_failures() -> u64 {
    CONSUMED.load(Ordering::Relaxed)
}

/// Consumes one armed failure, if any. Called by the map paths.
pub(crate) fn take_map_failure() -> bool {
    ARMED.with(|a| {
        let n = a.get();
        if n == 0 {
            return false;
        }
        a.set(n - 1);
        CONSUMED.fetch_add(1, Ordering::Relaxed);
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_consume() {
        reset();
        assert!(!take_map_failure());
        arm_map_failures(2);
        assert_eq!(armed_map_failures(), 2);
        let before = consumed_map_failures();
        assert!(take_map_failure());
        assert!(take_map_failure());
        assert!(!take_map_failure());
        assert_eq!(consumed_map_failures(), before + 2);
    }
}
