//! Guard-page fault diagnostics: a SIGSEGV handler that recognises fiber
//! stack overflows and reports them before the process dies.
//!
//! Without this, a task recursing past its fiber stack dies as an anonymous
//! `SIGSEGV` — indistinguishable from memory corruption. The pieces:
//!
//! * a lock-free **registry** of mapped fiber stacks ([`register_stack`] /
//!   [`unregister_stack`], maintained by [`crate::stack::Stack`]);
//! * a process-wide **SIGSEGV handler** ([`install_guard_handler`]) that
//!   classifies the faulting address against the registry: a hit inside a
//!   guard page is reported with the worker label, the stack bounds, the
//!   faulting address, `sp` and `pc`, then the process dies with the default
//!   disposition. Faults that are *not* guard hits are chained to whatever
//!   handler was installed before (e.g. the Rust standard library's own
//!   stack-overflow reporter);
//! * a per-thread **alternate signal stack** ([`AltStack`]) — mandatory for
//!   worker threads, because at the moment of a stack overflow the faulting
//!   thread's stack pointer sits inside the guard page and the handler could
//!   not run on it;
//! * a **thread label** ([`set_thread_label`]) naming the worker in the
//!   report, and an optional **crash hook** ([`set_crash_hook`]) the runtime
//!   uses to drain its flight recorder (the bounded overwrite-oldest ring
//!   of recent scheduler events) and dump its last trace events.
//!
//! Everything on the fault path is async-signal-safe: the report is
//! formatted into a stack buffer and written with raw `write(2)`; the only
//! exception is the crash hook, which is documented as best-effort (the
//! process is already doomed when it runs).

use core::cell::Cell;
use core::ffi::c_void;
use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::sys::{self, SysError, PAGE_SIZE};

const SIGSEGV: i32 = 11;
const SA_SIGINFO: usize = 4;
const SA_ONSTACK: usize = 0x0800_0000;
const SA_RESTORER: usize = 0x0400_0000;
const SS_DISABLE: i32 = 2;
/// Kernel sigset size in bytes (Linux `_NSIG / 8`).
const SIGSET_SIZE: usize = 8;
/// Offset of `si_addr` in `siginfo_t` (identical on x86_64 and aarch64).
const SI_ADDR_OFFSET: usize = 16;

/// The kernel's `struct sigaction` as consumed by `rt_sigaction` (both
/// x86_64 and aarch64 lay it out as handler, flags, restorer, mask).
#[repr(C)]
#[derive(Clone, Copy)]
struct KernelSigaction {
    handler: usize,
    flags: usize,
    restorer: usize,
    mask: u64,
}

/// The kernel's `stack_t` for `sigaltstack`.
#[repr(C)]
struct StackT {
    ss_sp: *mut c_void,
    ss_flags: i32,
    ss_size: usize,
}

// The signal trampoline `rt_sigaction` needs with `SA_RESTORER`: the kernel
// returns *to* this code after the handler, and it must invoke
// `rt_sigreturn` (x86_64 nr 15, aarch64 nr 139) to restore the interrupted
// context. Written in global asm because it must not have a prologue.
#[cfg(target_arch = "x86_64")]
core::arch::global_asm!(
    ".global __nowa_rt_sigreturn",
    ".hidden __nowa_rt_sigreturn",
    "__nowa_rt_sigreturn:",
    "mov rax, 15",
    "syscall",
);

#[cfg(target_arch = "aarch64")]
core::arch::global_asm!(
    ".global __nowa_rt_sigreturn",
    ".hidden __nowa_rt_sigreturn",
    "__nowa_rt_sigreturn:",
    "mov x8, #139",
    "svc #0",
);

extern "C" {
    fn __nowa_rt_sigreturn() -> !;
}

// ---------------------------------------------------------------- registry

/// Capacity of the fiber-stack registry. A slot is one live mapped stack;
/// overflowing the registry only loses diagnostics, never correctness.
const MAX_STACKS: usize = 4096;
/// Sentinel marking a slot mid-registration.
const CLAIMED: usize = usize::MAX;

#[allow(clippy::declare_interior_mutable_const)]
static STACK_BASES: [AtomicUsize; MAX_STACKS] = [const { AtomicUsize::new(0) }; MAX_STACKS];
static STACK_LENS: [AtomicUsize; MAX_STACKS] = [const { AtomicUsize::new(0) }; MAX_STACKS];
static REGISTRY_OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// Records a mapped fiber stack (`base` = low end including the guard page,
/// `len` = total mapping length) so the fault handler can attribute hits.
/// Lock-free and wait-free in the common case; called by `Stack::map`.
pub fn register_stack(base: usize, len: usize) {
    for i in 0..MAX_STACKS {
        if STACK_BASES[i]
            .compare_exchange(0, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            STACK_LENS[i].store(len, Ordering::Relaxed);
            STACK_BASES[i].store(base, Ordering::Release);
            return;
        }
    }
    // Registry full: the stack works fine, it just cannot be diagnosed.
    REGISTRY_OVERFLOW.fetch_add(1, Ordering::Relaxed);
}

/// Removes a stack from the registry; called by `Stack`'s `Drop`.
pub fn unregister_stack(base: usize) {
    for slot in STACK_BASES.iter().take(MAX_STACKS) {
        if slot
            .compare_exchange(base, 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
    }
}

/// Number of currently registered stacks (racy; tests and introspection).
pub fn registered_stacks() -> usize {
    (0..MAX_STACKS)
        .filter(|&i| {
            let b = STACK_BASES[i].load(Ordering::Relaxed);
            b != 0 && b != CLAIMED
        })
        .count()
}

// ------------------------------------------------------- labels and hooks

std::thread_local! {
    static THREAD_LABEL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Labels the calling thread for fault reports (workers pass their index).
pub fn set_thread_label(label: usize) {
    THREAD_LABEL.with(|l| l.set(label));
}

/// The calling thread's label, `usize::MAX` when unlabelled.
pub fn thread_label() -> usize {
    THREAD_LABEL.with(|l| l.get())
}

static CRASH_HOOK: AtomicUsize = AtomicUsize::new(0);

/// Registers a hook run after the guard-page diagnostic has been written,
/// before the process dies.
///
/// The runtime uses this as the third leg of the flight-recorder drain
/// protocol (panic propagation and watchdog stall reports are the other
/// two): the hook snapshots each worker's flight ring — a lock-free read
/// that discards any slot the producer may still be overwriting — merges
/// the retained events by timestamp, and writes the dump to stderr.
///
/// **Best-effort**: the hook runs inside a
/// signal handler on an alternate stack, so it may allocate or lock only
/// because the process is beyond saving anyway — a deadlock here trades a
/// crash for a hang, so hooks should stay minimal.
pub fn set_crash_hook(hook: fn()) {
    CRASH_HOOK.store(hook as *const () as usize, Ordering::Release);
}

// -------------------------------------------------------------- alt stack

/// A per-thread alternate signal stack, installed with `sigaltstack`.
///
/// Worker threads must hold one for guard-page diagnostics to work: when a
/// fiber stack overflows, `sp` points into the guard page and the kernel
/// could not push a signal frame there — without `SA_ONSTACK` + an alt
/// stack the process dies before the handler runs.
pub struct AltStack {
    base: *mut u8,
    len: usize,
}

impl AltStack {
    /// Size of the alternate stack: generous for the handler plus a
    /// best-effort crash hook.
    pub const SIZE: usize = 64 * 1024;

    /// Maps and installs an alternate signal stack for the calling thread.
    pub fn install() -> Result<AltStack, SysError> {
        let len = AltStack::SIZE;
        // SAFETY: fresh anonymous mapping; nothing else is touched.
        let base = unsafe {
            sys::mmap(
                len,
                sys::prot::READ | sys::prot::WRITE,
                sys::map::PRIVATE | sys::map::ANONYMOUS,
            )?
        } as *mut u8;
        let ss = StackT {
            ss_sp: base as *mut c_void,
            ss_flags: 0,
            ss_size: len,
        };
        // SAFETY: `ss` is a fully initialised `StackT` on this stack; the
        // kernel copies it during the call.
        let installed = unsafe {
            sys::sigaltstack(&ss as *const StackT as *const c_void, core::ptr::null_mut())
        };
        match installed {
            Ok(()) => Ok(AltStack { base, len }),
            Err(e) => {
                // SAFETY: unmapping the mapping we just created; it was
                // never installed.
                unsafe {
                    let _ = sys::munmap(base as *mut c_void, len);
                }
                Err(e)
            }
        }
    }
}

impl Drop for AltStack {
    fn drop(&mut self) {
        let ss = StackT {
            ss_sp: core::ptr::null_mut(),
            ss_flags: SS_DISABLE,
            ss_size: 0,
        };
        // SAFETY: disabling the alt stack before unmapping it, so the
        // kernel never redirects a signal onto freed memory; `Drop` owns the
        // mapping exclusively.
        unsafe {
            let _ = sys::sigaltstack(&ss as *const StackT as *const c_void, core::ptr::null_mut());
            let _ = sys::munmap(self.base as *mut c_void, self.len);
        }
    }
}

// SAFETY: the alt stack is raw memory owned by the value; the kernel-side
// registration is per thread and re-done by each worker.
unsafe impl Send for AltStack {}

// ---------------------------------------------------------------- handler

static INSTALLED: AtomicBool = AtomicBool::new(false);
static OLD_HANDLER: AtomicUsize = AtomicUsize::new(0);
static OLD_FLAGS: AtomicUsize = AtomicUsize::new(0);
static OLD_RESTORER: AtomicUsize = AtomicUsize::new(0);
static OLD_MASK: AtomicU64 = AtomicU64::new(0);

/// Installs the process-wide guard-page SIGSEGV handler. Idempotent:
/// returns `Ok(true)` on first installation, `Ok(false)` when already
/// installed. The previously installed action (typically the Rust standard
/// library's stack-overflow reporter) is saved and chained to for faults
/// that are not fiber guard-page hits.
pub fn install_guard_handler() -> Result<bool, SysError> {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return Ok(false);
    }
    let new = KernelSigaction {
        handler: guard_handler as *const () as usize,
        flags: SA_SIGINFO | SA_ONSTACK | SA_RESTORER,
        restorer: __nowa_rt_sigreturn as *const () as usize,
        mask: 0,
    };
    let mut old = KernelSigaction {
        handler: 0,
        flags: 0,
        restorer: 0,
        mask: 0,
    };
    // SAFETY: `new` and `old` are fully initialised, properly sized
    // kernel-layout sigaction structs living on this stack.
    let result = unsafe {
        sys::rt_sigaction(
            SIGSEGV,
            &new as *const KernelSigaction as *const c_void,
            &mut old as *mut KernelSigaction as *mut c_void,
            SIGSET_SIZE,
        )
    };
    match result {
        Ok(()) => {
            OLD_HANDLER.store(old.handler, Ordering::Relaxed);
            OLD_FLAGS.store(old.flags, Ordering::Relaxed);
            OLD_RESTORER.store(old.restorer, Ordering::Relaxed);
            OLD_MASK.store(old.mask, Ordering::Relaxed);
            Ok(true)
        }
        Err(e) => {
            INSTALLED.store(false, Ordering::SeqCst);
            Err(e)
        }
    }
}

/// Reinstalls an action for `sig` from inside the handler (async-signal-
/// safe: one raw syscall).
///
/// # Safety
/// `act` must describe a valid handler/restorer pair (or SIG_DFL); the call
/// replaces the process-wide disposition for `sig`.
unsafe fn set_action(sig: i32, act: &KernelSigaction) {
    // SAFETY: `act` is a valid kernel-layout struct per the contract above;
    // passing a null old-action pointer is allowed.
    unsafe {
        let _ = sys::rt_sigaction(
            sig,
            act as *const KernelSigaction as *const c_void,
            core::ptr::null_mut(),
            SIGSET_SIZE,
        );
    }
}

/// `sp`/`pc` of the interrupted context, read from the raw `ucontext_t`.
///
/// x86_64: `uc_mcontext` starts at offset 40; `rsp`/`rip` are the 16th/17th
/// general registers (offsets 160/168). aarch64: `uc_mcontext` is 16-byte
/// aligned after the 128-byte `uc_sigmask` (offset 176); `sp`/`pc` follow
/// `fault_address` and `regs[0..31]` (offsets 432/440).
///
/// # Safety
/// `ctx` must be the `ucontext_t` pointer the kernel passed to an
/// `SA_SIGINFO` handler; the hard-coded offsets assume the Linux layout for
/// the current architecture.
unsafe fn fault_sp_pc(ctx: *const c_void) -> (usize, usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        let base = ctx.cast::<u8>();
        (
            base.add(160).cast::<usize>().read(),
            base.add(168).cast::<usize>().read(),
        )
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        let base = ctx.cast::<u8>();
        (
            base.add(432).cast::<usize>().read(),
            base.add(440).cast::<usize>().read(),
        )
    }
}

/// Fixed-size, allocation-free output buffer for the fault report.
struct Buf {
    data: [u8; 512],
    len: usize,
}

impl Buf {
    fn new() -> Buf {
        Buf {
            data: [0; 512],
            len: 0,
        }
    }

    fn push_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            if self.len < self.data.len() {
                self.data[self.len] = b;
                self.len += 1;
            }
        }
    }

    fn push_hex(&mut self, v: usize) {
        self.push_str("0x");
        let mut started = false;
        for shift in (0..usize::BITS / 4).rev() {
            let nibble = (v >> (shift * 4)) & 0xF;
            if nibble != 0 {
                started = true;
            }
            if started || shift == 0 {
                let digit = b"0123456789abcdef"[nibble];
                if self.len < self.data.len() {
                    self.data[self.len] = digit;
                    self.len += 1;
                }
            }
        }
    }

    fn push_dec(&mut self, v: usize) {
        let mut digits = [0u8; 20];
        let mut n = v;
        let mut i = digits.len();
        loop {
            i -= 1;
            digits[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        for &d in &digits[i..] {
            if self.len < self.data.len() {
                self.data[self.len] = d;
                self.len += 1;
            }
        }
    }

    fn as_bytes(&self) -> &[u8] {
        &self.data[..self.len]
    }
}

/// Formats and writes the overflow diagnostic to stderr. Async-signal-safe.
fn report_guard_hit(base: usize, len: usize, addr: usize, sp: usize, pc: usize) {
    let mut buf = Buf::new();
    buf.push_str("nowa: fiber stack overflow: guard page hit on worker ");
    let label = thread_label();
    if label == usize::MAX {
        buf.push_str("<unlabelled thread>");
    } else {
        buf.push_dec(label);
    }
    buf.push_str("\n  stack bounds: ");
    buf.push_hex(base + PAGE_SIZE);
    buf.push_str(" - ");
    buf.push_hex(base + len);
    buf.push_str(" (");
    buf.push_dec(len - PAGE_SIZE);
    buf.push_str(" usable bytes)\n  fault addr: ");
    buf.push_hex(addr);
    buf.push_str("  sp: ");
    buf.push_hex(sp);
    buf.push_str("  pc: ");
    buf.push_hex(pc);
    buf.push_str("\n  hint: raise Config::stack_size or shrink per-frame state\n");
    let _ = sys::write_raw(2, buf.as_bytes());
}

// SAFETY: invoked only by the kernel as an `SA_SIGINFO` SIGSEGV handler, so
// `info`/`ctx` are valid `siginfo_t`/`ucontext_t` pointers. The body is
// async-signal-safe: atomics, raw syscalls, and a stack buffer — no locks,
// no allocation.
unsafe extern "C" fn guard_handler(sig: i32, info: *mut c_void, ctx: *mut c_void) {
    unsafe {
        let addr = info.cast::<u8>().add(SI_ADDR_OFFSET).cast::<usize>().read();
        // Classify the fault against the registry.
        let mut hit: Option<(usize, usize)> = None;
        for i in 0..MAX_STACKS {
            let base = STACK_BASES[i].load(Ordering::Acquire);
            if base == 0 || base == CLAIMED {
                continue;
            }
            let len = STACK_LENS[i].load(Ordering::Relaxed);
            if addr >= base && addr < base + len {
                hit = Some((base, len));
                break;
            }
        }
        match hit {
            Some((base, len)) if addr < base + PAGE_SIZE => {
                // Guard page of a fiber stack: the overflow diagnostic.
                let (sp, pc) = fault_sp_pc(ctx);
                report_guard_hit(base, len, addr, sp, pc);
                let hook = CRASH_HOOK.load(Ordering::Acquire);
                if hook != 0 {
                    let hook: fn() = core::mem::transmute(hook);
                    hook();
                }
                // Die with the default disposition: returning re-executes
                // the faulting access, which the kernel now treats as fatal.
                set_action(
                    sig,
                    &KernelSigaction {
                        handler: 0, // SIG_DFL
                        flags: 0,
                        restorer: 0,
                        mask: 0,
                    },
                );
            }
            _ => {
                // Not ours: restore whoever was installed before us (e.g.
                // std's overflow reporter) and let the refault reach them.
                set_action(
                    sig,
                    &KernelSigaction {
                        handler: OLD_HANDLER.load(Ordering::Relaxed),
                        flags: OLD_FLAGS.load(Ordering::Relaxed),
                        restorer: OLD_RESTORER.load(Ordering::Relaxed),
                        mask: OLD_MASK.load(Ordering::Relaxed),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let before = registered_stacks();
        register_stack(0x1000_0000, 8 * PAGE_SIZE);
        assert_eq!(registered_stacks(), before + 1);
        unregister_stack(0x1000_0000);
        assert_eq!(registered_stacks(), before);
        // Unregistering something never registered is a no-op.
        unregister_stack(0xDEAD_0000);
    }

    #[test]
    fn thread_labels_are_per_thread() {
        set_thread_label(7);
        assert_eq!(thread_label(), 7);
        std::thread::spawn(|| assert_eq!(thread_label(), usize::MAX))
            .join()
            .unwrap();
        set_thread_label(usize::MAX);
    }

    #[test]
    fn buf_formatting() {
        let mut b = Buf::new();
        b.push_str("x=");
        b.push_hex(0xAB00CD);
        b.push_str(" n=");
        b.push_dec(1048576);
        b.push_dec(0);
        assert_eq!(b.as_bytes(), b"x=0xab00cd n=10485760");
    }

    #[test]
    fn buf_truncates_instead_of_overflowing() {
        let mut b = Buf::new();
        for _ in 0..100 {
            b.push_str("0123456789");
        }
        assert_eq!(b.as_bytes().len(), 512);
    }

    #[test]
    fn altstack_install_and_drop() {
        let t = std::thread::spawn(|| {
            let alt = AltStack::install().expect("sigaltstack");
            drop(alt);
        });
        t.join().unwrap();
    }

    #[test]
    fn handler_installation_is_idempotent() {
        // The first call either installs (true) or finds the handler already
        // installed by another test in this process (false); either way the
        // second call must observe it installed and do nothing.
        let _first = install_guard_handler().expect("rt_sigaction");
        let second = install_guard_handler().expect("rt_sigaction");
        assert!(!second, "second call must report already-installed");
    }
}
