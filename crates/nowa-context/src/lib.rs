//! Execution-context substrate for the Nowa concurrency platform.
//!
//! Everything the continuation-stealing scheduler needs from the machine and
//! the operating system, with no dependency on `libc`:
//!
//! * [`context`] — capture/resume/switch of machine contexts via hand-written
//!   assembly (x86_64 and aarch64 SysV).
//! * [`stack`] — guarded fiber stacks and the `madvise`-based practical
//!   cactus-stack solution the paper evaluates in §V-B.
//! * [`pool`] — per-worker stack caches over a global recirculation pool
//!   (the design whose bottleneck §V-A discusses).
//! * [`sys`] — the minimal raw Linux syscall layer underneath.

#![warn(missing_docs)]

pub mod context;
pub mod pool;
pub mod stack;
pub mod sys;

pub use context::{capture_and_run_on, resume, switch, RawContext};
pub use pool::{StackPool, WorkerStackCache};
pub use stack::{MadvisePolicy, Stack};
