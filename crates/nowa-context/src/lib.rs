//! Execution-context substrate for the Nowa concurrency platform.
//!
//! Everything the continuation-stealing scheduler needs from the machine and
//! the operating system, with no dependency on `libc`:
//!
//! * [`context`] — capture/resume/switch of machine contexts via hand-written
//!   assembly (x86_64 and aarch64 SysV).
//! * [`stack`] — guarded fiber stacks and the `madvise`-based practical
//!   cactus-stack solution the paper evaluates in §V-B.
//! * [`pool`] — per-worker stack caches over a global recirculation pool
//!   (the design whose bottleneck §V-A discusses).
//! * [`signal`] — guard-page fault diagnostics: a registry of fiber stacks
//!   plus a SIGSEGV handler that turns an anonymous overflow crash into a
//!   report naming the worker and the stack bounds.
//! * [`sys`] — the minimal raw Linux syscall layer underneath.
//!
//! With the `chaos` cargo feature, the `chaos` module adds a deterministic
//! `mmap`-failure injection point to the stack mapping path; without the
//! feature the fallible paths compile to the plain syscalls.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(feature = "chaos")]
pub mod chaos;
pub mod context;
pub mod pool;
pub mod signal;
pub mod stack;
pub mod sys;

pub use context::{capture_and_run_on, resume, switch, RawContext};
pub use pool::{StackPool, WorkerStackCache};
pub use stack::{MadvisePolicy, Stack, StackError};
