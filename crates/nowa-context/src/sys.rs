//! Minimal raw Linux syscall layer.
//!
//! The runtime needs exactly four kernel services: anonymous memory mappings
//! for fiber stacks (`mmap`/`munmap`/`mprotect`), the `madvise` advice the
//! paper's §V-B investigates, and CPU affinity for worker pinning. Rather
//! than pulling in `libc`, the calls are issued directly with the `syscall`
//! instruction (x86_64) / `svc 0` (aarch64); the ABI surface is tiny and
//! stable.

#![allow(clippy::missing_safety_doc)]

use core::ffi::c_void;

// Syscall numbers.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const MMAP: usize = 9;
    pub const MPROTECT: usize = 10;
    pub const MUNMAP: usize = 11;
    pub const RT_SIGACTION: usize = 13;
    pub const MADVISE: usize = 28;
    pub const SIGALTSTACK: usize = 131;
    pub const FUTEX: usize = 202;
    pub const SCHED_SETAFFINITY: usize = 203;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const MMAP: usize = 222;
    pub const MPROTECT: usize = 226;
    pub const MUNMAP: usize = 215;
    pub const RT_SIGACTION: usize = 134;
    pub const MADVISE: usize = 233;
    pub const SIGALTSTACK: usize = 132;
    pub const FUTEX: usize = 98;
    pub const SCHED_SETAFFINITY: usize = 122;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// `PROT_*` constants for [`mmap`]/[`mprotect`].
pub mod prot {
    /// Pages may not be accessed.
    pub const NONE: usize = 0;
    /// Pages may be read.
    pub const READ: usize = 1;
    /// Pages may be written.
    pub const WRITE: usize = 2;
}

/// `MAP_*` constants for [`mmap`].
pub mod map {
    /// Changes are private to the process.
    pub const PRIVATE: usize = 0x02;
    /// The mapping is not backed by any file.
    pub const ANONYMOUS: usize = 0x20;
    /// Do not reserve swap space; suitable for sparse stacks.
    pub const NORESERVE: usize = 0x4000;
    /// The mapping grows downward (stack semantics). Unused by default.
    pub const STACK: usize = 0x20000;
}

/// `MADV_*` advice values for [`madvise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// `MADV_DONTNEED`: free the backing pages immediately; the next touch
    /// refaults a zero page. The advice Yang & Mellor-Crummey's practical
    /// cactus-stack solution uses.
    DontNeed = 4,
    /// `MADV_FREE`: the kernel may lazily reclaim the pages; cheaper than
    /// `DONTNEED` but only by a small margin per the paper (§V-B).
    Free = 8,
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: a raw syscall instruction; the caller vouches for the
    // arguments per this function's contract.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
#[inline]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: as in the x86_64 twin.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

/// Error type carrying a raw negated errno.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysError(pub i32);

impl core::fmt::Display for SysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "syscall failed with errno {}", self.0)
    }
}

impl std::error::Error for SysError {}

#[inline]
fn check(ret: isize) -> Result<usize, SysError> {
    if (-4095..0).contains(&ret) {
        Err(SysError(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Maps `len` bytes of anonymous memory with the given protection.
pub unsafe fn mmap(len: usize, protection: usize, flags: usize) -> Result<*mut c_void, SysError> {
    let ret = unsafe { syscall6(nr::MMAP, 0, len, protection, flags, usize::MAX, 0) };
    check(ret).map(|addr| addr as *mut c_void)
}

/// Unmaps a region previously returned by [`mmap`].
pub unsafe fn munmap(addr: *mut c_void, len: usize) -> Result<(), SysError> {
    check(unsafe { syscall6(nr::MUNMAP, addr as usize, len, 0, 0, 0, 0) }).map(|_| ())
}

/// Changes the protection of a mapped region (used for guard pages).
pub unsafe fn mprotect(addr: *mut c_void, len: usize, protection: usize) -> Result<(), SysError> {
    check(unsafe { syscall6(nr::MPROTECT, addr as usize, len, protection, 0, 0, 0) }).map(|_| ())
}

/// Advises the kernel about a mapped region (the §V-B experiments).
pub unsafe fn madvise(addr: *mut c_void, len: usize, advice: Advice) -> Result<(), SysError> {
    check(unsafe { syscall6(nr::MADVISE, addr as usize, len, advice as usize, 0, 0, 0) })
        .map(|_| ())
}

/// Installs a signal action via raw `rt_sigaction`. `new`/`old` point at
/// kernel `sigaction` structs (see [`crate::signal`]); `sigsetsize` is the
/// kernel sigset size (8 on Linux).
pub unsafe fn rt_sigaction(
    signum: i32,
    new: *const c_void,
    old: *mut c_void,
    sigsetsize: usize,
) -> Result<(), SysError> {
    check(unsafe {
        syscall6(
            nr::RT_SIGACTION,
            signum as usize,
            new as usize,
            old as usize,
            sigsetsize,
            0,
            0,
        )
    })
    .map(|_| ())
}

/// Installs/queries the calling thread's alternate signal stack. `new`/`old`
/// point at kernel `stack_t` structs (see [`crate::signal`]).
pub unsafe fn sigaltstack(new: *const c_void, old: *mut c_void) -> Result<(), SysError> {
    check(unsafe { syscall6(nr::SIGALTSTACK, new as usize, old as usize, 0, 0, 0, 0) }).map(|_| ())
}

/// Raw `write(2)`. Async-signal-safe (no locks, no allocation); used by the
/// guard-page fault handler to emit its diagnostic. Short writes are not
/// retried — the caller is about to die anyway.
pub fn write_raw(fd: i32, buf: &[u8]) -> isize {
    // SAFETY: `write(2)` only reads `buf.len()` bytes from the valid slice;
    // no memory is mutated on our side.
    unsafe {
        syscall6(
            nr::WRITE,
            fd as usize,
            buf.as_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    }
}

/// `FUTEX_WAIT | FUTEX_PRIVATE_FLAG`.
const FUTEX_WAIT_PRIVATE: usize = 128;
/// `FUTEX_WAKE | FUTEX_PRIVATE_FLAG`.
const FUTEX_WAKE_PRIVATE: usize = 1 | 128;

/// Kernel `timespec` for the futex timeout.
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Outcome of a [`futex_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FutexWait {
    /// The thread slept and was woken by a [`futex_wake`].
    Woken,
    /// The word no longer held `expected` at wait time (`EAGAIN`) — the
    /// wake raced ahead of the sleep; no syscall-level sleep happened.
    NotExpected,
    /// The relative timeout elapsed (`ETIMEDOUT`).
    TimedOut,
    /// The wait was interrupted by a signal (`EINTR`); retry or revalidate.
    Interrupted,
}

/// `futex(FUTEX_WAIT_PRIVATE)`: blocks while `*addr == expected`, for at
/// most `timeout_ns` nanoseconds (`None` = forever). The caller must
/// revalidate its sleep condition on every return — all four outcomes,
/// including [`FutexWait::Woken`], permit spurious wakeups.
pub fn futex_wait(
    addr: &core::sync::atomic::AtomicU32,
    expected: u32,
    timeout_ns: Option<u64>,
) -> FutexWait {
    let ts = timeout_ns.map(|ns| Timespec {
        tv_sec: (ns / 1_000_000_000) as i64,
        tv_nsec: (ns % 1_000_000_000) as i64,
    });
    let ts_ptr = ts
        .as_ref()
        .map_or(core::ptr::null(), |t| t as *const Timespec);
    // SAFETY: `addr` is a live atomic word and `ts_ptr` is null or points
    // at a `Timespec` that outlives the call; FUTEX_WAIT only reads both.
    let ret = unsafe {
        syscall6(
            nr::FUTEX,
            addr.as_ptr() as usize,
            FUTEX_WAIT_PRIVATE,
            expected as usize,
            ts_ptr as usize,
            0,
            0,
        )
    };
    match check(ret) {
        Ok(_) => FutexWait::Woken,
        Err(SysError(11)) => FutexWait::NotExpected, // EAGAIN
        Err(SysError(110)) => FutexWait::TimedOut,   // ETIMEDOUT
        _ => FutexWait::Interrupted,                 // EINTR and anything exotic
    }
}

/// `futex(FUTEX_WAKE_PRIVATE)`: wakes up to `count` threads blocked in
/// [`futex_wait`] on `addr`. Returns the number of threads actually woken.
pub fn futex_wake(addr: &core::sync::atomic::AtomicU32, count: u32) -> usize {
    // SAFETY: FUTEX_WAKE dereferences nothing — the address is only a key
    // into the kernel's wait-queue hash.
    let ret = unsafe {
        syscall6(
            nr::FUTEX,
            addr.as_ptr() as usize,
            FUTEX_WAKE_PRIVATE,
            count as usize,
            0,
            0,
            0,
        )
    };
    check(ret).unwrap_or(0)
}

/// Pins the calling thread to the single CPU `cpu`.
pub fn pin_current_thread_to(cpu: usize) -> Result<(), SysError> {
    let mut mask = [0u64; 16]; // up to 1024 CPUs
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // pid 0 = calling thread.
    // SAFETY: the kernel reads `size_of_val(&mask)` bytes from the live
    // stack-allocated mask.
    let ret = unsafe {
        syscall6(
            nr::SCHED_SETAFFINITY,
            0,
            core::mem::size_of_val(&mask),
            mask.as_ptr() as usize,
            0,
            0,
            0,
        )
    };
    check(ret).map(|_| ())
}

/// `EPOLL_CTL_*` op codes and `EPOLL*` event bits for [`epoll_ctl`].
pub mod epoll {
    /// Register a new fd with the epoll instance.
    pub const CTL_ADD: i32 = 1;
    /// Deregister an fd.
    pub const CTL_DEL: i32 = 2;
    /// Change the interest set of a registered fd.
    pub const CTL_MOD: i32 = 3;
    /// The fd is readable.
    pub const IN: u32 = 0x001;
    /// The fd is writable.
    pub const OUT: u32 = 0x004;
    /// Error condition (always reported, need not be requested).
    pub const ERR: u32 = 0x008;
    /// Hang-up (always reported, need not be requested).
    pub const HUP: u32 = 0x010;
    /// Peer closed its writing half.
    pub const RDHUP: u32 = 0x2000;
}

/// One `struct epoll_event`. On x86_64 the kernel ABI packs the struct
/// (no padding between `events` and `data`); aarch64 uses the natural
/// 16-byte layout. The `cfg_attr` reproduces exactly what the kernel
/// expects on each architecture.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `epoll::*` event bits.
    pub events: u32,
    /// Caller-chosen cookie returned verbatim with the event.
    pub data: u64,
}

/// `epoll_create1(EPOLL_CLOEXEC)`: a fresh epoll instance.
pub fn epoll_create1() -> Result<i32, SysError> {
    const EPOLL_CLOEXEC: usize = 0o2000000;
    // SAFETY: epoll_create1 reads no caller memory.
    let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

/// `epoll_ctl(epfd, op, fd, event)`. `event` is ignored by the kernel for
/// [`epoll::CTL_DEL`] (pass anything).
pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: &EpollEvent) -> Result<(), SysError> {
    // SAFETY: the kernel reads one `EpollEvent` from the live reference
    // (and nothing for CTL_DEL).
    let ret = unsafe {
        syscall6(
            nr::EPOLL_CTL,
            epfd as usize,
            op as usize,
            fd as usize,
            event as *const EpollEvent as usize,
            0,
            0,
        )
    };
    check(ret).map(|_| ())
}

/// Outcome of an [`epoll_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpollWait {
    /// `n` events were written into the caller's buffer (possibly 0 on
    /// timeout). The caller must treat 0 as a spurious return and
    /// revalidate its sleep condition, exactly like [`FutexWait`].
    Ready(usize),
    /// The wait was interrupted by a signal (`EINTR`); retry or revalidate.
    Interrupted,
}

/// `epoll_pwait(epfd, events, timeout_ms, NULL)`: blocks until an event,
/// the timeout, or a signal. `timeout_ms` of `None` blocks forever; `Some(0)`
/// polls without blocking. A negative kernel timeout is never passed —
/// `None` maps to `-1` explicitly.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: Option<i32>) -> EpollWait {
    let timeout = timeout_ms.unwrap_or(-1).max(-1);
    // SAFETY: the kernel writes at most `events.len()` entries into the
    // live mutable slice; a null sigmask pointer means "don't touch the
    // signal mask" (plain epoll_wait semantics — epoll_pwait is used
    // because aarch64 has no epoll_wait syscall).
    let ret = unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout as usize,
            0,
            0,
        )
    };
    match check(ret) {
        Ok(n) => EpollWait::Ready(n),
        Err(_) => EpollWait::Interrupted, // EINTR and anything exotic
    }
}

/// `eventfd2(initval, EFD_CLOEXEC | EFD_NONBLOCK)`: the reactor's kick fd.
/// Non-blocking so a kick never stalls the kicker and a drain never stalls
/// the poller.
pub fn eventfd() -> Result<i32, SysError> {
    const EFD_CLOEXEC: usize = 0o2000000;
    const EFD_NONBLOCK: usize = 0o4000;
    // SAFETY: eventfd2 reads no caller memory.
    let ret = unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

/// Raw `read(2)` into `buf`. Returns the byte count, 0 at EOF, or the
/// negated-errno mapped into [`SysError`] (`EAGAIN` = 11 for an empty
/// non-blocking fd).
pub fn read_raw(fd: i32, buf: &mut [u8]) -> Result<usize, SysError> {
    // SAFETY: the kernel writes at most `buf.len()` bytes into the live
    // mutable slice.
    let ret = unsafe {
        syscall6(
            nr::READ,
            fd as usize,
            buf.as_mut_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    };
    check(ret)
}

/// `close(2)`. Errors are ignored by design: the only caller is reactor
/// teardown, where a failed close of an fd we own has no recovery.
pub fn close(fd: i32) {
    // SAFETY: close reads no caller memory.
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

/// The system page size. Linux/x86_64 and the common aarch64 configuration
/// use 4 KiB pages, which is also what the paper's evaluation used.
pub const PAGE_SIZE: usize = 4096;

/// Reads the current and peak resident set size (KiB) from
/// `/proc/self/status` (`VmRSS` / `VmHWM`). Used by the Table II experiment.
pub fn rss_kib() -> Option<(u64, u64)> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut rss = None;
    let mut hwm = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = rest.trim().trim_end_matches(" kB").trim().parse().ok();
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            hwm = rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    Some((rss?, hwm?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_munmap_round_trip() {
        // SAFETY: every access stays inside the fresh R/W mapping, unmapped
        // only at the end.
        unsafe {
            let len = 4 * PAGE_SIZE;
            let addr =
                mmap(len, prot::READ | prot::WRITE, map::PRIVATE | map::ANONYMOUS).expect("mmap");
            // Touch every page.
            let bytes = core::slice::from_raw_parts_mut(addr as *mut u8, len);
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = i as u8;
            }
            assert_eq!(bytes[PAGE_SIZE + 1], (PAGE_SIZE + 1) as u8);
            munmap(addr, len).expect("munmap");
        }
    }

    #[test]
    fn mprotect_guard_page() {
        // SAFETY: the write lands in the second page, which stays R/W after
        // the first page is protected.
        unsafe {
            let len = 2 * PAGE_SIZE;
            let addr =
                mmap(len, prot::READ | prot::WRITE, map::PRIVATE | map::ANONYMOUS).expect("mmap");
            mprotect(addr, PAGE_SIZE, prot::NONE).expect("mprotect");
            // The second page is still usable.
            *(addr as *mut u8).add(PAGE_SIZE) = 7;
            munmap(addr, len).expect("munmap");
        }
    }

    #[test]
    fn madvise_dontneed_zeroes_pages() {
        // SAFETY: accesses stay inside the fresh R/W mapping; DONTNEED keeps
        // it mapped (refaults as zero).
        unsafe {
            let len = 2 * PAGE_SIZE;
            let addr =
                mmap(len, prot::READ | prot::WRITE, map::PRIVATE | map::ANONYMOUS).expect("mmap");
            *(addr as *mut u8) = 42;
            madvise(addr, len, Advice::DontNeed).expect("madvise");
            // DONTNEED on anonymous memory refaults as zero.
            assert_eq!(*(addr as *const u8), 0);
            munmap(addr, len).expect("munmap");
        }
    }

    #[test]
    fn madvise_free_keeps_mapping_valid() {
        // SAFETY: accesses stay inside the fresh R/W mapping; MADV_FREE
        // keeps it mapped.
        unsafe {
            let len = 2 * PAGE_SIZE;
            let addr =
                mmap(len, prot::READ | prot::WRITE, map::PRIVATE | map::ANONYMOUS).expect("mmap");
            *(addr as *mut u8) = 42;
            madvise(addr, len, Advice::Free).expect("madvise");
            // MADV_FREE pages may retain data until reclaim; either value
            // is acceptable, the mapping just must not fault.
            let v = *(addr as *const u8);
            assert!(v == 0 || v == 42);
            munmap(addr, len).expect("munmap");
        }
    }

    #[test]
    fn bad_munmap_reports_errno() {
        // Unaligned address must fail with EINVAL (22).
        // SAFETY: the call is guaranteed to fail before touching any
        // mapping, and address 1 maps nothing anyway.
        let err = unsafe { munmap(core::ptr::without_provenance_mut(1), PAGE_SIZE) }.unwrap_err();
        assert_eq!(err.0, 22);
    }

    #[test]
    fn pin_to_cpu0_succeeds() {
        pin_current_thread_to(0).expect("cpu 0 always exists");
    }

    #[test]
    fn rss_is_reported() {
        let (rss, hwm) = rss_kib().expect("proc status parse");
        assert!(rss > 0);
        assert!(hwm >= rss);
    }

    #[test]
    fn futex_wait_value_mismatch_returns_immediately() {
        use core::sync::atomic::AtomicU32;
        let word = AtomicU32::new(7);
        assert_eq!(futex_wait(&word, 8, None), FutexWait::NotExpected);
    }

    #[test]
    fn futex_wait_times_out() {
        use core::sync::atomic::AtomicU32;
        let word = AtomicU32::new(1);
        let start = std::time::Instant::now();
        assert_eq!(
            futex_wait(&word, 1, Some(2_000_000)),
            FutexWait::TimedOut,
            "2ms relative timeout"
        );
        assert!(start.elapsed() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        // x86_64 packs the struct to 12 bytes; everywhere else it is the
        // natural 16. Getting this wrong corrupts every second event in a
        // multi-event wait, so pin it here.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(core::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(core::mem::size_of::<EpollEvent>(), 16);
    }

    #[test]
    fn epoll_reports_eventfd_readability() {
        let ep = epoll_create1().expect("epoll_create1");
        let efd = eventfd().expect("eventfd");
        let ev = EpollEvent {
            events: epoll::IN,
            data: 0x5EED,
        };
        epoll_ctl(ep, epoll::CTL_ADD, efd, &ev).expect("ctl add");

        // Nothing written yet: a zero-timeout wait returns no events.
        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_wait(ep, &mut buf, Some(0)), EpollWait::Ready(0));

        // An eventfd write makes it readable; the cookie comes back.
        assert_eq!(write_raw(efd, &1u64.to_ne_bytes()), 8);
        match epoll_wait(ep, &mut buf, Some(100)) {
            EpollWait::Ready(n) => {
                assert_eq!(n, 1);
                let (events, data) = (buf[0].events, buf[0].data);
                assert_ne!(events & epoll::IN, 0);
                assert_eq!(data, 0x5EED);
            }
            EpollWait::Interrupted => panic!("unexpected EINTR in test"),
        }

        // Draining resets readability (level-triggered).
        let mut eight = [0u8; 8];
        assert_eq!(read_raw(efd, &mut eight), Ok(8));
        assert_eq!(u64::from_ne_bytes(eight), 1);
        assert_eq!(epoll_wait(ep, &mut buf, Some(0)), EpollWait::Ready(0));

        // A drained non-blocking eventfd reads EAGAIN.
        assert_eq!(read_raw(efd, &mut eight), Err(SysError(11)));

        epoll_ctl(ep, epoll::CTL_DEL, efd, &ev).expect("ctl del");
        close(efd);
        close(ep);
    }

    #[test]
    fn epoll_wait_times_out() {
        let ep = epoll_create1().expect("epoll_create1");
        let mut buf = [EpollEvent { events: 0, data: 0 }; 1];
        let start = std::time::Instant::now();
        assert_eq!(epoll_wait(ep, &mut buf, Some(5)), EpollWait::Ready(0));
        assert!(start.elapsed() >= std::time::Duration::from_millis(4));
        close(ep);
    }

    #[test]
    fn futex_wake_unblocks_waiter() {
        use core::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let word = Arc::new(AtomicU32::new(0));
        let w2 = word.clone();
        let t = std::thread::spawn(move || {
            // Loop: spurious returns are permitted by the contract.
            while w2.load(Ordering::Acquire) == 0 {
                futex_wait(&w2, 0, Some(1_000_000_000));
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        word.store(1, Ordering::Release);
        futex_wake(&word, u32::MAX);
        t.join().expect("waiter exits after wake");
    }
}
