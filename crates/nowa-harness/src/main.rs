//! `nowa-bench` — CLI entry of the experiment harness.

use nowa_harness::{print_tables, profileexp, real, simexp, traceexp};
use nowa_kernels::{BenchId, Size};
use nowa_runtime::MadvisePolicy;
use nowa_sim::SimBench;

fn usage() -> ! {
    eprintln!(
        "usage: nowa-bench <experiment> [flags]

experiments:
  table1                         Table I   benchmark inventory
  fig1   [--quick]               Fig 1     nqueens headline comparison (sim)
  fig7   [--quick] [--bench B]   Fig 7     speedup curves, all benchmarks (sim)
  fig8   [--quick]               Fig 8     madvise() impact (sim)
  table2 [--size S] [--workers N] Table II peak RSS wrt madvise (real)
  fig9   [--quick]               Fig 9     CL vs THE work-stealing queue (sim)
  fig10  [--quick]               Fig 10    Nowa vs OpenMP stand-ins (sim)
  table3 [--quick]               Table III 256-worker execution times (sim)
  measured [--size S] [--workers N] [--reps R] [--stats]  real wall-clock comparison
  overhead [--size S] [--reps R] [--stats]  real 1-worker overhead vs serial elision
  ablation-pool [--size S] [--workers N] [--reps R]  stack-pool ablation (real)
  knapsack-order [--workers N] [--reps R]  spawn-order experiment (real)
  trace <experiment> [--size S] [--workers N] [--reps R] [--trace-out FILE]
                                 traced re-run of measured | ablation-pool |
                                 knapsack-order | fig9 with scheduler event
                                 rings + latency histograms enabled
  profile <kernel> [--size S] [--workers N] [--out FILE]
                                 causal profile of one kernel run: DAG
                                 reconstruction, work T1 / span T∞ /
                                 parallelism, steal edges, critical-path
                                 attribution; writes BENCH_profile.json
  trace-overhead [--size S] [--workers N] [--reps R]
                                 CI gate: fib with tracing on vs off, exits
                                 non-zero when tracing costs > 10%
  chaos  [--seed N] [--iters K] [--workers N]
                                 seeded fault-injection stress over the real
                                 kernels (requires the `chaos` cargo feature)
  cancel-soak [--seed N] [--iters K] [--workers N]
                                 forced cancellations at steal/sync/suspend
                                 boundaries over K seeds; every run must
                                 complete or unwind with a typed Cancelled
                                 payload and shut down cleanly (requires the
                                 `chaos` cargo feature)
  wakeup [--iters K|small] [--workers N]
                                 idle-engine wakeup latency + idle CPU burn
                                 vs a pre-engine emulation; writes
                                 BENCH_wakeup.json
  spawn  [--quick]               spawn fast-path microbenchmark: per-spawn
                                 ns/cycles with the split deque layer on vs
                                 off, per flavor; writes BENCH_spawn.json
                                 and exits non-zero when the split-on fast
                                 path blows its budget (CI gate)
  serve  [--quick] [--workers N] [--conns K]
                                 open-loop request/response serving over
                                 local socket pairs: Poisson arrivals, one
                                 async handler per connection, a fork/join
                                 DAG per request; sweeps offered load and
                                 reports p50/p99/p999 latency; writes
                                 BENCH_serve.json and exits non-zero when
                                 responses are lost or the low-load median
                                 blows the sanity bound (CI gate)
  all    [--quick]               everything

flags:
  --quick        reduced sweeps/scales
  --bench B      one of the 12 benchmark names
  --size S       tiny|quick|medium|paper (default quick)
  --workers N    worker threads for real runs (default 4)
  --reps R       repetitions for real runs (default 5)
  --stats        also print aggregated scheduler statistics (measured, overhead)
  --trace-out F  write a Chrome trace_event JSON (one track per worker) to F;
                 open in Perfetto or chrome://tracing (trace mode only)
  --out F        artifact path for profile mode (default BENCH_profile.json)
  --conns K      serving connections (default 4; serve mode only)
  --seed N       chaos injection seed (default 1; chaos mode only)
  --iters K      chaos iterations per flavor (default 3; chaos mode only) or
                 wakeup latency samples per config (default 200; `small` = 50)"
    );
    std::process::exit(2);
}

struct Args {
    quick: bool,
    bench: Option<String>,
    size: Size,
    workers: usize,
    reps: usize,
    stats: bool,
    trace_out: Option<String>,
    out: Option<String>,
    seed: u64,
    iters: Option<usize>,
    conns: usize,
}

fn parse_flags(rest: &[String]) -> Args {
    let mut args = Args {
        quick: false,
        bench: None,
        size: Size::Quick,
        workers: 4,
        reps: 5,
        stats: false,
        trace_out: None,
        out: None,
        seed: 1,
        iters: None,
        conns: 4,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => args.quick = true,
            "--bench" => {
                i += 1;
                args.bench = rest.get(i).cloned();
            }
            "--size" => {
                i += 1;
                args.size = rest
                    .get(i)
                    .and_then(|s| Size::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                i += 1;
                args.workers = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--reps" => {
                i += 1;
                args.reps = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--stats" => args.stats = true,
            "--conns" => {
                i += 1;
                args.conns = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                args.seed = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--iters" => {
                i += 1;
                args.iters = match rest.get(i).map(String::as_str) {
                    Some("small") => Some(50),
                    Some(s) => Some(s.parse().unwrap_or_else(|_| usage())),
                    None => usage(),
                };
            }
            "--trace-out" => {
                i += 1;
                args.trace_out = Some(rest.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                args.out = Some(rest.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let rest = &argv[1..];

    // Internal child-process mode for Table II (fresh address space).
    if cmd == "rss-probe" {
        let bench = rest
            .first()
            .and_then(|s| BenchId::parse(s))
            .unwrap_or_else(|| usage());
        let policy = rest
            .get(1)
            .and_then(|s| MadvisePolicy::parse(s))
            .unwrap_or_else(|| usage());
        let size = rest
            .get(2)
            .and_then(|s| Size::parse(s))
            .unwrap_or(Size::Quick);
        let workers = rest.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
        println!("{}", real::rss_probe(bench, policy, size, workers));
        return;
    }

    // `trace` takes a sub-experiment name before the flags.
    if cmd == "trace" {
        let Some(sub) = rest.first() else { usage() };
        let args = parse_flags(&rest[1..]);
        print_tables(&traceexp::trace_experiment(
            sub,
            args.size,
            args.workers,
            args.reps,
            args.trace_out.as_deref(),
        ));
        return;
    }

    // `profile` takes a kernel name before the flags.
    if cmd == "profile" {
        let Some(kernel) = rest.first() else { usage() };
        let args = parse_flags(&rest[1..]);
        print_tables(&profileexp::profile(
            kernel,
            args.size,
            args.workers,
            args.out.as_deref().unwrap_or("BENCH_profile.json"),
        ));
        return;
    }

    let args = parse_flags(rest);
    let sim_bench = args.bench.as_deref().map(|name| {
        SimBench::parse(name).unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}");
            std::process::exit(2);
        })
    });

    match cmd.as_str() {
        #[cfg(feature = "chaos")]
        "chaos" => print_tables(&nowa_harness::chaosexp::chaos_stress(
            args.seed,
            args.iters.unwrap_or(3),
            args.workers,
        )),
        #[cfg(feature = "chaos")]
        "cancel-soak" => print_tables(&nowa_harness::chaosexp::cancel_soak(
            args.seed,
            args.iters.unwrap_or(8),
            args.workers,
        )),
        #[cfg(not(feature = "chaos"))]
        "chaos" | "cancel-soak" => {
            eprintln!(
                "nowa-bench: the {cmd} mode needs the `chaos` cargo feature:\n  \
                 cargo run -p nowa-harness --features chaos --bin nowa-bench -- \
                 {cmd} --seed {} --iters {}",
                args.seed,
                args.iters.unwrap_or(3)
            );
            std::process::exit(2);
        }
        "wakeup" => print_tables(&nowa_harness::wakeexp::wakeup(
            args.workers,
            args.iters.unwrap_or(200),
        )),
        "spawn" => {
            if !nowa_harness::spawnexp::spawn_bench(args.quick) {
                std::process::exit(1);
            }
        }
        "serve" => {
            if !nowa_harness::serveexp::serve(args.workers, args.conns, args.quick) {
                std::process::exit(1);
            }
        }
        "table1" => print_tables(&real::table1()),
        "fig1" => print_tables(&simexp::fig1(args.quick)),
        "fig7" => print_tables(&simexp::fig7(sim_bench, args.quick)),
        "fig8" => print_tables(&simexp::fig8(args.quick)),
        "table2" => print_tables(&real::table2(args.size, args.workers)),
        "fig9" => print_tables(&simexp::fig9(args.quick)),
        "fig10" => print_tables(&simexp::fig10(args.quick)),
        "table3" => print_tables(&simexp::table3(args.quick)),
        "measured" => print_tables(&real::measured_comparison(
            args.size,
            args.workers,
            args.reps,
            args.stats,
        )),
        "overhead" => print_tables(&real::overhead_table(args.size, args.reps, args.stats)),
        "trace-overhead" => {
            if !profileexp::trace_overhead(args.size, args.workers, args.reps) {
                std::process::exit(1);
            }
        }
        "ablation-pool" => print_tables(&real::pool_ablation(args.size, args.workers, args.reps)),
        "knapsack-order" => print_tables(&real::knapsack_order(args.workers, args.reps)),
        "all" => {
            print_tables(&real::table1());
            print_tables(&simexp::fig1(args.quick));
            print_tables(&simexp::fig7(None, args.quick));
            print_tables(&simexp::fig8(args.quick));
            print_tables(&real::table2(args.size, args.workers));
            print_tables(&simexp::fig9(args.quick));
            print_tables(&simexp::fig10(args.quick));
            print_tables(&simexp::table3(args.quick));
            print_tables(&real::overhead_table(
                args.size,
                args.reps.min(3),
                args.stats,
            ));
            print_tables(&real::measured_comparison(
                args.size,
                args.workers,
                args.reps.min(3),
                args.stats,
            ));
            print_tables(&real::pool_ablation(
                args.size,
                args.workers,
                args.reps.min(3),
            ));
            print_tables(&real::knapsack_order(args.workers, args.reps.min(3)));
        }
        _ => usage(),
    }
}
