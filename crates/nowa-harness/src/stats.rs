//! Statistics helpers matching the paper's methodology (§V): arithmetic
//! mean of serial times, per-run speedups, geometric-mean speedups with
//! standard deviation, and geometric-mean speedup *ratios* between runtime
//! systems.

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Geometric mean (the paper averages speedups geometrically).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple fixed-width text table.
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
    }
}
