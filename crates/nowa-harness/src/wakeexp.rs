//! `nowa-bench wakeup` — spawn-to-steal wakeup latency and idle CPU burn.
//!
//! Two measurements over the idle engine, each taken twice: once with the
//! engine's default configuration (targeted futex wakes) and once with a
//! configuration that emulates the pre-engine scheduler (no spawn-path
//! wakes, blind 200 µs naps — the seed's condvar behaviour expressed in
//! [`IdleConfig`] terms):
//!
//! 1. **Burst latency** — all workers are allowed to park, then a root
//!    task performs one `join2` whose child busy-waits until a thief has
//!    started the continuation. The elapsed time from just before the
//!    spawn to the continuation's first instruction on the thief is the
//!    spawn-to-steal wakeup latency: it covers the conditional wake, the
//!    futex syscall pair, the thief's re-scan, and the steal itself. With
//!    the baseline config no wake is sent, so each sample is dominated by
//!    the remaining fraction of some worker's 200 µs nap.
//! 2. **Idle burn** — process CPU time (`/proc/self/stat` utime+stime,
//!    USER_HZ ticks) consumed across a quiescent window with the runtime
//!    alive and all workers deep-idle. The engine parks on a bounded
//!    futex; the baseline emulation wakes every 200 µs to re-sweep.
//!
//! Results are printed as a table and written to `BENCH_wakeup.json` in
//! the current directory, wrapped in the versioned [`crate::artifact`]
//! envelope (`schema`/`schema_version`/`timestamp_unix_s`/`host`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use nowa_runtime::{api, Config, IdleConfig, Runtime};
use nowa_trace::json::Json;

use crate::stats::Table;

/// Samples taking longer than this are classified as misses: the child
/// gave up waiting and the owner ran its own continuation, so the sample
/// measures the give-up deadline, not a wakeup.
const MISS_CUTOFF_NS: u64 = 40_000_000;

/// How long the busy-waiting child pins the owner before giving up.
const CHILD_DEADLINE: Duration = Duration::from_millis(50);

/// The configuration every pre-engine measurement runs under: the seed
/// scheduler's observable idle behaviour (16 yield sweeps, then repeated
/// blind 200 µs naps, never woken by spawns) expressed as an
/// [`IdleConfig`]. `wake_threshold: usize::MAX` disables the spawn-path
/// wake entirely, exactly as the seed had no wake to send.
fn seed_emulation() -> IdleConfig {
    IdleConfig {
        spin_sweeps: 0,
        yield_sweeps: 16,
        steal_retries: 0,
        wake_threshold: usize::MAX,
        max_park: Duration::from_micros(200),
    }
}

/// One latency sample: park everyone, then time spawn → thief-runs-
/// continuation through one `join2`. `None` when the thief never arrived
/// before the child's deadline (counted as a miss).
fn one_sample(rt: &Runtime, workers: usize) -> Option<u64> {
    // Start from a fully-parked runtime so every sample exercises the
    // wake path (rather than racing a thief that is still mid-descent).
    let prime_deadline = Instant::now() + Duration::from_millis(50);
    while rt.idle_workers() < workers {
        if Instant::now() > prime_deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let ns = rt.run(|| {
        let stolen_ns = AtomicU64::new(0);
        let t0 = Instant::now();
        api::join2(
            || {
                // Child, inline on the owner: keep this worker busy (so
                // the continuation cannot be satisfied by the owner's own
                // fast-path pop) but *yield the CPU* while waiting — on a
                // single-core box a spinning owner would starve the woken
                // thief and the sample would measure kernel preemption,
                // not the wake path.
                while stolen_ns.load(Ordering::Acquire) == 0 {
                    if t0.elapsed() > CHILD_DEADLINE {
                        return;
                    }
                    std::thread::yield_now();
                }
            },
            || {
                // Continuation: the first instruction executed after the
                // steal. (On a miss this runs on the owner instead, well
                // past the cutoff.)
                stolen_ns.store(t0.elapsed().as_nanos().max(1) as u64, Ordering::Release);
            },
        );
        stolen_ns.load(Ordering::Acquire)
    });
    (ns != 0 && ns < MISS_CUTOFF_NS).then_some(ns)
}

/// Total process CPU time in USER_HZ ticks (utime + stime from
/// `/proc/self/stat`; USER_HZ is fixed at 100 on Linux, i.e. 10 ms/tick).
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields after the parenthesised comm: state is field 3 of the file,
    // utime field 14, stime field 15.
    let after = stat.rsplit_once(')').map(|(_, a)| a).unwrap_or("");
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
    utime + stime
}

/// CPU milliseconds burned per wall-clock second while the runtime idles.
fn idle_burn_ms_per_s(rt: &Runtime, window: Duration) -> f64 {
    // Quiesce: run a trivial root task, then give the workers time to
    // descend all the way into their deep-idle state.
    rt.run(|| ());
    std::thread::sleep(Duration::from_millis(20));
    let t0 = cpu_ticks();
    let wall = Instant::now();
    std::thread::sleep(window);
    let ticks = cpu_ticks().saturating_sub(t0);
    (ticks as f64 * 10.0) / wall.elapsed().as_secs_f64()
}

/// Measured numbers for one configuration.
struct Measurement {
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    misses: usize,
    samples: usize,
    idle_burn_ms_per_s: f64,
    parks: u64,
    wakes_issued: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn measure(workers: usize, idle: IdleConfig, iters: usize, burn_window: Duration) -> Measurement {
    let rt = Runtime::new(Config::with_workers(workers).idle(idle)).expect("runtime");
    let mut samples = Vec::with_capacity(iters);
    let mut misses = 0usize;
    for _ in 0..iters {
        match one_sample(&rt, workers) {
            Some(ns) => samples.push(ns),
            None => misses += 1,
        }
    }
    samples.sort_unstable();
    let burn = idle_burn_ms_per_s(&rt, burn_window);
    let stats = rt.stats();
    Measurement {
        p50_ns: quantile(&samples, 0.50),
        p90_ns: quantile(&samples, 0.90),
        p99_ns: quantile(&samples, 0.99),
        max_ns: samples.last().copied().unwrap_or(0),
        misses,
        samples: samples.len(),
        idle_burn_ms_per_s: burn,
        parks: stats.parks,
        wakes_issued: stats.wakes_issued,
    }
}

fn json_of(m: &Measurement) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("p50_ns".into(), Json::Num(m.p50_ns as f64));
    obj.insert("p90_ns".into(), Json::Num(m.p90_ns as f64));
    obj.insert("p99_ns".into(), Json::Num(m.p99_ns as f64));
    obj.insert("max_ns".into(), Json::Num(m.max_ns as f64));
    obj.insert("misses".into(), Json::Num(m.misses as f64));
    obj.insert("samples".into(), Json::Num(m.samples as f64));
    obj.insert("idle_burn_ms_per_s".into(), Json::Num(m.idle_burn_ms_per_s));
    obj.insert("parks".into(), Json::Num(m.parks as f64));
    obj.insert("wakes_issued".into(), Json::Num(m.wakes_issued as f64));
    Json::Obj(obj)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1} µs", ns as f64 / 1000.0)
}

/// Runs the wakeup-latency + idle-burn comparison and writes
/// `BENCH_wakeup.json`. `iters` is the latency sample count per config.
pub fn wakeup(workers: usize, iters: usize) -> Vec<Table> {
    let workers = workers.max(2); // a thief must exist
    let burn_window = Duration::from_millis(if iters >= 100 { 1000 } else { 500 });

    let engine = measure(workers, IdleConfig::default(), iters, burn_window);
    let baseline = measure(workers, seed_emulation(), iters, burn_window);

    let mut table = Table::new(
        format!("wakeup latency + idle burn — {workers} workers, {iters} iters"),
        &[
            "config",
            "p50",
            "p90",
            "p99",
            "max",
            "misses",
            "idle burn",
            "parks",
            "wakes",
        ],
    );
    for (name, m) in [("idle engine", &engine), ("seed emulation", &baseline)] {
        table.row(vec![
            name.into(),
            fmt_us(m.p50_ns),
            fmt_us(m.p90_ns),
            fmt_us(m.p99_ns),
            fmt_us(m.max_ns),
            format!("{}/{}", m.misses, m.misses + m.samples),
            format!("{:.1} ms/s", m.idle_burn_ms_per_s),
            m.parks.to_string(),
            m.wakes_issued.to_string(),
        ]);
    }

    let mut root = BTreeMap::new();
    root.insert("workers".into(), Json::Num(workers as f64));
    root.insert("iters".into(), Json::Num(iters as f64));
    root.insert("engine".into(), json_of(&engine));
    root.insert("baseline".into(), json_of(&baseline));
    crate::artifact::write(
        "BENCH_wakeup.json",
        &crate::artifact::envelope("nowa-bench-wakeup", root),
    );

    vec![table]
}
