//! `nowa-bench serve` — open-loop serving latency over the async surface.
//!
//! An HTTP-ish request/response benchmark over local socket pairs that
//! exercises the whole §6h stack end to end: the epoll reactor, the
//! waker/continuation bridge, `Region::spawn_async`, and the fork/join
//! substrate underneath.
//!
//! Topology: `conns` connected [`UnixStream`] pairs. The server side lives
//! inside one runtime — one `spawn_async` handler per connection reading
//! 16-byte request frames and answering each with a 16-byte response after
//! running a small fork/join DAG (`join2`-recursive fib), so every request
//! fans out into real continuation-stealing work. The client side is plain
//! OS threads *outside* the runtime: per connection one writer replaying a
//! precomputed **Poisson arrival schedule** (open loop: a slow server does
//! not slow the arrival process down, queueing delay shows up in the tail)
//! and one reader timestamping responses.
//!
//! Latency is measured from the request's *intended* arrival time, not
//! from when the writer managed to send it — the open-loop convention that
//! keeps coordinated omission out of the percentiles.
//!
//! The offered load is swept across several rates; for each rate the
//! p50/p99/p999 and the achieved throughput are reported. Reading the
//! result: p50 tracks service time, and the **p999 knee** — the rate where
//! the extreme tail departs from p50 by orders of magnitude — is where the
//! runtime stops keeping up with the offered load. Results are written to
//! `BENCH_serve.json` in the versioned [`crate::artifact`] envelope, and
//! the function doubles as the CI smoke gate: it fails when requests are
//! lost or the low-load median blows a very generous sanity bound.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::pin::pin;
use std::time::{Duration, Instant};

use nowa_runtime::{api, AsyncFd, Config, Region, Runtime};
use nowa_trace::json::Json;

use crate::stats::Table;

/// Wire frame, both directions: `seq: u64 | work: u32 | pad: u32`, LE.
const FRAME: usize = 16;

/// Fork/join depth of the per-request DAG (`fib(REQUEST_WORK)` with a
/// `join2` at every level): enough spawns to make each request a real
/// parallel task, small enough that service time stays in the tens of
/// microseconds.
const REQUEST_WORK: u32 = 8;

/// CI sanity bound on the lowest-rate median: generous enough for any
/// loaded CI box, tight enough to catch a serving path that degraded from
/// microseconds to scheduling-timeout territory.
const SANITY_P50: Duration = Duration::from_millis(100);

// ---- deterministic Poisson arrivals --------------------------------------

/// xorshift64* — deterministic schedules, no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 + f64::EPSILON
    }

    /// Exponential inter-arrival gap for a Poisson process of `rate` Hz.
    fn exp_gap_ns(&mut self, rate: f64) -> u64 {
        (-self.unit().ln() / rate * 1e9) as u64
    }
}

/// Arrival offsets (ns from the common start) for one connection: a
/// Poisson process at `rate` per second, `count` arrivals.
fn schedule(seed: u64, rate: f64, count: usize) -> Vec<u64> {
    let mut rng = Rng(seed | 1);
    let mut at = 0u64;
    (0..count)
        .map(|_| {
            at += rng.exp_gap_ns(rate);
            at
        })
        .collect()
}

// ---- the server side -----------------------------------------------------

/// The per-request fork/join DAG.
fn fib_dag(n: u32) -> u64 {
    if n < 2 {
        return u64::from(n);
    }
    let (a, b) = api::join2(|| fib_dag(n - 1), || fib_dag(n - 2));
    a + b
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` on a clean EOF at a frame
/// boundary (the client finished and shut its write half down).
async fn read_frame(fd: &AsyncFd<UnixStream>, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match (&mut fd.get_ref()).read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(std::io::Error::from(ErrorKind::UnexpectedEof))
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => fd.readable().await?,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes the whole frame, parking on writability when the socket buffer
/// pushes back.
async fn write_frame(fd: &AsyncFd<UnixStream>, buf: &[u8]) -> std::io::Result<()> {
    let mut sent = 0;
    while sent < buf.len() {
        match (&mut fd.get_ref()).write(&buf[sent..]) {
            Ok(n) => sent += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => fd.writable().await?,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One connection's server loop: request frame in, DAG, response out.
/// Returns the number of requests served.
async fn serve_conn(stream: UnixStream) -> u64 {
    let fd = match AsyncFd::new(stream) {
        Ok(fd) => fd,
        Err(e) => {
            eprintln!("nowa-bench serve: register failed: {e}");
            return 0;
        }
    };
    let mut served = 0u64;
    let mut buf = [0u8; FRAME];
    loop {
        match read_frame(&fd, &mut buf).await {
            Ok(true) => {}
            Ok(false) => return served, // client done
            Err(e) => {
                eprintln!("nowa-bench serve: read failed: {e}");
                return served;
            }
        }
        let work = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        // The actual service: a continuation-stealing fork/join DAG per
        // request, stamped into the (otherwise echoed) response frame.
        let result = fib_dag(work.min(REQUEST_WORK));
        buf[12..16].copy_from_slice(&(result as u32).to_le_bytes());
        if let Err(e) = write_frame(&fd, &buf).await {
            eprintln!("nowa-bench serve: write failed: {e}");
            return served;
        }
        served += 1;
    }
}

// ---- the client side -----------------------------------------------------

/// Replays `offsets` on `stream` (blocking side): request `i` is written at
/// `t0 + offsets[i]`, late or not — the open-loop writer never waits for
/// responses. Shuts the write half down when the schedule is drained.
fn client_writer(stream: &UnixStream, t0: Instant, offsets: &[u64]) {
    let mut s = stream;
    for (seq, &at) in offsets.iter().enumerate() {
        let due = t0 + Duration::from_nanos(at);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let mut frame = [0u8; FRAME];
        frame[..8].copy_from_slice(&(seq as u64).to_le_bytes());
        frame[8..12].copy_from_slice(&REQUEST_WORK.to_le_bytes());
        if let Err(e) = s.write_all(&frame) {
            eprintln!("nowa-bench serve: client write failed: {e}");
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Reads responses until EOF, returning each request's latency in ns
/// measured from its *intended* arrival instant.
fn client_reader(stream: &UnixStream, t0: Instant, offsets: &[u64]) -> Vec<u64> {
    let mut s = stream;
    let mut latencies = Vec::with_capacity(offsets.len());
    let mut frame = [0u8; FRAME];
    loop {
        match s.read_exact(&mut frame) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
            Err(e) => {
                eprintln!("nowa-bench serve: client read failed: {e}");
                break;
            }
        }
        let seq = u64::from_le_bytes(frame[..8].try_into().unwrap()) as usize;
        let Some(&at) = offsets.get(seq) else { break };
        let intended = t0 + Duration::from_nanos(at);
        latencies.push(Instant::now().duration_since(intended).as_nanos() as u64);
        if latencies.len() == offsets.len() {
            break;
        }
    }
    latencies
}

// ---- one point of the sweep ----------------------------------------------

/// Measured numbers for one offered load.
struct LoadPoint {
    offered_rps: f64,
    achieved_rps: f64,
    sent: usize,
    completed: usize,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    async_parks: u64,
    async_resumes: u64,
    reactor_polls: u64,
    reactor_events: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one rate of the sweep: fresh runtime, `conns` connections, a
/// Poisson arrival schedule totalling `offered_rps` across them for
/// `duration`.
fn run_load(workers: usize, conns: usize, offered_rps: f64, duration: Duration) -> LoadPoint {
    let per_conn_rate = offered_rps / conns as f64;
    let per_conn_count = ((per_conn_rate * duration.as_secs_f64()) as usize).max(1);
    let schedules: Vec<Vec<u64>> = (0..conns)
        .map(|c| schedule(0x5EED + c as u64, per_conn_rate, per_conn_count))
        .collect();
    let sent = per_conn_count * conns;

    let mut server_ends = Vec::with_capacity(conns);
    let mut client_ends = Vec::with_capacity(conns);
    for _ in 0..conns {
        let (server, client) = UnixStream::pair().expect("socketpair");
        server
            .set_nonblocking(true)
            .expect("non-blocking server end");
        server_ends.push(server);
        client_ends.push(client);
    }

    let rt = Runtime::new(Config::with_workers(workers)).expect("runtime");
    let t0 = Instant::now() + Duration::from_millis(20); // common start line

    // Clients: two plain threads per connection, outside the runtime.
    let client_threads: Vec<_> = client_ends
        .into_iter()
        .zip(&schedules)
        .map(|(stream, offsets)| {
            let offsets = offsets.clone();
            std::thread::spawn(move || {
                let reader = {
                    let stream = stream.try_clone().expect("clone client end");
                    let offsets = offsets.clone();
                    std::thread::spawn(move || client_reader(&stream, t0, &offsets))
                };
                client_writer(&stream, t0, &offsets);
                reader.join().expect("client reader panicked")
            })
        })
        .collect();

    // Server: one root task owning every connection handler.
    let served = rt.run(move || {
        let region = pin!(Region::cancellable());
        let region = region.as_ref();
        let handles: Vec<_> = server_ends
            .into_iter()
            .map(|stream| region.spawn_async(serve_conn(stream)))
            .collect();
        region.block_on(async {
            let mut total = 0u64;
            for h in handles {
                total += h.await;
            }
            total
        })
    });

    let wall = t0.elapsed();
    let mut latencies: Vec<u64> = client_threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread panicked"))
        .collect();
    latencies.sort_unstable();
    let stats = rt.stats();
    drop(rt);

    LoadPoint {
        offered_rps,
        achieved_rps: served as f64 / wall.as_secs_f64(),
        sent,
        completed: latencies.len(),
        p50_ns: quantile(&latencies, 0.50),
        p99_ns: quantile(&latencies, 0.99),
        p999_ns: quantile(&latencies, 0.999),
        max_ns: latencies.last().copied().unwrap_or(0),
        async_parks: stats.async_parks,
        async_resumes: stats.async_resumes,
        reactor_polls: stats.reactor_polls,
        reactor_events: stats.reactor_events,
    }
}

fn json_of(p: &LoadPoint) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("offered_rps".into(), Json::Num(p.offered_rps));
    obj.insert("achieved_rps".into(), Json::Num(p.achieved_rps));
    obj.insert("sent".into(), Json::Num(p.sent as f64));
    obj.insert("completed".into(), Json::Num(p.completed as f64));
    obj.insert("p50_ns".into(), Json::Num(p.p50_ns as f64));
    obj.insert("p99_ns".into(), Json::Num(p.p99_ns as f64));
    obj.insert("p999_ns".into(), Json::Num(p.p999_ns as f64));
    obj.insert("max_ns".into(), Json::Num(p.max_ns as f64));
    obj.insert("async_parks".into(), Json::Num(p.async_parks as f64));
    obj.insert("async_resumes".into(), Json::Num(p.async_resumes as f64));
    obj.insert("reactor_polls".into(), Json::Num(p.reactor_polls as f64));
    obj.insert("reactor_events".into(), Json::Num(p.reactor_events as f64));
    Json::Obj(obj)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1} µs", ns as f64 / 1000.0)
}

/// Runs the offered-load sweep and writes `BENCH_serve.json`. Returns
/// `false` (CI failure) when requests were lost or the low-load median
/// breaks the sanity bound.
pub fn serve(workers: usize, conns: usize, quick: bool) -> bool {
    let workers = workers.max(2);
    let conns = conns.max(1);
    let (rates, duration): (&[f64], Duration) = if quick {
        (&[500.0, 2_000.0], Duration::from_millis(500))
    } else {
        (&[1_000.0, 4_000.0, 16_000.0], Duration::from_secs(1))
    };

    let points: Vec<LoadPoint> = rates
        .iter()
        .map(|&r| run_load(workers, conns, r, duration))
        .collect();

    let mut table = Table::new(
        format!("open-loop serving latency — {workers} workers, {conns} conns"),
        &[
            "offered",
            "achieved",
            "done/sent",
            "p50",
            "p99",
            "p999",
            "max",
            "polls",
        ],
    );
    for p in &points {
        table.row(vec![
            format!("{:.0}/s", p.offered_rps),
            format!("{:.0}/s", p.achieved_rps),
            format!("{}/{}", p.completed, p.sent),
            fmt_us(p.p50_ns),
            fmt_us(p.p99_ns),
            fmt_us(p.p999_ns),
            fmt_us(p.max_ns),
            p.reactor_polls.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut root = BTreeMap::new();
    root.insert("workers".into(), Json::Num(workers as f64));
    root.insert("conns".into(), Json::Num(conns as f64));
    root.insert("duration_ms".into(), Json::Num(duration.as_millis() as f64));
    root.insert("request_work".into(), Json::Num(REQUEST_WORK as f64));
    root.insert(
        "sweep".into(),
        Json::Arr(points.iter().map(json_of).collect()),
    );
    crate::artifact::write(
        "BENCH_serve.json",
        &crate::artifact::envelope("nowa-bench-serve", root),
    );

    // CI gate: no lost requests anywhere, and the lowest offered load's
    // median within the (very generous) sanity bound.
    let mut ok = true;
    for p in &points {
        if p.completed != p.sent {
            eprintln!(
                "nowa-bench serve: lost {} of {} responses at {:.0}/s",
                p.sent - p.completed,
                p.sent,
                p.offered_rps
            );
            ok = false;
        }
    }
    if let Some(low) = points.first() {
        if low.p50_ns > SANITY_P50.as_nanos() as u64 {
            eprintln!(
                "nowa-bench serve: low-load p50 {} blew the {} sanity bound",
                fmt_us(low.p50_ns),
                fmt_us(SANITY_P50.as_nanos() as u64),
            );
            ok = false;
        }
    }
    ok
}
