//! `nowa-bench profile <kernel>` — causal profile of one real run, and
//! `nowa-bench trace-overhead` — the CI gate on the cost of tracing.
//!
//! `profile` runs one kernel under scheduler tracing with a ring sized to
//! hold the whole run, reconstructs the fork/join DAG from the causal
//! event stream ([`CausalProfile`]), and reports work T1, span T∞,
//! parallelism T1/T∞, steal-edge statistics, and the per-phase composition
//! of the critical path. The profile is also written as a versioned JSON
//! artifact (default `BENCH_profile.json`, `--out` to override) wrapped in
//! the [`crate::artifact`] envelope.
//!
//! `trace-overhead` measures the same kernel with tracing off and on and
//! fails (non-zero exit) if tracing costs more than the budget — the
//! "observability is near-free" claim, enforced.

use std::collections::BTreeMap;
use std::time::Instant;

use nowa_kernels::{BenchId, Size};
use nowa_runtime::{Config, Runtime};
use nowa_trace::json::Json;
use nowa_trace::CausalProfile;

use crate::artifact;
use crate::stats::Table;

/// Ring capacity (events per worker) for profiling runs: sized to hold
/// every event of the supported kernel sizes so the reconstruction is
/// exact, not best-effort. 2^20 events × 16 B = 16 MiB per worker —
/// a profiling-session price, never paid by plain tracing (which keeps
/// the [`nowa_runtime::Config::trace_ring`] default).
const PROFILE_RING: usize = 1 << 20;

/// Fraction of extra wall-clock time tracing is allowed to cost before
/// `trace-overhead` fails CI.
const OVERHEAD_BUDGET: f64 = 0.10;

/// Runs `kernel` once under tracing and returns the reconstructed
/// profile tables; writes the enveloped JSON artifact to `out`.
pub fn profile(kernel: &str, size: Size, workers: usize, out: &str) -> Vec<Table> {
    let Some(bench) = BenchId::parse(kernel) else {
        eprintln!("unknown kernel {kernel} (one of the 12 benchmark names, e.g. fib, nqueens)");
        std::process::exit(2);
    };
    let rt = Runtime::new(
        Config::with_workers(workers)
            .tracing(true)
            .trace_ring(PROFILE_RING),
    )
    .expect("runtime");
    let start = Instant::now();
    let checksum = rt.run(|| bench.run(size));
    let wall_s = start.elapsed().as_secs_f64();
    assert!(checksum.is_finite());
    let stats = rt.stats();
    let report = rt.trace_report().expect("tracing was enabled");
    let profile = CausalProfile::from_workers(&report.workers);

    if !profile.complete() {
        eprintln!(
            "warning: reconstruction incomplete ({} dropped, {} unmatched steals, {} unmatched \
             pops) — numbers are best-effort; re-run with fewer workers or a smaller size",
            profile.dropped, profile.unmatched_steals, profile.unmatched_pops
        );
    }

    let mut body = BTreeMap::new();
    body.insert("kernel".to_string(), Json::Str(bench.name().to_string()));
    body.insert(
        "size".to_string(),
        Json::Str(format!("{size:?}").to_lowercase()),
    );
    body.insert("workers".to_string(), Json::Num(workers as f64));
    body.insert("wall_s".to_string(), Json::Num(wall_s));
    body.insert("profile".to_string(), profile.to_json());
    // The scheduler's own relaxed counters, for cross-checking the
    // event-derived numbers above.
    let mut sched = BTreeMap::new();
    for (key, v) in [
        ("spawns", stats.spawns),
        ("steals", stats.steals),
        ("fast_pops", stats.fast_pops),
        ("own_takes", stats.own_takes),
        ("joins", stats.joins),
        ("suspensions", stats.suspensions),
        ("parks", stats.parks),
        ("wakes_issued", stats.wakes_issued),
        ("wakes_spurious", stats.wakes_spurious),
    ] {
        sched.insert(key.to_string(), Json::Num(v as f64));
    }
    body.insert("scheduler_stats".to_string(), Json::Obj(sched));
    artifact::write(out, &artifact::envelope("nowa-bench-profile", body));

    let mut tables = vec![headline_table(kernel, size, workers, wall_s, &profile)];
    tables.push(phase_table(&profile));
    if !profile.steal_edges.is_empty() {
        tables.push(steal_table(&profile));
    }
    tables
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The Cilkview-style headline numbers as a metric/value table.
fn headline_table(
    kernel: &str,
    size: Size,
    workers: usize,
    wall_s: f64,
    p: &CausalProfile,
) -> Table {
    let mut table = Table::new(
        format!("Causal profile: {kernel} (size {size:?}, {workers} workers, wall {wall_s:.4} s)"),
        &["metric", "value"],
    );
    let mut row = |name: &str, value: String| table.row(vec![name.to_string(), value]);
    row("work T1", fmt_ns(p.t1_ns));
    row("span T∞", fmt_ns(p.span_ns));
    row("parallelism T1/T∞", format!("{:.2}", p.parallelism()));
    row("complete", p.complete().to_string());
    row("spawns", p.spawns.to_string());
    row("fast-path pops", p.fast_pops.to_string());
    row("own-deque takes", p.own_takes.to_string());
    row(
        "steal edges",
        format!("{} ({} matched)", p.steals, p.matched_steals),
    );
    row("joins", p.joins.to_string());
    row("suspensions", p.suspensions.to_string());
    if p.time_in_deque.count > 0 {
        row(
            "time-in-deque p50/p99 ≤",
            format!(
                "{} / {}",
                fmt_ns(p.time_in_deque.quantile_upper_bound(0.5)),
                fmt_ns(p.time_in_deque.quantile_upper_bound(0.99)),
            ),
        );
        row(
            "steal distance mean/max",
            format!("{:.1} / {}", p.steal_distance.mean(), p.steal_distance.max),
        );
    }
    if p.suspend_wait.count > 0 {
        row(
            "suspend wait p50/p99 ≤",
            format!(
                "{} / {}",
                fmt_ns(p.suspend_wait.quantile_upper_bound(0.5)),
                fmt_ns(p.suspend_wait.quantile_upper_bound(0.99)),
            ),
        );
    }
    table
}

/// Per-phase attribution of the critical path, largest share first.
fn phase_table(p: &CausalProfile) -> Table {
    let mut table = Table::new(
        format!(
            "Critical path: {} over {} segments, {} steal edges, deque-wait {}, suspend-wait {}",
            fmt_ns(p.critical.span_ns),
            p.critical.segments,
            p.critical.steal_edges,
            fmt_ns(p.critical.deque_wait_ns),
            fmt_ns(p.critical.suspend_wait_ns),
        ),
        &["phase", "span share", "%"],
    );
    for (phase, ns) in &p.critical.phases {
        let pct = if p.span_ns > 0 {
            *ns as f64 * 100.0 / p.span_ns as f64
        } else {
            0.0
        };
        table.row(vec![phase.to_string(), fmt_ns(*ns), format!("{pct:.1}")]);
    }
    table
}

/// Steal-edge counts by (victim → thief) pair — where work migrated.
fn steal_table(p: &CausalProfile) -> Table {
    let mut pairs: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for e in &p.steal_edges {
        *pairs.entry((e.victim, e.thief)).or_insert(0) += 1;
    }
    let mut table = Table::new(
        format!("Steal edges ({} total)", p.steal_edges.len()),
        &["victim → thief", "steals"],
    );
    let mut rows: Vec<((usize, usize), u64)> = pairs.into_iter().collect();
    rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for ((victim, thief), n) in rows {
        table.row(vec![format!("w{victim} → w{thief}"), n.to_string()]);
    }
    table
}

/// Measures `fib` with tracing off and on and returns `false` (CI
/// failure) when tracing costs more than `OVERHEAD_BUDGET` (10%). Uses
/// min-of-reps per configuration: the minimum is the least noisy
/// estimator of the true cost on a shared CI host.
pub fn trace_overhead(size: Size, workers: usize, reps: usize) -> bool {
    let bench = BenchId::Fib;
    let reps = reps.max(3);
    let time = |tracing: bool| -> f64 {
        let mut config = Config::with_workers(workers);
        if tracing {
            config = config.tracing(true);
        }
        let rt = Runtime::new(config).expect("runtime");
        let _ = rt.run(|| bench.run(size)); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let checksum = rt.run(|| bench.run(size));
            best = best.min(start.elapsed().as_secs_f64());
            assert!(checksum.is_finite());
        }
        best
    };
    // Interleave the configurations so slow drift on the host hits both.
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..2 {
        off = off.min(time(false));
        on = on.min(time(true));
    }
    let overhead = on / off - 1.0;
    let ok = overhead <= OVERHEAD_BUDGET;
    let mut table = Table::new(
        format!(
            "Tracing overhead on fib (size {size:?}, {workers} workers, min of {reps} reps ×2)"
        ),
        &["config", "best [s]", "overhead", "budget", "verdict"],
    );
    table.row(vec![
        "trace off".into(),
        format!("{off:.4}"),
        "—".into(),
        "—".into(),
        "—".into(),
    ]);
    table.row(vec![
        "trace on".into(),
        format!("{on:.4}"),
        format!("{:+.1}%", overhead * 100.0),
        format!("{:.0}%", OVERHEAD_BUDGET * 100.0),
        if ok { "PASS" } else { "FAIL" }.into(),
    ]);
    println!("{}", table.render());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_writes_versioned_artifact_and_reports_headline_numbers() {
        let dir = std::env::temp_dir().join(format!("nowa_profile_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_profile.json");
        let out_str = out.to_str().unwrap().to_string();
        let tables = profile("fib", Size::Tiny, 2, &out_str);
        assert!(tables.len() >= 2, "headline + phase tables");
        let rendered: String = tables.iter().map(Table::render).collect();
        assert!(rendered.contains("work T1"), "{rendered}");
        assert!(rendered.contains("span T∞"), "{rendered}");
        assert!(rendered.contains("parallelism T1/T∞"), "{rendered}");
        assert!(rendered.contains("steal edges"), "{rendered}");

        let json = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("nowa-bench-profile")
        );
        assert_eq!(
            json.get("schema_version").and_then(Json::as_num),
            Some(artifact::SCHEMA_VERSION as f64)
        );
        assert_eq!(json.get("kernel").and_then(Json::as_str), Some("fib"));
        let p = json.get("profile").expect("profile body");
        assert!(p.get("t1_ns").and_then(Json::as_num).unwrap() > 0.0);
        assert!(p.get("t_inf_ns").and_then(Json::as_num).unwrap() > 0.0);
        assert!(p.get("parallelism").and_then(Json::as_num).unwrap() >= 1.0);
        assert!(p
            .get("critical_path")
            .and_then(|c| c.get("phases_ns"))
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_overhead_runs_and_reports() {
        // Tiny size: this asserts the machinery works, not the CI budget
        // (which the `overhead` CI job enforces at a meaningful size).
        let _ = trace_overhead(Size::Tiny, 2, 3);
    }
}
