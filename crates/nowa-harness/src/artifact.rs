//! Versioned envelope for benchmark artifacts (`BENCH_*.json`).
//!
//! Every JSON artifact the harness writes carries the same self-describing
//! header so downstream tooling (CI gates, plotting scripts) can check what
//! it is reading before trusting the numbers:
//!
//! * `schema` — the artifact kind (`nowa-bench-wakeup`, `nowa-bench-profile`);
//! * `schema_version` — bumped on breaking layout changes;
//! * `timestamp_unix_s` — when the run finished;
//! * `host` — the machine that produced it (numbers are host-relative).

use std::collections::BTreeMap;
use std::time::{SystemTime, UNIX_EPOCH};

use nowa_trace::json::Json;

/// Current version of every `BENCH_*.json` layout. Bump on breaking
/// changes to an artifact's structure (additive fields do not count).
pub const SCHEMA_VERSION: u64 = 1;

/// Hostname for the artifact envelope: the kernel's, falling back to the
/// `HOSTNAME` environment variable, then `"unknown"`.
pub fn host() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn timestamp_unix_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Wraps `body` in the versioned envelope: the returned object is `body`
/// plus the `schema`/`schema_version`/`timestamp_unix_s`/`host` header
/// fields at top level (existing body keys of those names are overwritten).
pub fn envelope(schema: &str, mut body: BTreeMap<String, Json>) -> Json {
    body.insert("schema".into(), Json::Str(schema.into()));
    body.insert("schema_version".into(), Json::Num(SCHEMA_VERSION as f64));
    body.insert(
        "timestamp_unix_s".into(),
        Json::Num(timestamp_unix_s() as f64),
    );
    body.insert("host".into(), Json::Str(host()));
    Json::Obj(body)
}

/// Writes an artifact to `path`, reporting the outcome on
/// stdout/stderr the way every `nowa-bench` writer does.
pub fn write(path: &str, artifact: &Json) {
    match std::fs::write(path, artifact.render()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_adds_header_fields() {
        let mut body = BTreeMap::new();
        body.insert("payload".to_string(), Json::Num(7.0));
        let json = envelope("nowa-bench-test", body);
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("nowa-bench-test")
        );
        assert_eq!(
            json.get("schema_version").and_then(Json::as_num),
            Some(SCHEMA_VERSION as f64)
        );
        assert!(json.get("timestamp_unix_s").and_then(Json::as_num).unwrap() > 0.0);
        assert!(!json.get("host").and_then(Json::as_str).unwrap().is_empty());
        assert_eq!(json.get("payload").and_then(Json::as_num), Some(7.0));
        // The envelope must survive a render → parse round trip.
        let parsed = Json::parse(&json.render()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_num),
            Some(1.0)
        );
    }
}
