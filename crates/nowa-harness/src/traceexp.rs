//! Traced real-runtime experiments: `nowa-bench trace <experiment>`.
//!
//! Re-runs a real experiment with scheduler tracing enabled
//! ([`Config::tracing`]) and reports what the scheduler actually did —
//! steal rates and latencies, suspension latencies, idle time, deque
//! occupancy — instead of (only) how long it took. With `--trace-out FILE`
//! the raw per-worker event streams are written as Chrome `trace_event`
//! JSON (one track per worker), loadable in Perfetto or `chrome://tracing`.

use nowa_kernels::{BenchId, Size};
use nowa_runtime::{Config, Flavor, Runtime, StatsSnapshot};
use nowa_trace::{EventKind, TraceReport};

use crate::stats::Table;

/// One traced configuration: its label, the merged report, and the
/// scheduler counters of the same run window.
struct TracedRun {
    label: String,
    report: TraceReport,
    stats: StatsSnapshot,
}

/// Runs `work` once per rep on a freshly built traced runtime and collects
/// the trace.
fn run_traced(
    label: impl Into<String>,
    config: Config,
    reps: usize,
    work: impl Fn(&Runtime),
) -> TracedRun {
    let rt = Runtime::new(config.tracing(true)).expect("runtime");
    for _ in 0..reps.max(1) {
        work(&rt);
    }
    let report = rt.trace_report().expect("tracing was enabled");
    let stats = rt.stats();
    TracedRun {
        label: label.into(),
        report,
        stats,
    }
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn ratio(x: f64) -> String {
    format!("{:.3}", x)
}

/// A metric-per-row comparison table over the traced configurations.
fn trace_table(title: String, runs: &[TracedRun]) -> Table {
    let mut header = vec!["metric".to_string()];
    header.extend(runs.iter().map(|r| r.label.clone()));
    let mut table = Table {
        title,
        header,
        rows: Vec::new(),
    };
    let mut metric = |name: &str, f: &dyn Fn(&TracedRun) -> String| {
        let mut row = vec![name.to_string()];
        row.extend(runs.iter().map(f));
        table.row(row);
    };
    metric("spawns", &|r| r.stats.spawns.to_string());
    metric("continuations consumed", &|r| {
        r.stats.continuations_consumed().to_string()
    });
    metric("fast-path ratio", &|r| ratio(r.stats.fast_path_ratio()));
    metric("steals", &|r| r.stats.steals.to_string());
    metric("steal attempts", &|r| r.stats.steal_attempts().to_string());
    metric("steal success ratio", &|r| {
        ratio(r.stats.steal_success_ratio())
    });
    metric("suspensions", &|r| r.stats.suspensions.to_string());
    metric("steal→poll p50 [µs] ≤", &|r| {
        fmt_us(r.report.steal_latency.quantile_upper_bound(0.5))
    });
    metric("steal→poll p99 [µs] ≤", &|r| {
        fmt_us(r.report.steal_latency.quantile_upper_bound(0.99))
    });
    metric("suspend→resume p50 [µs] ≤", &|r| {
        fmt_us(r.report.suspend_latency.quantile_upper_bound(0.5))
    });
    metric("suspend→resume p99 [µs] ≤", &|r| {
        fmt_us(r.report.suspend_latency.quantile_upper_bound(0.99))
    });
    metric("idle spins", &|r| r.report.idle_spin.count.to_string());
    metric("idle p99 [µs] ≤", &|r| {
        fmt_us(r.report.idle_spin.quantile_upper_bound(0.99))
    });
    metric("deque occupancy p50 ≤", &|r| {
        r.report.occupancy.quantile_upper_bound(0.5).to_string()
    });
    metric("deque occupancy max", &|r| {
        r.report.occupancy.max.to_string()
    });
    metric("events retained", &|r| r.report.total_events().to_string());
    metric("events dropped", &|r| r.report.dropped_total.to_string());
    table
}

/// Runs the traced variant of `experiment` (one of `measured`,
/// `ablation-pool`, `knapsack-order`, `fig9`) and returns comparison
/// tables. When `trace_out` is given, the Chrome trace of the first traced
/// configuration is written there.
pub fn trace_experiment(
    experiment: &str,
    size: Size,
    workers: usize,
    reps: usize,
    trace_out: Option<&str>,
) -> Vec<Table> {
    let runs = match experiment {
        "measured" => measured(size, workers, reps),
        "ablation-pool" => ablation_pool(size, workers, reps),
        "knapsack-order" => knapsack_order(workers, reps),
        "fig9" => fig9(size, workers, reps),
        other => {
            eprintln!(
                "trace mode supports: measured, ablation-pool, knapsack-order, fig9 (got {other})"
            );
            std::process::exit(2);
        }
    };

    if let Some(path) = trace_out {
        let chrome = runs[0].report.chrome_trace();
        match std::fs::write(path, &chrome) {
            Ok(()) => eprintln!(
                "wrote Chrome trace ({} events, {} workers) to {path}",
                runs[0].report.total_events(),
                runs[0].report.workers.len(),
            ),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    let mut tables = vec![trace_table(
        format!("Traced `{experiment}` (size {size:?}, {workers} workers, {reps} reps)"),
        &runs,
    )];
    tables.push(event_count_table(&runs));
    tables
}

/// Event counts by kind across configurations.
fn event_count_table(runs: &[TracedRun]) -> Table {
    let mut header = vec!["event".to_string()];
    header.extend(runs.iter().map(|r| r.label.clone()));
    let mut table = Table {
        title: "Trace event counts (ring-retained)".to_string(),
        header,
        rows: Vec::new(),
    };
    for kind in EventKind::ALL {
        if runs.iter().all(|r| r.report.count(kind) == 0) {
            continue;
        }
        let mut row = vec![kind.name().to_string()];
        row.extend(runs.iter().map(|r| r.report.count(kind).to_string()));
        table.row(row);
    }
    table
}

/// All 12 kernels on the default Nowa flavor, one traced runtime.
fn measured(size: Size, workers: usize, reps: usize) -> Vec<TracedRun> {
    vec![run_traced(
        "nowa (all kernels)",
        Config::with_workers(workers),
        1,
        |rt| {
            for bench in BenchId::ALL {
                for _ in 0..reps.max(1) {
                    let checksum = rt.run(|| bench.run(size));
                    assert!(checksum.is_finite());
                }
            }
        },
    )]
}

/// The stack-pool ablation configurations under tracing (cholesky).
fn ablation_pool(size: Size, workers: usize, reps: usize) -> Vec<TracedRun> {
    [
        ("cache+1stripe", 8usize, 1usize),
        ("nocache+1stripe", 0, 1),
        ("nocache+8stripes", 0, 8),
        ("cache+8stripes", 8, 8),
    ]
    .into_iter()
    .map(|(label, cache, stripes)| {
        let mut config = Config::with_workers(workers);
        config.stack_cache = cache;
        config.pool_stripes = stripes;
        run_traced(label, config, reps, |rt| {
            let checksum = rt.run(|| BenchId::Cholesky.run(size));
            assert!(checksum.is_finite());
        })
    })
    .collect()
}

/// Knapsack under both spawn orders (§V-A) — the traced view shows *why*
/// the orders differ: steal counts and deque occupancy shift.
fn knapsack_order(workers: usize, reps: usize) -> Vec<TracedRun> {
    use nowa_kernels::knapsack::{knapsack, random_items, SpawnOrder};
    let (items, capacity) = random_items(23, 9);
    let expected = nowa_kernels::knapsack::knapsack_reference(&items, capacity);
    [
        ("take-first", SpawnOrder::TakeFirst),
        ("skip-first", SpawnOrder::SkipFirst),
    ]
    .into_iter()
    .map(|(label, order)| {
        let items = items.clone();
        run_traced(label, Config::with_workers(workers), reps, move |rt| {
            let got = rt.run(|| knapsack(&items, capacity, order));
            assert_eq!(got, expected, "knapsack result mismatch");
        })
    })
    .collect()
}

/// Fig 9's axis (CL vs THE work-stealing queue), traced on the real
/// runtime: same protocol, different deque, compared by steal behaviour.
fn fig9(size: Size, workers: usize, reps: usize) -> Vec<TracedRun> {
    [("nowa (CL)", Flavor::NOWA), ("nowa-the", Flavor::NOWA_THE)]
        .into_iter()
        .map(|(label, flavor)| {
            run_traced(
                label,
                Config::with_workers(workers).flavor(flavor),
                reps,
                |rt| {
                    let checksum = rt.run(|| BenchId::Nqueens.run(size));
                    assert!(checksum.is_finite());
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowa_trace::json::Json;

    #[test]
    fn traced_run_records_scheduler_activity() {
        let run = run_traced("t", Config::with_workers(2), 1, |rt| {
            let checksum = rt.run(|| BenchId::Fib.run(Size::Tiny));
            assert!(checksum.is_finite());
        });
        assert!(run.stats.spawns > 0);
        assert!(run.report.count(EventKind::Spawn) > 0);
        assert!(run.report.count(EventKind::Root) >= 1);
    }

    #[test]
    fn chrome_export_has_one_track_per_worker() {
        let run = run_traced("t", Config::with_workers(3), 1, |rt| {
            let checksum = rt.run(|| BenchId::Fib.run(Size::Tiny));
            assert!(checksum.is_finite());
        });
        let parsed = Json::parse(&run.report.chrome_trace()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let tracks: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| e.get("tid").unwrap().as_num().unwrap() as u64)
            .collect();
        assert_eq!(tracks.len(), 3, "one thread_name track per worker");
    }
}
