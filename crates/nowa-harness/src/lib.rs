//! # nowa-harness — experiment drivers
//!
//! Regenerates every table and figure of the paper's evaluation (§V).
//! The per-experiment index lives in DESIGN.md; results are recorded in
//! EXPERIMENTS.md. Run via the `nowa-bench` binary:
//!
//! ```text
//! nowa-bench table1            # Table I   — benchmark inventory
//! nowa-bench fig1  [--quick]   # Fig 1     — headline nqueens comparison (sim)
//! nowa-bench fig7  [--quick] [--bench fib]   # Fig 7 — all 12 speedup curves (sim)
//! nowa-bench fig8  [--quick]   # Fig 8     — madvise impact (sim)
//! nowa-bench table2 [--size quick]           # Table II — peak RSS (real)
//! nowa-bench fig9  [--quick]   # Fig 9     — CL vs THE queue (sim)
//! nowa-bench fig10 [--quick]   # Fig 10    — Nowa vs OpenMP stand-ins (sim)
//! nowa-bench table3 [--quick]  # Table III — 256-worker exec times (sim)
//! nowa-bench measured [--size quick] [--workers N] [--reps R] [--stats]  # real wall-clock
//! nowa-bench overhead [--size quick] [--stats]   # real 1-worker overhead
//! nowa-bench trace measured [--size tiny] [--trace-out t.json]  # traced re-run
//! nowa-bench profile fib [--size quick] [--out BENCH_profile.json]  # causal profile
//! nowa-bench trace-overhead [--size quick]       # CI gate: tracing cost ≤ 10%
//! nowa-bench all   [--quick]   # everything above
//! ```
//!
//! `--stats` appends aggregated scheduler counters ([`nowa_runtime::StatsSnapshot`])
//! to the `measured` and `overhead` reports. `trace` re-runs a real experiment
//! with per-worker event rings and latency histograms enabled ([`traceexp`]);
//! `--trace-out FILE` exports a Chrome `trace_event` JSON for Perfetto.
//! `wakeup` ([`wakeexp`]) measures spawn-to-steal wakeup latency and idle
//! CPU burn of the idle engine against a pre-engine emulation, writing
//! `BENCH_wakeup.json`. `spawn` ([`spawnexp`]) measures the per-spawn
//! fast-path cost (ns and TSC cycles) with the §6g split layer on and
//! off, per flavor, writing `BENCH_spawn.json`; it doubles as the CI gate
//! keeping the split-on fast path within budget. `serve` ([`serveexp`])
//! drives the §6h async serving surface with open-loop Poisson arrivals
//! over local socket pairs — one `spawn_async` handler per connection, a
//! fork/join DAG per request — sweeping offered load and reporting
//! p50/p99/p999 latency, writing `BENCH_serve.json`; it doubles as the CI
//! smoke gate for the reactor path. `profile` ([`profileexp`]) reconstructs the
//! fork/join DAG from causal trace events and reports work T1, span T∞,
//! parallelism, steal-edge statistics, and per-phase critical-path
//! attribution, writing `BENCH_profile.json`; `trace-overhead` is the CI
//! gate keeping tracing within its overhead budget. All `BENCH_*.json`
//! artifacts carry the versioned [`artifact`] envelope.

#![warn(missing_docs)]

pub mod artifact;
#[cfg(feature = "chaos")]
pub mod chaosexp;
pub mod profileexp;
pub mod real;
pub mod serveexp;
pub mod simexp;
pub mod spawnexp;
pub mod stats;
pub mod traceexp;
pub mod wakeexp;

pub use stats::Table;

/// Prints a batch of tables to stdout.
pub fn print_tables(tables: &[Table]) {
    for t in tables {
        println!("{}", t.render());
    }
}
