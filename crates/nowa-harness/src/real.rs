//! Real-runtime measurements on this host: wall-clock comparisons of the
//! actual implementations (Nowa flavors, baseline pools, serial elision)
//! and the Table II RSS experiment.
//!
//! Note: speedup beyond the host's CPU count is physically impossible; on
//! the reproduction host these runs validate correctness and *overhead*
//! (single-worker slowdown vs serial), while the 1–256-thread scalability
//! shapes come from the simulator (`simexp`).

use std::time::Instant;

use nowa_baselines::{BaselineKind, BaselinePool};
use nowa_context::sys::rss_kib;
use nowa_kernels::{BenchId, Size};
use nowa_runtime::{Config, Flavor, MadvisePolicy, Runtime, StatsSnapshot};

use crate::stats::{mean, std_dev, Table};

/// A real runtime system under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealRuntime {
    /// The serial elision (no runtime).
    Serial,
    /// The Nowa runtime in a given flavor with a madvise policy.
    Nowa(Flavor, MadvisePolicy),
    /// One of the baseline pools.
    Baseline(BaselineKind),
}

impl RealRuntime {
    /// Report name.
    pub fn name(&self) -> String {
        match self {
            RealRuntime::Serial => "serial".into(),
            RealRuntime::Nowa(f, MadvisePolicy::Keep) => f.name().into(),
            RealRuntime::Nowa(f, policy) => format!("{}+{:?}", f.name(), policy),
            RealRuntime::Baseline(k) => k.name().into(),
        }
    }
}

/// One measurement run: per-rep wall-clock seconds, plus the scheduler
/// counters of the runtime that executed them (`None` for serial and
/// baseline systems, which have no Nowa scheduler).
pub struct Measurement {
    /// Per-rep wall-clock seconds (warm-up excluded).
    pub times: Vec<f64>,
    /// Aggregated scheduler counters over warm-up + all reps.
    pub stats: Option<StatsSnapshot>,
}

/// Measures `bench` at `size` on `runtime` with `workers` workers,
/// `reps` repetitions after one warm-up (the paper's methodology, §V,
/// scaled down from 50+1). Returns per-rep seconds.
pub fn measure(
    runtime: RealRuntime,
    bench: BenchId,
    size: Size,
    workers: usize,
    reps: usize,
) -> Vec<f64> {
    measure_detailed(runtime, bench, size, workers, reps).times
}

/// [`measure`], but also returning the runtime's [`StatsSnapshot`] when
/// the system under test is a Nowa flavor.
pub fn measure_detailed(
    runtime: RealRuntime,
    bench: BenchId,
    size: Size,
    workers: usize,
    reps: usize,
) -> Measurement {
    let mut times = Vec::with_capacity(reps);
    let mut stats = None;
    let mut run_reps = |run: &mut dyn FnMut() -> f64| {
        let _warmup = run();
        for _ in 0..reps {
            times.push(run());
        }
    };
    match runtime {
        RealRuntime::Serial => {
            run_reps(&mut || {
                let start = Instant::now();
                let checksum = bench.run(size);
                let dt = start.elapsed().as_secs_f64();
                assert!(checksum.is_finite());
                dt
            });
        }
        RealRuntime::Nowa(flavor, policy) => {
            let rt = Runtime::new(Config::with_workers(workers).flavor(flavor).madvise(policy))
                .expect("runtime");
            run_reps(&mut || {
                let start = Instant::now();
                let checksum = rt.run(|| bench.run(size));
                let dt = start.elapsed().as_secs_f64();
                assert!(checksum.is_finite());
                dt
            });
            stats = Some(rt.stats());
        }
        RealRuntime::Baseline(kind) => {
            let pool = BaselinePool::new(kind, workers);
            run_reps(&mut || {
                let start = Instant::now();
                let checksum = pool.run(|| bench.run(size));
                let dt = start.elapsed().as_secs_f64();
                assert!(checksum.is_finite());
                dt
            });
        }
    }
    Measurement { times, stats }
}

/// Renders aggregated scheduler counters, one row per Nowa system.
fn scheduler_stats_table(title: String, rows: &[(String, StatsSnapshot)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "system",
            "spawns",
            "consumed",
            "fast-path",
            "steals",
            "attempts",
            "steal-success",
            "suspensions",
            "parks",
            "wakes",
            "spurious",
            "targeted-wake",
            "promotions",
            "promoted",
            "priv-pops",
            "promo-rate",
        ],
    );
    for (name, s) in rows {
        table.row(vec![
            name.clone(),
            s.spawns.to_string(),
            s.continuations_consumed().to_string(),
            format!("{:.3}", s.fast_path_ratio()),
            s.steals.to_string(),
            s.steal_attempts().to_string(),
            format!("{:.3}", s.steal_success_ratio()),
            s.suspensions.to_string(),
            s.parks.to_string(),
            s.wakes_issued.to_string(),
            s.wakes_spurious.to_string(),
            format!("{:.3}", s.targeted_wake_ratio()),
            s.promotions.to_string(),
            s.promoted_items.to_string(),
            s.private_pops.to_string(),
            format!("{:.3}", s.promotion_ratio()),
        ]);
    }
    table
}

/// Wall-clock comparison of the real runtime systems on this host. With
/// `show_stats`, a second table aggregates each Nowa system's scheduler
/// counters over all benchmarks (serial and baselines have none).
pub fn measured_comparison(
    size: Size,
    workers: usize,
    reps: usize,
    show_stats: bool,
) -> Vec<Table> {
    let systems = [
        RealRuntime::Serial,
        RealRuntime::Nowa(Flavor::NOWA, MadvisePolicy::Keep),
        RealRuntime::Nowa(Flavor::NOWA_THE, MadvisePolicy::Keep),
        RealRuntime::Nowa(Flavor::FIBRIL, MadvisePolicy::Keep),
        RealRuntime::Baseline(BaselineKind::ChildStealTbb),
        RealRuntime::Baseline(BaselineKind::WsTasksOmp { tied: false }),
        RealRuntime::Baseline(BaselineKind::WsTasksOmp { tied: true }),
        RealRuntime::Baseline(BaselineKind::GlobalQueueGomp),
    ];
    let mut header = vec!["benchmark".to_string()];
    header.extend(systems.iter().map(|s| s.name()));
    let mut table = Table {
        title: format!(
            "Measured wall-clock [s], {workers} workers, size {size:?}, {reps} reps (host-limited)"
        ),
        header,
        rows: Vec::new(),
    };
    let mut totals: Vec<StatsSnapshot> = vec![StatsSnapshot::default(); systems.len()];
    for bench in BenchId::ALL {
        let mut row = vec![bench.name().to_string()];
        for (i, system) in systems.into_iter().enumerate() {
            let m = measure_detailed(system, bench, size, workers, reps);
            row.push(format!("{:.4}±{:.4}", mean(&m.times), std_dev(&m.times)));
            if let Some(s) = m.stats {
                totals[i].merge(&s);
            }
        }
        table.row(row);
    }
    let mut tables = vec![table];
    if show_stats {
        let rows: Vec<(String, StatsSnapshot)> = systems
            .iter()
            .zip(&totals)
            .filter(|(s, _)| matches!(s, RealRuntime::Nowa(..)))
            .map(|(s, t)| (s.name(), *t))
            .collect();
        tables.push(scheduler_stats_table(
            format!("Scheduler statistics, aggregated over all benchmarks ({workers} workers)"),
            &rows,
        ));
    }
    tables
}

/// Single-worker overhead of each Nowa flavor relative to the serial
/// elision — the price of the runtime mechanisms themselves. With
/// `show_stats`, a second table aggregates each flavor's scheduler
/// counters over all benchmarks.
pub fn overhead_table(size: Size, reps: usize, show_stats: bool) -> Vec<Table> {
    let flavors = [Flavor::NOWA, Flavor::NOWA_THE, Flavor::FIBRIL];
    let mut table = Table::new(
        format!("Runtime overhead: T_1 / T_serial at size {size:?} (1 worker)"),
        &["benchmark", "serial [s]", "nowa", "nowa-the", "fibril"],
    );
    let mut totals: Vec<StatsSnapshot> = vec![StatsSnapshot::default(); flavors.len()];
    for bench in BenchId::ALL {
        let serial = mean(&measure(RealRuntime::Serial, bench, size, 1, reps));
        let mut row = vec![bench.name().to_string(), format!("{serial:.4}")];
        for (i, flavor) in flavors.into_iter().enumerate() {
            let m = measure_detailed(
                RealRuntime::Nowa(flavor, MadvisePolicy::Keep),
                bench,
                size,
                1,
                reps,
            );
            row.push(format!("{:.2}", mean(&m.times) / serial));
            if let Some(s) = m.stats {
                totals[i].merge(&s);
            }
        }
        table.row(row);
    }
    let mut tables = vec![table];
    if show_stats {
        let rows: Vec<(String, StatsSnapshot)> = flavors
            .iter()
            .zip(&totals)
            .map(|(f, t)| (f.name().to_string(), *t))
            .collect();
        tables.push(scheduler_stats_table(
            "Scheduler statistics, aggregated over all benchmarks (1 worker)".to_string(),
            &rows,
        ));
    }
    tables
}

/// Child-process probe for Table II: runs one benchmark under one madvise
/// policy and prints `VmHWM` (peak RSS) in KiB. Executed via self-exec so
/// each measurement starts from a fresh address space.
pub fn rss_probe(bench: BenchId, policy: MadvisePolicy, size: Size, workers: usize) -> u64 {
    let rt = Runtime::new(Config::with_workers(workers).madvise(policy)).expect("runtime");
    let checksum = rt.run(|| bench.run(size));
    assert!(checksum.is_finite());
    drop(rt);
    rss_kib().map(|(_, hwm)| hwm).unwrap_or(0)
}

/// Table II: max RSS with and without `madvise()`, via self-exec probes.
pub fn table2(size: Size, workers: usize) -> Vec<Table> {
    let exe = std::env::current_exe().expect("current exe");
    let probe = |bench: BenchId, policy: &str| -> Option<u64> {
        let out = std::process::Command::new(&exe)
            .args([
                "rss-probe",
                bench.name(),
                policy,
                match size {
                    Size::Tiny => "tiny",
                    Size::Quick => "quick",
                    Size::Medium => "medium",
                    Size::Paper => "paper",
                },
                &workers.to_string(),
            ])
            .output()
            .ok()?;
        String::from_utf8_lossy(&out.stdout).trim().parse().ok()
    };
    let mut table = Table::new(
        format!("Table II: peak RSS [MiB] wrt the use of madvise() (size {size:?})"),
        &["benchmark", "madvise off", "madvise on", "delta"],
    );
    for bench in BenchId::ALL {
        let off = probe(bench, "keep");
        let on = probe(bench, "free");
        match (off, on) {
            (Some(off), Some(on)) => {
                table.row(vec![
                    bench.name().to_string(),
                    format!("{:.1}", off as f64 / 1024.0),
                    format!("{:.1}", on as f64 / 1024.0),
                    format!("{:+.1}", (on as f64 - off as f64) / 1024.0),
                ]);
            }
            _ => {
                table.row(vec![
                    bench.name().to_string(),
                    "?".into(),
                    "?".into(),
                    "?".into(),
                ]);
            }
        }
    }
    vec![table]
}

/// Ablation (§V-A): the global stack pool under stress. `cholesky`
/// recirculates stacks heavily; disabling the per-worker caches and
/// varying the pool's stripe count exposes (and dampens) the single-pool
/// bottleneck the paper describes.
pub fn pool_ablation(size: Size, workers: usize, reps: usize) -> Vec<Table> {
    let mut table = Table::new(
        format!(
            "Ablation: stack-pool configuration on cholesky (size {size:?}, {workers} workers)"
        ),
        &[
            "configuration",
            "time [s]",
            "pool gets",
            "pool puts",
            "mmaps",
        ],
    );
    for (label, cache, stripes) in [
        ("per-worker cache + 1 stripe (paper)", 8usize, 1usize),
        ("no cache, 1 stripe (worst)", 0, 1),
        ("no cache, 8 stripes (improved pool)", 0, 8),
        ("cache + 8 stripes", 8, 8),
    ] {
        let mut config = Config::with_workers(workers);
        config.stack_cache = cache;
        config.pool_stripes = stripes;
        let rt = Runtime::new(config).expect("runtime");
        let mut times = Vec::new();
        let _ = rt.run(|| BenchId::Cholesky.run(size)); // warm-up
        for _ in 0..reps {
            let start = Instant::now();
            let checksum = rt.run(|| BenchId::Cholesky.run(size));
            times.push(start.elapsed().as_secs_f64());
            assert!(checksum.is_finite());
        }
        let (gets, puts, maps) = rt.pool_stats();
        table.row(vec![
            label.to_string(),
            format!("{:.4}±{:.4}", mean(&times), std_dev(&times)),
            gets.to_string(),
            puts.to_string(),
            maps.to_string(),
        ]);
    }
    vec![table]
}

/// The §V-A knapsack spawn-order experiment: branch-and-bound work depends
/// on execution order, so continuation- and child-stealing runtimes prefer
/// opposite spawn orders.
pub fn knapsack_order(workers: usize, reps: usize) -> Vec<Table> {
    use nowa_kernels::knapsack::{knapsack, random_items, SpawnOrder};
    let (items, capacity) = random_items(23, 9);
    let expected = nowa_kernels::knapsack::knapsack_reference(&items, capacity);
    let mut table = Table::new(
        "Knapsack spawn order (§V-A): time [s] per runtime and order",
        &[
            "runtime",
            "take-first (paper's default)",
            "skip-first (switched)",
        ],
    );
    let bench = |run: &mut dyn FnMut(SpawnOrder) -> i64| -> (String, String) {
        let mut cell = |order: SpawnOrder| -> String {
            let mut times = Vec::new();
            let _ = run(order);
            for _ in 0..reps {
                let start = Instant::now();
                let got = run(order);
                times.push(start.elapsed().as_secs_f64());
                assert_eq!(got, expected, "knapsack result mismatch");
            }
            format!("{:.4}±{:.4}", mean(&times), std_dev(&times))
        };
        (cell(SpawnOrder::TakeFirst), cell(SpawnOrder::SkipFirst))
    };
    {
        let rt = Runtime::new(Config::with_workers(workers)).expect("runtime");
        let (a, b) = bench(&mut |order| rt.run(|| knapsack(&items, capacity, order)));
        table.row(vec!["nowa".into(), a, b]);
    }
    {
        let pool = BaselinePool::new(BaselineKind::ChildStealTbb, workers);
        let (a, b) = bench(&mut |order| pool.run(|| knapsack(&items, capacity, order)));
        table.row(vec!["tbb-like (child stealing)".into(), a, b]);
    }
    vec![table]
}

/// Table I: the benchmark inventory.
pub fn table1() -> Vec<Table> {
    let mut table = Table::new(
        "Table I: description of the 12 benchmarks",
        &["benchmark", "paper input", "description", "paper SLOC"],
    );
    for bench in BenchId::ALL {
        table.row(vec![
            bench.name().to_string(),
            bench.paper_input().to_string(),
            bench.description().to_string(),
            bench.paper_sloc().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_measurement_returns_reps() {
        let times = measure(RealRuntime::Serial, BenchId::Fib, Size::Tiny, 1, 3);
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|t| *t >= 0.0));
    }

    #[test]
    fn nowa_measurement_works() {
        let times = measure(
            RealRuntime::Nowa(Flavor::NOWA, MadvisePolicy::Keep),
            BenchId::Nqueens,
            Size::Tiny,
            2,
            2,
        );
        assert_eq!(times.len(), 2);
    }

    #[test]
    fn baseline_measurement_works() {
        let times = measure(
            RealRuntime::Baseline(BaselineKind::ChildStealTbb),
            BenchId::Fib,
            Size::Tiny,
            2,
            2,
        );
        assert_eq!(times.len(), 2);
    }

    #[test]
    fn detailed_measurement_reports_stats_for_nowa_only() {
        let m = measure_detailed(
            RealRuntime::Nowa(Flavor::NOWA, MadvisePolicy::Keep),
            BenchId::Fib,
            Size::Tiny,
            2,
            1,
        );
        let stats = m.stats.expect("nowa runs report scheduler stats");
        assert!(stats.spawns > 0);
        assert_eq!(stats.spawns, stats.continuations_consumed());
        let serial = measure_detailed(RealRuntime::Serial, BenchId::Fib, Size::Tiny, 1, 1);
        assert!(serial.stats.is_none());
    }

    #[test]
    fn stats_table_formats_idle_counters() {
        let s = StatsSnapshot {
            spawns: 10,
            fast_pops: 8,
            steals: 2,
            parks: 4,
            wakes_issued: 3,
            wakes_spurious: 1,
            ..Default::default()
        };
        let t = scheduler_stats_table("t".to_string(), &[("nowa".to_string(), s)]);
        for col in ["parks", "wakes", "spurious", "targeted-wake"] {
            assert!(t.header.iter().any(|h| h == col), "missing column {col}");
        }
        let rendered = t.render();
        assert!(rendered.contains('4'), "parks value rendered:\n{rendered}");
        assert!(rendered.contains('3'), "wakes value rendered:\n{rendered}");
        // targeted_wake_ratio = (parks − spurious) / parks = 3/4.
        assert!(rendered.contains("0.750"), "{rendered}");
    }

    #[test]
    fn stats_table_formats_promotion_counters() {
        let s = StatsSnapshot {
            spawns: 16,
            fast_pops: 12,
            steals: 4,
            promotions: 5,
            promoted_items: 4,
            private_pops: 11,
            ..Default::default()
        };
        let t = scheduler_stats_table("t".to_string(), &[("nowa".to_string(), s)]);
        for col in ["promotions", "promoted", "priv-pops", "promo-rate"] {
            assert!(t.header.iter().any(|h| h == col), "missing column {col}");
        }
        let rendered = t.render();
        assert!(
            rendered.contains("11"),
            "private pops rendered:\n{rendered}"
        );
        // promotion_ratio = promoted_items / spawns = 4/16.
        assert!(rendered.contains("0.250"), "{rendered}");
    }

    #[test]
    fn table1_lists_all_benchmarks() {
        let t = table1();
        assert_eq!(t[0].rows.len(), 12);
    }

    #[test]
    fn rss_probe_reports_positive() {
        let hwm = rss_probe(BenchId::Fib, MadvisePolicy::Keep, Size::Tiny, 2);
        assert!(hwm > 0);
    }
}
