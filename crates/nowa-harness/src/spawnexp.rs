//! `nowa-bench spawn` — spawn fast-path microbenchmark (DESIGN.md §6g).
//!
//! The split-deque work (§6g) claims the common spawn no longer pays for
//! thief-safety: with the private segment enabled, a spawn whose
//! continuation is popped back by its own worker touches no shared atomic
//! at all. This experiment measures that claim directly, per flavor, with
//! the split layer on and off:
//!
//! 1. **Fast path** — one worker (no thief can exist), a tight `join2`
//!    loop. Every iteration is exactly one spawn, one owner pop of the
//!    just-pushed continuation, and one trivially-satisfied sync: the
//!    purest spawn/sync round trip the runtime has. Reported as
//!    nanoseconds and TSC cycles per iteration, best-of-`reps` (minimum —
//!    the run least disturbed by the host).
//! 2. **Steal path** — two workers running `fib`, where a fraction of
//!    continuations is stolen and must cross the promotion path. Reported
//!    per spawn over the whole run, plus the steal/promotion counters that
//!    show the path was actually exercised.
//!
//! Results are printed as a table and written to `BENCH_spawn.json` in the
//! versioned [`crate::artifact`] envelope. The return value is the CI
//! gate: with the split layer on, the one-worker fast path must not be
//! slower than with it off by more than [`GATE_SLACK`] (the whole point of
//! the layer is that it makes this path *cheaper*; the slack absorbs host
//! noise, not a regression).

use std::collections::BTreeMap;
use std::time::Instant;

use nowa_runtime::{api, Config, Flavor, Runtime, SplitConfig};
use nowa_trace::json::Json;

use crate::stats::Table;

/// Gate: split-on fast-path ns/spawn ≤ split-off × this factor.
pub const GATE_SLACK: f64 = 1.15;

const FLAVORS: [Flavor; 5] = [
    Flavor::NOWA,
    Flavor::NOWA_THE,
    Flavor::NOWA_ABP,
    Flavor::NOWA_LOCKED_DEQUE,
    Flavor::FIBRIL,
];

/// Serial-cycle timestamp: the TSC on x86-64, 0 elsewhere (the ns column
/// is always measured; the cycles column then reads 0.0).
fn tsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC has no preconditions; it only reads the time-stamp
    // counter.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = api::join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// The measured inner loop: one spawn + one fast-path pop + one sync per
/// iteration.
fn join_loop(iters: u64) -> u64 {
    let mut acc = 0u64;
    for _ in 0..iters {
        let (a, b) = api::join2(|| 1u64, || 0u64);
        acc += a + b;
    }
    acc
}

fn split_config(enabled: bool) -> SplitConfig {
    if enabled {
        SplitConfig::default()
    } else {
        SplitConfig::disabled()
    }
}

/// One measured configuration.
struct Sample {
    flavor: Flavor,
    path: &'static str,
    split: bool,
    ns_per_spawn: f64,
    cycles_per_spawn: f64,
    spawns: u64,
    steals: u64,
    promotions: u64,
    private_pops: u64,
}

/// One worker, tight `join2` loop: the pure spawn/sync round trip.
fn measure_fast(flavor: Flavor, split: bool, iters: u64, reps: usize) -> Sample {
    let rt = Runtime::new(
        Config::with_workers(1)
            .flavor(flavor)
            .split(split_config(split)),
    )
    .expect("runtime");
    assert_eq!(rt.run(|| join_loop(1_000)), 1_000); // warm-up
    let mut best_ns = f64::INFINITY;
    let mut best_cycles = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let c0 = tsc();
        let got = rt.run(|| join_loop(iters));
        let cycles = tsc().wrapping_sub(c0);
        let ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(got, iters);
        best_ns = best_ns.min(ns / iters as f64);
        best_cycles = best_cycles.min(cycles as f64 / iters as f64);
    }
    let s = rt.stats();
    Sample {
        flavor,
        path: "fast",
        split,
        ns_per_spawn: best_ns,
        cycles_per_spawn: best_cycles,
        spawns: s.spawns,
        steals: s.steals,
        promotions: s.promotions,
        private_pops: s.private_pops,
    }
}

/// Two workers, `fib`: spawns whose continuations thieves fight over.
fn measure_steal(flavor: Flavor, split: bool, n: u64, reps: usize) -> Sample {
    let rt = Runtime::new(
        Config::with_workers(2)
            .flavor(flavor)
            .split(split_config(split)),
    )
    .expect("runtime");
    let expected = fib_serial(n);
    assert_eq!(rt.run(|| fib(n)), expected); // warm-up
    let before = rt.stats();
    let mut best_ns_total = f64::INFINITY;
    let mut best_cycles_total = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let c0 = tsc();
        assert_eq!(rt.run(|| fib(n)), expected);
        best_cycles_total = best_cycles_total.min(tsc().wrapping_sub(c0) as f64);
        best_ns_total = best_ns_total.min(t0.elapsed().as_nanos() as f64);
    }
    let after = rt.stats();
    let spawns = (after.spawns - before.spawns) / reps as u64;
    let per = spawns.max(1) as f64;
    Sample {
        flavor,
        path: "steal",
        split,
        ns_per_spawn: best_ns_total / per,
        cycles_per_spawn: best_cycles_total / per,
        spawns: after.spawns,
        steals: after.steals,
        promotions: after.promotions,
        private_pops: after.private_pops,
    }
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

fn json_of(s: &Sample) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("flavor".into(), Json::Str(s.flavor.name().into()));
    obj.insert("path".into(), Json::Str(s.path.into()));
    obj.insert("split".into(), Json::Bool(s.split));
    obj.insert("ns_per_spawn".into(), Json::Num(s.ns_per_spawn));
    obj.insert("cycles_per_spawn".into(), Json::Num(s.cycles_per_spawn));
    obj.insert("spawns".into(), Json::Num(s.spawns as f64));
    obj.insert("steals".into(), Json::Num(s.steals as f64));
    obj.insert("promotions".into(), Json::Num(s.promotions as f64));
    obj.insert("private_pops".into(), Json::Num(s.private_pops as f64));
    Json::Obj(obj)
}

/// Runs the spawn microbenchmark, prints the table, writes
/// `BENCH_spawn.json`, and returns the CI gate verdict (`false` = the
/// split-on fast path regressed past [`GATE_SLACK`]).
pub fn spawn_bench(quick: bool) -> bool {
    let (iters, reps, steal_n) = if quick {
        (100_000u64, 3usize, 16u64)
    } else {
        (1_000_000, 5, 20)
    };

    let mut samples = Vec::new();
    for flavor in FLAVORS {
        // The fused Fibril deque has no split layer: measure it once, as
        // the lock-based baseline both columns compare against.
        let splits: &[bool] = if flavor == Flavor::FIBRIL {
            &[false]
        } else {
            &[true, false]
        };
        for &split in splits {
            samples.push(measure_fast(flavor, split, iters, reps));
        }
        for &split in splits {
            samples.push(measure_steal(flavor, split, steal_n, reps));
        }
    }

    let mut table = Table::new(
        format!(
            "Spawn fast path (§6g): per-spawn cost, split on vs off \
             ({iters} iters, best of {reps})"
        ),
        &[
            "flavor",
            "path",
            "split",
            "ns/spawn",
            "cycles/spawn",
            "steals",
            "promotions",
            "priv-pops",
        ],
    );
    for s in &samples {
        table.row(vec![
            s.flavor.name().into(),
            s.path.into(),
            if s.flavor == Flavor::FIBRIL {
                "—".into()
            } else if s.split {
                "on".into()
            } else {
                "off".into()
            },
            format!("{:.1}", s.ns_per_spawn),
            format!("{:.0}", s.cycles_per_spawn),
            s.steals.to_string(),
            s.promotions.to_string(),
            s.private_pops.to_string(),
        ]);
    }
    crate::print_tables(&[table]);

    let find = |flavor: Flavor, path: &str, split: bool| {
        samples
            .iter()
            .find(|s| s.flavor == flavor && s.path == path && s.split == split)
            .expect("sample present")
    };
    let on = find(Flavor::NOWA, "fast", true).ns_per_spawn;
    let off = find(Flavor::NOWA, "fast", false).ns_per_spawn;
    let pass = on <= off * GATE_SLACK;

    let mut gate = BTreeMap::new();
    gate.insert("fast_on_ns".into(), Json::Num(on));
    gate.insert("fast_off_ns".into(), Json::Num(off));
    gate.insert("limit_ratio".into(), Json::Num(GATE_SLACK));
    gate.insert("pass".into(), Json::Bool(pass));

    let mut root = BTreeMap::new();
    root.insert("iters".into(), Json::Num(iters as f64));
    root.insert("reps".into(), Json::Num(reps as f64));
    root.insert("steal_fib_n".into(), Json::Num(steal_n as f64));
    root.insert(
        "samples".into(),
        Json::Arr(samples.iter().map(json_of).collect()),
    );
    root.insert("gate".into(), Json::Obj(gate));
    crate::artifact::write(
        "BENCH_spawn.json",
        &crate::artifact::envelope("nowa-bench-spawn", root),
    );

    if pass {
        println!(
            "spawn gate OK: split-on fast path {on:.1} ns/spawn vs \
             split-off {off:.1} ns/spawn (limit ×{GATE_SLACK})"
        );
    } else {
        eprintln!(
            "spawn gate FAILED: split-on fast path {on:.1} ns/spawn vs \
             split-off {off:.1} ns/spawn exceeds limit ×{GATE_SLACK}"
        );
    }
    pass
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_sample_is_private_when_split_on() {
        let s = measure_fast(Flavor::NOWA, true, 2_000, 1);
        assert!(s.ns_per_spawn > 0.0);
        assert_eq!(s.steals, 0, "one worker cannot steal");
        assert!(
            s.private_pops > 0,
            "split-on single-worker pops must be private"
        );
    }

    #[test]
    fn fast_path_sample_has_no_private_pops_when_split_off() {
        let s = measure_fast(Flavor::NOWA, false, 2_000, 1);
        assert_eq!(s.private_pops, 0, "split off: no private segment");
    }

    #[test]
    fn steal_path_sample_counts_spawns() {
        let s = measure_steal(Flavor::NOWA, true, 10, 1);
        assert!(s.spawns > 0);
        assert!(s.ns_per_spawn > 0.0);
    }
}
