//! Simulator-based experiment sweeps (the 1–256-thread figures).

use nowa_sim::{bench_dags, simulate, CostModel, SimBench, SimConfig, SimFlavor};

use crate::stats::{geo_mean, Table};

/// A named simulator configuration: flavor + madvise knob + optional cost
/// adjustments (used to derive the Cilk Plus stand-in from the lock-based
/// protocol, §V-D: "Both runtimes use a similar locking approach as
/// Fibril", with Cilk Plus's heavier frame bookkeeping).
#[derive(Clone)]
pub struct SimSystem {
    /// Display label.
    pub label: &'static str,
    /// Replayed flavor.
    pub flavor: SimFlavor,
    /// madvise-on-suspension knob.
    pub madvise: bool,
    /// Cost model override.
    pub costs: CostModel,
}

impl SimSystem {
    fn plain(label: &'static str, flavor: SimFlavor) -> SimSystem {
        SimSystem {
            label,
            flavor,
            madvise: false,
            costs: CostModel::default(),
        }
    }

    /// Cilk Plus stand-in: Fibril's locking structure plus heavier
    /// per-spawn frame bookkeeping (full frames, hyperobject hooks).
    fn cilkplus() -> SimSystem {
        let mut costs = CostModel::default();
        costs.spawn += 18;
        costs.pop += 8;
        costs.steal_success += 120;
        SimSystem {
            label: "cilkplus",
            flavor: SimFlavor::FibrilLock,
            madvise: false,
            costs,
        }
    }
}

/// The thread counts swept by the paper's figures.
pub const PAPER_THREADS: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256];

/// A reduced sweep for quick runs.
pub const QUICK_THREADS: [usize; 6] = [1, 4, 16, 64, 128, 256];

/// Runs `bench` at `scale` under `flavor` for each thread count and
/// returns the speedups.
pub fn speedup_curve(
    bench: SimBench,
    scale: u32,
    flavor: SimFlavor,
    madvise: bool,
    threads: &[usize],
) -> Vec<f64> {
    let system = SimSystem {
        label: "",
        flavor,
        madvise,
        costs: CostModel::default(),
    };
    system_curve(bench, scale, &system, threads)
}

/// Runs `bench` at `scale` under a full [`SimSystem`] description.
pub fn system_curve(
    bench: SimBench,
    scale: u32,
    system: &SimSystem,
    threads: &[usize],
) -> Vec<f64> {
    let dag = bench_dags::generate(bench, scale);
    threads
        .iter()
        .map(|&p| {
            let mut cfg = SimConfig::new(system.flavor, p);
            cfg.madvise = system.madvise;
            cfg.costs = system.costs.clone();
            simulate(&dag, cfg).speedup()
        })
        .collect()
}

fn curve_table(
    title: &str,
    bench: SimBench,
    scale: u32,
    systems: &[SimSystem],
    threads: &[usize],
) -> Table {
    let mut header = vec!["threads".to_string()];
    header.extend(systems.iter().map(|s| s.label.to_string()));
    let mut table = Table {
        title: format!("{title} — {} (scale {scale})", bench.name()),
        header,
        rows: Vec::new(),
    };
    let curves: Vec<Vec<f64>> = systems
        .iter()
        .map(|s| system_curve(bench, scale, s, threads))
        .collect();
    for (i, &p) in threads.iter().enumerate() {
        let mut row = vec![p.to_string()];
        row.extend(curves.iter().map(|c| format!("{:.2}", c[i])));
        table.row(row);
    }
    table
}

fn fig7_flavors() -> Vec<SimSystem> {
    vec![
        SimSystem::plain("nowa", SimFlavor::NowaCl),
        SimSystem::plain("fibril", SimFlavor::FibrilLock),
        SimSystem::cilkplus(),
        SimSystem::plain("tbb", SimFlavor::ChildStealTbb),
    ]
}

/// Figure 1: the headline nqueens comparison.
pub fn fig1(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick {
        &QUICK_THREADS
    } else {
        &PAPER_THREADS
    };
    let scale = if quick {
        SimBench::Nqueens.quick_scale()
    } else {
        SimBench::Nqueens.default_scale()
    };
    vec![curve_table(
        "Fig 1 (sim): speedup of runtime systems",
        SimBench::Nqueens,
        scale,
        &fig7_flavors(),
        threads,
    )]
}

/// Figure 7: all twelve benchmarks over the runtime systems.
pub fn fig7(bench_filter: Option<SimBench>, quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick {
        &QUICK_THREADS
    } else {
        &PAPER_THREADS
    };
    let benches: Vec<SimBench> = match bench_filter {
        Some(b) => vec![b],
        None => SimBench::ALL.to_vec(),
    };
    let mut tables: Vec<Table> = benches
        .iter()
        .map(|&b| {
            let scale = if quick {
                b.quick_scale()
            } else {
                b.default_scale()
            };
            curve_table(
                "Fig 7 (sim): speedup 1-256 threads",
                b,
                scale,
                &fig7_flavors(),
                threads,
            )
        })
        .collect();
    // Summary: average speedup ratios at max threads (the paper's headline
    // numbers: nowa/fibril 1.17x, nowa/tbb 3.84x w/o knapsack).
    let p_max = *threads.last().expect("non-empty sweep");
    let mut ratios_fibril = Vec::new();
    let mut ratios_tbb = Vec::new();
    let mut summary = Table::new(
        format!("Fig 7 summary: speedup ratio vs nowa at {p_max} threads (sim)"),
        &[
            "benchmark",
            "nowa",
            "fibril",
            "tbb",
            "nowa/fibril",
            "nowa/tbb",
        ],
    );
    for &b in &benches {
        let scale = if quick {
            b.quick_scale()
        } else {
            b.default_scale()
        };
        let nowa = *speedup_curve(b, scale, SimFlavor::NowaCl, false, &[p_max])
            .first()
            .expect("one value");
        let fibril = *speedup_curve(b, scale, SimFlavor::FibrilLock, false, &[p_max])
            .first()
            .expect("one value");
        let tbb = *speedup_curve(b, scale, SimFlavor::ChildStealTbb, false, &[p_max])
            .first()
            .expect("one value");
        if b != SimBench::Knapsack {
            ratios_fibril.push(nowa / fibril);
            ratios_tbb.push(nowa / tbb);
        }
        summary.row(vec![
            b.name().to_string(),
            format!("{nowa:.2}"),
            format!("{fibril:.2}"),
            format!("{tbb:.2}"),
            format!("{:.2}", nowa / fibril),
            format!("{:.2}", nowa / tbb),
        ]);
    }
    summary.row(vec![
        "geo-mean (w/o knapsack)".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.2}", geo_mean(&ratios_fibril)),
        format!("{:.2}", geo_mean(&ratios_tbb)),
    ]);
    tables.push(summary);
    tables
}

/// Figure 8: impact of `madvise()` (the eight benchmarks the paper plots).
pub fn fig8(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick {
        &QUICK_THREADS
    } else {
        &PAPER_THREADS
    };
    let benches = [
        SimBench::Cholesky,
        SimBench::Lu,
        SimBench::Heat,
        SimBench::Fib,
        SimBench::Matmul,
        SimBench::Nqueens,
        SimBench::Integrate,
        SimBench::Rectmul,
    ];
    let flavors = vec![
        SimSystem::plain("nowa-w/o-madvise", SimFlavor::NowaCl),
        SimSystem {
            label: "nowa-w/-madvise",
            flavor: SimFlavor::NowaCl,
            madvise: true,
            costs: CostModel::default(),
        },
        SimSystem::cilkplus(),
    ];
    let mut tables: Vec<Table> = benches
        .iter()
        .map(|&b| {
            let scale = if quick {
                b.quick_scale()
            } else {
                b.default_scale()
            };
            curve_table(
                "Fig 8 (sim): impact of madvise()",
                b,
                scale,
                &flavors,
                threads,
            )
        })
        .collect();
    // Average performance ratio with/without madvise at max threads.
    let p_max = *threads.last().expect("non-empty sweep");
    let mut ratios = Vec::new();
    for &b in &benches {
        let scale = if quick {
            b.quick_scale()
        } else {
            b.default_scale()
        };
        let without = speedup_curve(b, scale, SimFlavor::NowaCl, false, &[p_max])[0];
        let with = speedup_curve(b, scale, SimFlavor::NowaCl, true, &[p_max])[0];
        ratios.push(with / without);
    }
    let mut summary = Table::new(
        format!("Fig 8 summary at {p_max} threads (paper: avg 0.73x)"),
        &["metric", "value"],
    );
    summary.row(vec![
        "geo-mean speedup ratio w/ madvise vs w/o".into(),
        format!("{:.2}", geo_mean(&ratios)),
    ]);
    tables.push(summary);
    tables
}

/// Figure 9: CL queue versus THE queue under the wait-free protocol.
pub fn fig9(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick {
        &QUICK_THREADS
    } else {
        &PAPER_THREADS
    };
    let benches = [
        SimBench::Cholesky,
        SimBench::Fib,
        SimBench::Nqueens,
        SimBench::Matmul,
    ];
    let flavors = vec![
        SimSystem::plain("nowa-cl", SimFlavor::NowaCl),
        SimSystem::plain("nowa-the", SimFlavor::NowaThe),
        SimSystem::plain("fibril", SimFlavor::FibrilLock),
    ];
    benches
        .iter()
        .map(|&b| {
            let scale = if quick {
                b.quick_scale()
            } else {
                b.default_scale()
            };
            curve_table("Fig 9 (sim): CL vs THE queue", b, scale, &flavors, threads)
        })
        .collect()
}

/// Figure 10: Nowa against the OpenMP stand-ins (and TBB).
pub fn fig10(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick {
        &QUICK_THREADS
    } else {
        // The paper uses 1, 64, 128, 192, 256 for the OpenMP comparison.
        &[1, 64, 128, 192, 256]
    };
    let flavors = vec![
        SimSystem::plain("nowa", SimFlavor::NowaCl),
        SimSystem::plain("tbb", SimFlavor::ChildStealTbb),
        SimSystem::plain("libgomp", SimFlavor::GlobalQueueGomp),
        SimSystem::plain("libomp-untied", SimFlavor::WsTasksOmp { tied: false }),
        SimSystem::plain("libomp-tied", SimFlavor::WsTasksOmp { tied: true }),
    ];
    let mut tables: Vec<Table> = SimBench::ALL
        .iter()
        .map(|&b| {
            let scale = if quick {
                b.quick_scale()
            } else {
                b.default_scale()
            };
            curve_table("Fig 10 (sim): Nowa vs OpenMP", b, scale, &flavors, threads)
        })
        .collect();
    // Headline averages (paper: nowa 8.68x over libomp untied, 5.47x tied,
    // 486.93x over libgomp).
    let p_max = *threads.last().expect("non-empty sweep");
    let (mut r_untied, mut r_tied, mut r_gomp) = (Vec::new(), Vec::new(), Vec::new());
    for &b in &SimBench::ALL {
        let scale = if quick {
            b.quick_scale()
        } else {
            b.default_scale()
        };
        let nowa = speedup_curve(b, scale, SimFlavor::NowaCl, false, &[p_max])[0];
        let untied = speedup_curve(
            b,
            scale,
            SimFlavor::WsTasksOmp { tied: false },
            false,
            &[p_max],
        )[0];
        let tied = speedup_curve(
            b,
            scale,
            SimFlavor::WsTasksOmp { tied: true },
            false,
            &[p_max],
        )[0];
        let gomp = speedup_curve(b, scale, SimFlavor::GlobalQueueGomp, false, &[p_max])[0];
        r_untied.push(nowa / untied);
        r_tied.push(nowa / tied);
        r_gomp.push(nowa / gomp);
    }
    let mut summary = Table::new(
        format!("Fig 10 summary: nowa speedup ratio at {p_max} threads (sim)"),
        &["vs", "geo-mean ratio"],
    );
    summary.row(vec![
        "libomp-untied".into(),
        format!("{:.2}", geo_mean(&r_untied)),
    ]);
    summary.row(vec![
        "libomp-tied".into(),
        format!("{:.2}", geo_mean(&r_tied)),
    ]);
    summary.row(vec!["libgomp".into(), format!("{:.2}", geo_mean(&r_gomp))]);
    tables.push(summary);
    tables
}

/// Table III: virtual execution times at 256 workers, Nowa vs libomp.
pub fn table3(quick: bool) -> Vec<Table> {
    let p = 256;
    let mut table = Table::new(
        "Table III (sim): execution times using 256 workers [virtual ms]",
        &["benchmark", "nowa", "libomp-untied", "libomp-tied"],
    );
    for &b in &SimBench::ALL {
        let scale = if quick {
            b.quick_scale()
        } else {
            b.default_scale()
        };
        let dag = bench_dags::generate(b, scale);
        let ms = |flavor: SimFlavor| -> f64 {
            simulate(&dag, SimConfig::new(flavor, p)).makespan as f64 / 1e6
        };
        table.row(vec![
            b.name().to_string(),
            format!("{:.3}", ms(SimFlavor::NowaCl)),
            format!("{:.3}", ms(SimFlavor::WsTasksOmp { tied: false })),
            format!("{:.3}", ms(SimFlavor::WsTasksOmp { tied: true })),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_one_value_per_thread_count() {
        let c = speedup_curve(SimBench::Fib, 14, SimFlavor::NowaCl, false, &[1, 4, 16]);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn fig1_quick_produces_table() {
        let tables = fig1(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), QUICK_THREADS.len());
    }

    #[test]
    fn speedup_grows_with_threads_nowa_fib() {
        let c = speedup_curve(
            SimBench::Fib,
            SimBench::Fib.quick_scale(),
            SimFlavor::NowaCl,
            false,
            &[1, 16],
        );
        assert!(c[1] > 2.0 * c[0], "16 workers should beat 1: {c:?}");
    }
}
