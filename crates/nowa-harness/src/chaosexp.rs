//! Chaos stress mode: seeded fault injection over the real kernels.
//!
//! `nowa-bench chaos --seed N --iters K` runs a kernel subset under the
//! [`ChaosConfig::aggressive`] profile — forced steal failures, forced
//! suspensions, spurious pre-push yields, injected stack-`mmap` failures —
//! on both the NOWA and FIBRIL flavors, verifying every result against a
//! serial reference run. A separate phase injects child panics (rate
//! `u16::MAX`, i.e. the first spawned child panics) and checks the payload
//! propagates to the caller as a recognisable
//! [`nowa_runtime::chaos::ChaosPanic`]. A final determinism
//! check replays one seed twice on a single worker and compares the
//! injection counters, which must match exactly.
//!
//! The point is not performance (injections make everything slower) but
//! surviving hostile interleavings: every run must still produce correct
//! results, and the injected-fault counters prove the rare paths actually
//! executed.
//!
//! `nowa-bench cancel-soak` is the cancellation sibling: the `ForceCancel`
//! site latches regions at the steal / sync / suspend boundaries across a
//! sweep of seeds, and every run must either complete correctly or unwind
//! with the typed `Cancelled` payload, survive, and shut down cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use nowa_kernels::{BenchId, Size};
use nowa_runtime::chaos::{ChaosPanic, ChaosSite};
use nowa_runtime::{CancelReason, Cancelled, ChaosConfig, Config, Flavor, Region, Runtime};

use crate::stats::Table;

/// Kernels exercised per iteration: integer-exact results (comparable
/// against a serial run bit-for-bit) plus one floating kernel with a
/// schedule-independent reduction tree.
const KERNELS: [BenchId; 4] = [
    BenchId::Fib,
    BenchId::Nqueens,
    BenchId::Quicksort,
    BenchId::Integrate,
];

fn chaos_runtime(flavor: Flavor, chaos: ChaosConfig, workers: usize) -> Runtime {
    let mut config = Config::with_workers(workers)
        .flavor(flavor)
        .stack_size(256 * 1024)
        .chaos(chaos);
    // No per-worker stack cache: every spawn goes through the pool, so the
    // injected map failures are actually consumed by the retry path.
    config.stack_cache = 0;
    Runtime::new(config).expect("chaos runtime")
}

/// Runs the seeded chaos stress; panics (with context) on any divergence,
/// which makes it usable as a CI gate.
pub fn chaos_stress(seed: u64, iters: usize, workers: usize) -> Vec<Table> {
    let mut results = Table::new(
        format!("chaos stress — seed {seed}, {iters} iters, {workers} workers"),
        &["flavor", "iter", "kernels", "injected (site=fired/visits)"],
    );

    let mut total_injected = [0u64; nowa_runtime::chaos::SITES];
    for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
        for iter in 0..iters {
            let chaos = ChaosConfig::aggressive(seed.wrapping_add(iter as u64));
            let rt = chaos_runtime(flavor, chaos, workers);
            let mut checked = 0;
            for bench in KERNELS {
                let reference = bench.run(Size::Tiny); // serial elision
                let got = rt.run(|| bench.run(Size::Tiny));
                assert!(
                    got == reference,
                    "chaos run diverged: {} under {flavor:?} seed {} got {got}, serial {reference}",
                    bench.name(),
                    chaos.seed,
                );
                checked += 1;
            }
            let snap = rt.chaos_stats().expect("chaos configured");
            for (total, fired) in total_injected.iter_mut().zip(snap.injected) {
                *total += fired;
            }
            results.row(vec![
                format!("{flavor:?}"),
                iter.to_string(),
                format!("{checked} ok"),
                format!("{snap}"),
            ]);
        }
    }

    // Every non-destructive fault kind must actually have fired across the
    // sweep — otherwise the "stress" exercised nothing.
    for site in [
        ChaosSite::StealFail,
        ChaosSite::ForceSuspend,
        ChaosSite::SpuriousYield,
        ChaosSite::MmapFail,
    ] {
        assert!(
            total_injected[site as usize] > 0,
            "no {site:?} injection fired over the whole sweep; rates or hook wiring broken"
        );
    }

    let mut hardening = Table::new("chaos hardening checks", &["check", "flavor", "outcome"]);
    for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
        hardening.row(vec![
            "child panic propagates".into(),
            format!("{flavor:?}"),
            panic_injection_check(flavor, seed, workers),
        ]);
    }
    hardening.row(vec![
        "same seed, same injections".into(),
        "NOWA".into(),
        determinism_check(seed),
    ]);

    vec![results, hardening]
}

/// Cancellation soak: `nowa-bench cancel-soak --seed N --iters K`.
///
/// Arms the `ForceCancel` chaos site on top of the aggressive profile, so
/// regions are latched at the steal / sync / suspend boundaries — the
/// three places a cancellation racing the join protocol is most delicate —
/// across `iters` seeds and both flavors. Every run must either complete
/// with the correct result or unwind with the typed [`Cancelled`] payload,
/// the runtime must survive the unwind and then shut down cleanly, and a
/// single-worker replay must reproduce one seed's forced-cancel sequence
/// exactly. Panics (with context) on any violation — a CI gate.
pub fn cancel_soak(seed: u64, iters: usize, workers: usize) -> Vec<Table> {
    quiet_chaos_panics();
    let mut results = Table::new(
        format!("cancel soak — base seed {seed}, {iters} seeds, {workers} workers"),
        &["flavor", "seed", "outcome", "cancels", "aborts", "shutdown"],
    );

    let reference = BenchId::Fib.run(Size::Tiny); // serial elision
    let mut cancelled_runs = 0u64;
    for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
        for iter in 0..iters {
            let s = seed.wrapping_add(iter as u64);
            let mut chaos = ChaosConfig::aggressive(s);
            chaos.force_cancel = 4096; // 1/16 per boundary visit
            let rt = chaos_runtime(flavor, chaos, workers);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                rt.run(|| {
                    // The whole kernel runs under a cancellable region, so
                    // a forced cancellation anywhere in the tree latches
                    // this scope and unwinds cooperatively.
                    let region = Region::cancellable();
                    let got = BenchId::Fib.run(Size::Tiny);
                    region.sync();
                    got
                })
            }));
            let outcome = match outcome {
                Ok(got) => {
                    assert!(
                        got == reference,
                        "cancel soak diverged: fib under {flavor:?} seed {s} \
                         got {got}, serial {reference}"
                    );
                    "completed"
                }
                Err(payload) => match payload.downcast_ref::<Cancelled>() {
                    Some(c) => {
                        assert!(
                            c.reason == CancelReason::Token,
                            "forced cancellation carried the wrong reason: {:?}",
                            c.reason
                        );
                        cancelled_runs += 1;
                        "cancelled"
                    }
                    None => panic!(
                        "cancel soak unwound with a non-Cancelled payload \
                         under {flavor:?} seed {s}"
                    ),
                },
            };
            // The runtime must survive the unwind...
            assert!(
                rt.run(|| 7) == 7,
                "runtime wedged after a cancelled run ({flavor:?} seed {s})"
            );
            let stats = rt.stats();
            // ...and drain cleanly on shutdown.
            let shutdown = match rt.shutdown(Duration::from_secs(10)) {
                Ok(()) => "ok".to_string(),
                Err(e) => panic!("shutdown failed after cancel soak ({flavor:?} seed {s}): {e}"),
            };
            results.row(vec![
                format!("{flavor:?}"),
                s.to_string(),
                outcome.into(),
                stats.cancels.to_string(),
                stats.aborts.to_string(),
                shutdown,
            ]);
        }
    }
    assert!(
        cancelled_runs > 0,
        "no forced cancellation fired across {iters} seeds — rates or hook wiring broken"
    );

    let mut hardening = Table::new("cancel determinism", &["check", "flavor", "outcome"]);
    hardening.row(vec![
        "same seed, same forced cancels".into(),
        "NOWA".into(),
        cancel_determinism_check(seed),
    ]);
    vec![results, hardening]
}

/// Replays one force-cancel seed twice on a single worker; outcome kind
/// and injection counters must match exactly.
fn cancel_determinism_check(seed: u64) -> String {
    let run = || {
        let mut chaos = ChaosConfig::with_seed(seed);
        chaos.force_cancel = 4096;
        let rt = chaos_runtime(Flavor::NOWA, chaos, 1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rt.run(|| {
                let region = Region::cancellable();
                let got = BenchId::Fib.run(Size::Tiny);
                region.sync();
                got
            })
        }));
        let kind = match &outcome {
            Ok(v) => format!("completed({v})"),
            Err(p) => format!(
                "cancelled({:?})",
                p.downcast_ref::<Cancelled>().map(|c| c.reason)
            ),
        };
        (kind, rt.chaos_stats().expect("chaos configured"))
    };
    let first = run();
    let second = run();
    assert!(
        first == second,
        "same seed produced different cancellation behaviour: {first:?} vs {second:?}"
    );
    format!("ok ({} — {})", first.0, first.1)
}

/// Silences the default panic hook for injected [`ChaosPanic`] payloads
/// and cooperative [`Cancelled`] unwinds so the expected panics below
/// don't spray backtraces over the report.
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<ChaosPanic>().is_none() && p.downcast_ref::<Cancelled>().is_none() {
                default(info);
            }
        }));
    });
}

/// Injects a panic into the first spawned child and verifies the payload
/// reaches the `Runtime::run` caller intact.
fn panic_injection_check(flavor: Flavor, seed: u64, workers: usize) -> String {
    quiet_chaos_panics();
    let mut chaos = ChaosConfig::with_seed(seed);
    chaos.child_panic = u16::MAX; // every child panics
    let rt = chaos_runtime(flavor, chaos, workers);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        rt.run(|| {
            let (a, b) = nowa_runtime::api::join2(|| 1, || 2);
            a + b
        })
    }));
    match outcome {
        Err(payload) => match payload.downcast_ref::<ChaosPanic>() {
            Some(p) => format!("ok (ChaosPanic from worker {})", p.worker),
            None => panic!("panic propagated but payload was not ChaosPanic"),
        },
        Ok(v) => panic!("injected child panic did not propagate (got {v})"),
    }
}

/// Replays one seed twice on a single worker; the injection counters must
/// match exactly (single-worker schedules are deterministic).
fn determinism_check(seed: u64) -> String {
    let run = || {
        let rt = chaos_runtime(Flavor::NOWA, ChaosConfig::aggressive(seed), 1);
        let _ = rt.run(|| BenchId::Fib.run(Size::Tiny));
        rt.chaos_stats().expect("chaos configured")
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same seed produced different injection sequences"
    );
    format!("ok ({first})")
}
