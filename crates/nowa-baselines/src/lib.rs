//! # nowa-baselines — comparator runtime systems
//!
//! The paper's evaluation compares Nowa against closed or external
//! comparators. This crate provides in-tree stand-ins that reproduce the
//! *mechanisms* the paper attributes to each (see DESIGN.md §2):
//!
//! * [`BaselineKind::ChildStealTbb`] — **TBB stand-in**: child-stealing
//!   work-stealing pool. `spawn` defers a heap-allocated child task to the
//!   worker's deque; the parent continues; joins busy-help. Children
//!   therefore execute in *reverse* order (§V-A's knapsack discussion) and
//!   every spawn pays a dynamic allocation (§II-B).
//! * [`BaselineKind::WsTasksOmp`] — **libomp stand-in**: the same
//!   child-stealing structure plus the heavier per-task bookkeeping of an
//!   OpenMP tasking implementation (per-task mutex/condvar signalling),
//!   with **tied**/**untied** task modes: a worker waiting at a taskwait
//!   with tied tasks may only execute tasks from its own deque.
//! * [`BaselineKind::GlobalQueueGomp`] — **libgomp stand-in**: one central
//!   mutex-protected task queue with condvar signalling on every
//!   submission — the design whose contention makes fine-grained task
//!   parallelism collapse (Fig. 10's `libgomp` curves).
//!
//! All three implement [`nowa_runtime::ForeignForkJoin`], so the unmodified
//! kernels from `nowa-kernels` run on them through the same
//! `nowa_runtime::api` entry points.

#![warn(missing_docs)]

use core::cell::Cell;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use nowa_runtime::foreign::{clear_foreign_executor, set_foreign_executor, ForeignForkJoin};
use parking_lot::{Condvar, Mutex};

/// Which baseline mechanism the pool implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Child-stealing work-stealing pool (TBB stand-in).
    ChildStealTbb,
    /// OpenMP-style tasking over work stealing (libomp stand-in).
    WsTasksOmp {
        /// Tied tasks: a waiting worker only runs tasks from its own deque.
        tied: bool,
    },
    /// Central locked queue (libgomp stand-in).
    GlobalQueueGomp,
}

impl BaselineKind {
    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::ChildStealTbb => "tbb-like",
            BaselineKind::WsTasksOmp { tied: false } => "libomp-like-untied",
            BaselineKind::WsTasksOmp { tied: true } => "libomp-like-tied",
            BaselineKind::GlobalQueueGomp => "libgomp-like",
        }
    }

    /// Parses the names produced by [`BaselineKind::name`].
    pub fn parse(name: &str) -> Option<BaselineKind> {
        match name {
            "tbb-like" | "tbb" => Some(BaselineKind::ChildStealTbb),
            "libomp-like-untied" | "omp-untied" => Some(BaselineKind::WsTasksOmp { tied: false }),
            "libomp-like-tied" | "omp-tied" => Some(BaselineKind::WsTasksOmp { tied: true }),
            "libgomp-like" | "gomp" => Some(BaselineKind::GlobalQueueGomp),
            _ => None,
        }
    }

    /// All baseline kinds.
    pub const ALL: [BaselineKind; 4] = [
        BaselineKind::ChildStealTbb,
        BaselineKind::WsTasksOmp { tied: false },
        BaselineKind::WsTasksOmp { tied: true },
        BaselineKind::GlobalQueueGomp,
    ];
}

/// Heavy completion state for the OpenMP stand-in (one mutex + condvar per
/// task — the per-task bookkeeping cost the paper's Fig. 10 exposes).
struct HeavyState {
    lock: Mutex<bool>,
    cv: Condvar,
}

/// One deferred task.
struct TaskNode {
    /// The work; taken (under the lock) by whoever executes the task.
    closure: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
    /// Completion flag (Release on set, Acquire on read).
    done: AtomicBool,
    /// Present in the OpenMP stand-in only.
    heavy: Option<HeavyState>,
}

type TaskRef = Arc<TaskNode>;

impl TaskNode {
    fn new(kind: BaselineKind, f: Box<dyn FnOnce() + Send + 'static>) -> TaskRef {
        let heavy = matches!(kind, BaselineKind::WsTasksOmp { .. }).then(|| HeavyState {
            lock: Mutex::new(false),
            cv: Condvar::new(),
        });
        Arc::new(TaskNode {
            closure: Mutex::new(Some(f)),
            done: AtomicBool::new(false),
            heavy,
        })
    }

    /// Executes the task if it has not been claimed yet.
    fn execute(&self) {
        let work = self.closure.lock().take();
        if let Some(work) = work {
            work();
            self.done.store(true, Ordering::Release);
            if let Some(h) = &self.heavy {
                let mut done = h.lock.lock();
                *done = true;
                h.cv.notify_all();
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

struct PoolInner {
    kind: BaselineKind,
    shutdown: AtomicBool,
    /// Per-worker deques (TBB / OMP kinds).
    deques: Box<[Mutex<VecDeque<TaskRef>>]>,
    /// The central queue: the only queue for the gomp kind; the injection
    /// queue for the others.
    central: Mutex<VecDeque<TaskRef>>,
    /// Signals task availability / shutdown.
    cv: Condvar,
    cv_lock: Mutex<()>,
    /// Tasks executed (stat).
    executed: AtomicU64,
    /// Steals (stat).
    steals: AtomicU64,
}

std::thread_local! {
    /// `(pool, worker index)` of the calling baseline worker thread.
    static CURRENT: Cell<Option<(*const PoolInner, usize)>> = const { Cell::new(None) };
}

impl PoolInner {
    fn me(&self) -> Option<usize> {
        CURRENT.with(|c| match c.get() {
            Some((pool, idx)) if core::ptr::eq(pool, self) => Some(idx),
            _ => None,
        })
    }

    fn submit(&self, me: Option<usize>, task: TaskRef) {
        match (self.kind, me) {
            (BaselineKind::GlobalQueueGomp, _) | (_, None) => {
                self.central.lock().push_back(task);
            }
            (_, Some(idx)) => {
                self.deques[idx].lock().push_back(task);
            }
        }
        self.cv.notify_one();
    }

    /// Takes the next task under the normal worker discipline:
    /// own deque (LIFO) → steal (FIFO) → central queue.
    fn next_task(&self, me: usize) -> Option<TaskRef> {
        match self.kind {
            BaselineKind::GlobalQueueGomp => self.central.lock().pop_front(),
            _ => {
                if let Some(t) = self.deques[me].lock().pop_back() {
                    return Some(t);
                }
                let n = self.deques.len();
                for i in 1..n {
                    let victim = (me + i) % n;
                    if let Some(t) = self.deques[victim].lock().pop_front() {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                }
                self.central.lock().pop_front()
            }
        }
    }

    /// Help discipline while waiting for `target` at a join (taskwait).
    fn wait_for(&self, me: usize, target: &TaskNode) {
        let tied = matches!(self.kind, BaselineKind::WsTasksOmp { tied: true });
        while !target.is_done() {
            let task = if tied {
                // Tied tasks: the suspended task is bound to this thread;
                // the scheduler may only run tasks from our own deque
                // (created here) while we wait.
                self.deques[me].lock().pop_back()
            } else {
                self.next_task(me)
            };
            match task {
                Some(t) => {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    t.execute();
                }
                None => {
                    if let Some(h) = &target.heavy {
                        // OpenMP stand-in: sleep on the task's condvar.
                        let mut done = h.lock.lock();
                        if !*done {
                            h.cv.wait_for(&mut done, std::time::Duration::from_micros(100));
                        }
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

impl ForeignForkJoin for PoolInner {
    fn join2_dyn(&self, a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send)) {
        let Some(me) = self.me() else {
            // Not a pool worker: degrade to serial.
            a();
            b();
            return;
        };
        // Defer `b` as a child task (child stealing: the deferred child may
        // be stolen; the parent continues with `a` immediately).
        struct RawClosure(*mut (dyn FnMut() + Send + 'static));
        unsafe impl Send for RawClosure {}
        // SAFETY: lifetime erasure of the borrow behind `b`; the shim runs
        // at most once, and `wait_for` below blocks until it has completed,
        // so the borrow outlives every use.
        let raw = RawClosure(unsafe {
            core::mem::transmute::<*mut (dyn FnMut() + Send), *mut (dyn FnMut() + Send + 'static)>(
                b as *mut (dyn FnMut() + Send),
            )
        });
        let shim: Box<dyn FnOnce() + Send + 'static> = Box::new(move || unsafe {
            let raw = raw;
            (*raw.0)()
        });
        let task = TaskNode::new(self.kind, shim);
        self.submit(Some(me), task.clone());
        a();
        // Fast path: reclaim the child if nobody stole it.
        task.execute();
        self.wait_for(me, &task);
    }
}

fn worker_main(pool: Arc<PoolInner>, index: usize) {
    CURRENT.with(|c| c.set(Some((Arc::as_ptr(&pool), index))));
    // SAFETY: the pool outlives the worker (joined before PoolInner drops).
    unsafe { set_foreign_executor(Arc::as_ptr(&pool) as *const (dyn ForeignForkJoin + 'static)) };
    loop {
        if pool.shutdown.load(Ordering::Acquire) {
            break;
        }
        match pool.next_task(index) {
            Some(t) => {
                pool.executed.fetch_add(1, Ordering::Relaxed);
                t.execute();
            }
            None => {
                let mut guard = pool.cv_lock.lock();
                pool.cv
                    .wait_for(&mut guard, std::time::Duration::from_micros(200));
            }
        }
    }
    clear_foreign_executor();
    CURRENT.with(|c| c.set(None));
}

/// A baseline runtime instance.
pub struct BaselinePool {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
}

impl BaselinePool {
    /// Starts a pool with `workers` threads.
    pub fn new(kind: BaselineKind, workers: usize) -> BaselinePool {
        assert!(workers > 0, "baseline pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            kind,
            shutdown: AtomicBool::new(false),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            central: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cv_lock: Mutex::new(()),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|i| {
                let pool = inner.clone();
                std::thread::Builder::new()
                    .name(format!("{}-worker-{i}", kind.name()))
                    .spawn(move || worker_main(pool, i))
                    .expect("spawning baseline worker")
            })
            .collect();
        BaselinePool { inner, threads }
    }

    /// The pool's kind.
    pub fn kind(&self) -> BaselineKind {
        self.inner.kind
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// `(tasks executed, steals)` since startup.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.executed.load(Ordering::Relaxed),
            self.inner.steals.load(Ordering::Relaxed),
        )
    }

    /// Runs `f` as a root task and blocks until it completes; panics are
    /// propagated. Like `Runtime::run`, must not be called from a worker.
    pub fn run<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        assert!(
            self.inner.me().is_none(),
            "BaselinePool::run must not be called from a pool worker"
        );
        struct Completion<R> {
            slot: Mutex<Option<std::thread::Result<R>>>,
            cv: Condvar,
        }
        let completion = Arc::new(Completion {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        {
            let completion = completion.clone();
            let task: Box<dyn FnOnce() + Send> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(f));
                *completion.slot.lock() = Some(result);
                completion.cv.notify_all();
            });
            // SAFETY: lifetime erasure; we block until completion below.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { core::mem::transmute(task) };
            self.inner
                .submit(None, TaskNode::new(self.inner.kind, task));
        }
        let mut guard = completion.slot.lock();
        while guard.is_none() {
            completion.cv.wait(&mut guard);
        }
        match guard.take().expect("completion filled") {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for BaselinePool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = nowa_runtime::join2(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn kinds_round_trip() {
        for k in BaselineKind::ALL {
            assert_eq!(BaselineKind::parse(k.name()), Some(k));
        }
    }

    #[test]
    fn fib_on_all_baselines() {
        for kind in BaselineKind::ALL {
            let pool = BaselinePool::new(kind, 4);
            assert_eq!(pool.run(|| fib(18)), 2584, "{}", kind.name());
            let (executed, _) = pool.stats();
            assert!(executed >= 1, "{}", kind.name());
        }
    }

    #[test]
    fn child_stealing_steals_under_load() {
        let pool = BaselinePool::new(BaselineKind::ChildStealTbb, 4);
        assert_eq!(pool.run(|| fib(22)), 17711);
        let (_, steals) = pool.stats();
        assert!(steals > 0, "4 workers on fib(22) must steal");
    }

    #[test]
    fn panics_propagate() {
        let pool = BaselinePool::new(BaselineKind::ChildStealTbb, 2);
        let result =
            std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(|| panic!("baseline boom"))));
        assert!(result.is_err());
        assert_eq!(pool.run(|| 5), 5);
    }

    #[test]
    fn sequential_runs() {
        let pool = BaselinePool::new(BaselineKind::GlobalQueueGomp, 2);
        for i in 0..20u64 {
            assert_eq!(pool.run(|| fib(10) + i), 55 + i);
        }
    }

    #[test]
    fn borrows_across_run() {
        let data: Vec<u64> = (0..50).collect();
        let pool = BaselinePool::new(BaselineKind::WsTasksOmp { tied: false }, 3);
        let sum = pool.run(|| {
            nowa_runtime::map_reduce(0..data.len(), 4, &|i| data[i], &|a, b| a + b).unwrap()
        });
        assert_eq!(sum, 49 * 50 / 2);
    }
}
