//! `cholesky` — Cholesky factorisation (Table I: input 4000/40000 sparse in
//! the original; here a dense recursive blocked factorisation — see
//! DESIGN.md for the substitution rationale).
//!
//! `A = L·Lᵀ` on the lower triangle, recursively: factor the leading block,
//! right-solve the panel against `L11ᵀ`, symmetric-downdate the trailing
//! block, recurse. The panel solve and the downdate parallelise internally;
//! the heavy stack churn of the deep recursion is what stresses the stack
//! pool (§V-A's `cholesky` discussion).

use crate::dense::{syrk_lower_sub, trsm_right_lower_trans, Mat, MatMut};

/// In-place Cholesky of the lower triangle of the view.
fn cholesky_rec(a: MatMut<'_>, base: usize) {
    let mut a = a;
    let n = a.rows();
    debug_assert_eq!(n, a.cols());
    if n <= base {
        // Serial lower Cholesky.
        for j in 0..n {
            let mut d = a.at(j, j);
            for k in 0..j {
                d -= a.at(j, k) * a.at(j, k);
            }
            assert!(d > 0.0, "matrix not positive definite");
            let d = d.sqrt();
            *a.at_mut(j, j) = d;
            for i in j + 1..n {
                let mut s = a.at(i, j);
                for k in 0..j {
                    s -= a.at(i, k) * a.at(j, k);
                }
                *a.at_mut(i, j) = s / d;
            }
        }
        return;
    }
    let h = n / 2;
    let [mut a11, _a12, mut a21, a22] = a.split_quad(h, h);
    cholesky_rec(a11.rb_mut(), base);
    trsm_right_lower_trans(a11.as_ref(), a21.rb_mut(), base);
    let mut a22 = a22;
    syrk_lower_sub(a21.as_ref(), a22.rb_mut(), base);
    cholesky_rec(a22, base);
}

/// Factorises the SPD matrix `a` in place; afterwards the lower triangle
/// holds `L` (the strict upper triangle is left untouched).
pub fn cholesky(a: &mut Mat, base: usize) {
    assert_eq!(a.rows(), a.cols());
    cholesky_rec(a.as_mut(), base.max(4));
}

/// Serial reference factorisation.
pub fn cholesky_serial(a: &mut Mat) {
    let n = a.rows();
    for j in 0..n {
        let mut d = a.at(j, j);
        for k in 0..j {
            d -= a.at(j, k) * a.at(j, k);
        }
        assert!(d > 0.0, "matrix not positive definite");
        let d = d.sqrt();
        *a.at_mut(j, j) = d;
        for i in j + 1..n {
            let mut s = a.at(i, j);
            for k in 0..j {
                s -= a.at(i, k) * a.at(j, k);
            }
            *a.at_mut(i, j) = s / d;
        }
    }
}

/// A symmetric positive-definite pseudo-random matrix (`B·Bᵀ + n·I`).
pub fn spd_matrix(n: usize, seed: u64) -> Mat {
    let mut x = seed | 1;
    let b = Mat::from_fn(n, n, |_, _| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x % 1000) as f64) / 1000.0 - 0.5
    });
    let mut a = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += b.at(i, k) * b.at(j, k);
            }
            *a.at_mut(i, j) = s;
        }
        *a.at_mut(i, i) += n as f64;
    }
    a
}

/// Max abs error of `L·Lᵀ − A` over the lower triangle (test helper).
pub fn residual(l_packed: &Mat, original: &Mat) -> f64 {
    let n = original.rows();
    let mut worst: f64 = 0.0;
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for k in 0..=j {
                s += l_packed.at(i, k) * l_packed.at(j, k);
            }
            worst = worst.max((s - original.at(i, j)).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let original = spd_matrix(40, 31);
        let mut par = original.clone();
        let mut ser = original.clone();
        cholesky(&mut par, 8);
        cholesky_serial(&mut ser);
        // Compare lower triangles.
        for i in 0..40 {
            for j in 0..=i {
                assert!((par.at(i, j) - ser.at(i, j)).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn factor_reconstructs_input() {
        let original = spd_matrix(33, 32);
        let mut packed = original.clone();
        cholesky(&mut packed, 8);
        assert!(residual(&packed, &original) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn indefinite_matrix_rejected() {
        let mut m = Mat::zeros(4, 4);
        *m.at_mut(0, 0) = -1.0;
        cholesky_serial(&mut m);
    }
}
