//! `fft` — fast Fourier transformation (Table I: input 2²⁶, 3054 SLOC in
//! the original; this is a compact radix-2 reimplementation).
//!
//! Recursive decimation-in-time Cooley–Tukey with a ping-pong scratch
//! buffer: both half-transforms run in parallel, and the butterfly combine
//! is recursively split as well.

use nowa_runtime::join2;

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cpx {
    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> Cpx {
        Cpx { re, im }
    }

    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }

    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// Precomputed twiddle factors `w[k] = exp(-2πik/n)` for `k < n/2`.
pub fn twiddles(n: usize) -> Vec<Cpx> {
    (0..n / 2)
        .map(|k| {
            let angle = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
            Cpx::new(angle.cos(), angle.sin())
        })
        .collect()
}

/// Butterfly combine: `out_lo[k] = e[k] + w^k o[k]`, `out_hi[k] = e[k] − w^k o[k]`,
/// recursively split so the O(n) combine is parallel too.
#[allow(clippy::too_many_arguments)]
fn combine(
    out_lo: &mut [Cpx],
    out_hi: &mut [Cpx],
    even: &[Cpx],
    odd: &[Cpx],
    tw: &[Cpx],
    stride: usize,
    k0: usize,
    grain: usize,
) {
    let n = out_lo.len();
    if n <= grain {
        for k in 0..n {
            let w = tw[(k0 + k) * stride];
            let t = w.mul(odd[k]);
            out_lo[k] = even[k].add(t);
            out_hi[k] = even[k].sub(t);
        }
        return;
    }
    let h = n / 2;
    let (ol1, ol2) = out_lo.split_at_mut(h);
    let (oh1, oh2) = out_hi.split_at_mut(h);
    let (e1, e2) = even.split_at(h);
    let (o1, o2) = odd.split_at(h);
    join2(
        move || combine(ol1, oh1, e1, o1, tw, stride, k0, grain),
        move || combine(ol2, oh2, e2, o2, tw, stride, k0 + h, grain),
    );
}

/// Serial O(n²) DFT used below the recursion cutoff (and as the test
/// reference).
pub fn dft_naive(input: &[Cpx]) -> Vec<Cpx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Cpx::default();
            for (j, x) in input.iter().enumerate() {
                let angle = -2.0 * core::f64::consts::PI * (k * j % n) as f64 / n as f64;
                acc = acc.add(x.mul(Cpx::new(angle.cos(), angle.sin())));
            }
            acc
        })
        .collect()
}

fn fft_rec(buf: &mut [Cpx], scratch: &mut [Cpx], tw: &[Cpx], stride: usize, grain: usize) {
    let n = buf.len();
    if n == 1 {
        return;
    }
    if n <= grain.max(2) && n <= 32 {
        let out = dft_naive(buf);
        buf.copy_from_slice(&out);
        return;
    }
    let h = n / 2;
    // Deinterleave into the scratch halves.
    for i in 0..h {
        scratch[i] = buf[2 * i];
        scratch[h + i] = buf[2 * i + 1];
    }
    {
        let (s_lo, s_hi) = scratch.split_at_mut(h);
        let (b_lo, b_hi) = buf.split_at_mut(h);
        join2(
            move || fft_rec(s_lo, b_lo, tw, stride * 2, grain),
            move || fft_rec(s_hi, b_hi, tw, stride * 2, grain),
        );
    }
    let (even, odd) = scratch.split_at(h);
    let (out_lo, out_hi) = buf.split_at_mut(h);
    combine(out_lo, out_hi, even, odd, tw, stride, 0, grain.max(16));
}

/// In-place FFT of a power-of-two-length buffer.
pub fn fft(buf: &mut [Cpx], grain: usize) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    let tw = twiddles(n);
    let mut scratch = vec![Cpx::default(); n];
    fft_rec(buf, &mut scratch, &tw, 1, grain);
}

/// Deterministic pseudo-random signal.
pub fn random_signal(n: usize, seed: u64) -> Vec<Cpx> {
    let mut x = seed | 1;
    let mut rand = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 2000) as f64 / 1000.0 - 1.0
    };
    (0..n).map(|_| Cpx::new(rand(), rand())).collect()
}

/// Energy checksum (Parseval-friendly).
pub fn spectrum_energy(buf: &[Cpx]) -> f64 {
    buf.iter().map(|c| c.norm_sq()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_dft() {
        for log_n in [3usize, 5, 7] {
            let n = 1 << log_n;
            let signal = random_signal(n, 11);
            let expected = dft_naive(&signal);
            let mut buf = signal;
            fft(&mut buf, 4);
            for (a, b) in buf.iter().zip(&expected) {
                assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 1 << 10;
        let signal = random_signal(n, 5);
        let time_energy = spectrum_energy(&signal);
        let mut buf = signal;
        fft(&mut buf, 64);
        let freq_energy = spectrum_energy(&buf) / n as f64;
        let rel = (time_energy - freq_energy).abs() / time_energy;
        assert!(rel < 1e-10, "Parseval violated: {rel}");
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut buf = vec![Cpx::default(); n];
        buf[0] = Cpx::new(1.0, 0.0);
        fft(&mut buf, 8);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }
}
