//! `knapsack` — recursive 0/1 knapsack via branch-and-bound (Table I:
//! input 32 items, 164 SLOC).
//!
//! Spawns one task per branch of the search tree; pruning uses the shared
//! best-so-far bound, so the amount of work depends heavily on execution
//! order (§V-A discusses the resulting scheduler sensitivity — it is the
//! one benchmark where continuation-stealing order hurts with the original
//! spawn order).

use core::sync::atomic::{AtomicI64, Ordering};

use nowa_runtime::join2;

/// One knapsack item.
#[derive(Debug, Clone, Copy)]
pub struct Item {
    /// Item value.
    pub value: i64,
    /// Item weight.
    pub weight: i64,
}

/// Deterministic pseudo-random instance, sorted by value density
/// (descending) as the classic benchmark requires for its bound.
pub fn random_items(n: usize, seed: u64) -> (Vec<Item>, i64) {
    let mut x = seed | 1;
    let mut rand = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut items: Vec<Item> = (0..n)
        .map(|_| Item {
            value: (rand() % 90 + 10) as i64,
            weight: (rand() % 90 + 10) as i64,
        })
        .collect();
    items.sort_by(|a, b| {
        (b.value * a.weight)
            .cmp(&(a.value * b.weight))
            .then(b.value.cmp(&a.value))
    });
    let total_weight: i64 = items.iter().map(|i| i.weight).sum();
    // Capacity around half the total weight makes interesting instances.
    (items, total_weight / 2)
}

/// Fractional-relaxation upper bound for the remaining items.
#[inline]
fn upper_bound(items: &[Item], capacity: i64, value: i64) -> i64 {
    let mut cap = capacity;
    let mut ub = value;
    for item in items {
        if item.weight <= cap {
            cap -= item.weight;
            ub += item.value;
        } else {
            // Fractional part: round up.
            ub += item.value * cap / item.weight + 1;
            break;
        }
    }
    ub
}

fn branch(
    items: &[Item],
    capacity: i64,
    value: i64,
    best: &AtomicI64,
    spawn_order: SpawnOrder,
) -> i64 {
    if capacity < 0 {
        return i64::MIN;
    }
    if items.is_empty() || capacity == 0 {
        best.fetch_max(value, Ordering::Relaxed);
        return value;
    }
    if upper_bound(items, capacity, value) < best.load(Ordering::Relaxed) {
        // This subtree cannot beat the incumbent.
        return i64::MIN;
    }
    let item = items[0];
    let rest = &items[1..];
    let (with, without) = match spawn_order {
        // The paper's original order: the "take the item" branch is the
        // spawned child (runs first under continuation stealing).
        SpawnOrder::TakeFirst => join2(
            move || {
                branch(
                    rest,
                    capacity - item.weight,
                    value + item.value,
                    best,
                    spawn_order,
                )
            },
            move || branch(rest, capacity, value, best, spawn_order),
        ),
        // The switched order §V-A describes, which favours
        // continuation-stealing runtimes.
        SpawnOrder::SkipFirst => {
            let (without, with) = join2(
                move || branch(rest, capacity, value, best, spawn_order),
                move || {
                    branch(
                        rest,
                        capacity - item.weight,
                        value + item.value,
                        best,
                        spawn_order,
                    )
                },
            );
            (with, without)
        }
    };
    let result = with.max(without);
    if result > i64::MIN {
        best.fetch_max(result, Ordering::Relaxed);
    }
    result
}

/// Which branch the spawn statement takes first (§V-A's ordering
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnOrder {
    /// Original benchmark order: include-the-item branch spawned first.
    TakeFirst,
    /// Switched order: exclude-the-item branch spawned first.
    SkipFirst,
}

/// Solves the 0/1 knapsack instance, returning the best value.
pub fn knapsack(items: &[Item], capacity: i64, order: SpawnOrder) -> i64 {
    let best = AtomicI64::new(0);
    branch(items, capacity, 0, &best, order).max(best.load(Ordering::Relaxed))
}

/// Exact dynamic-programming reference (O(n · capacity)).
pub fn knapsack_reference(items: &[Item], capacity: i64) -> i64 {
    let cap = capacity.max(0) as usize;
    let mut dp = vec![0i64; cap + 1];
    for item in items {
        let w = item.weight as usize;
        if w > cap {
            continue;
        }
        for c in (w..=cap).rev() {
            dp[c] = dp[c].max(dp[c - w] + item.value);
        }
    }
    dp[cap]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_and_bound_matches_dp() {
        for seed in 1..6u64 {
            let (items, capacity) = random_items(16, seed);
            let expected = knapsack_reference(&items, capacity);
            assert_eq!(knapsack(&items, capacity, SpawnOrder::TakeFirst), expected);
            assert_eq!(knapsack(&items, capacity, SpawnOrder::SkipFirst), expected);
        }
    }

    #[test]
    fn items_sorted_by_density() {
        let (items, _) = random_items(20, 3);
        for w in items.windows(2) {
            // a.value/a.weight >= b.value/b.weight, cross-multiplied.
            assert!(w[0].value * w[1].weight >= w[1].value * w[0].weight);
        }
    }

    #[test]
    fn zero_capacity_is_zero() {
        let (items, _) = random_items(8, 7);
        assert_eq!(knapsack(&items, 0, SpawnOrder::TakeFirst), 0);
    }
}
