//! `lu` — LU decomposition without pivoting (Table I: input 4096,
//! 269 SLOC).
//!
//! Recursive blocked factorisation in the Cilk `lu` shape: factor the
//! top-left quadrant, solve the two panels **in parallel**, downdate the
//! trailing quadrant with a parallel GEMM, recurse. The input is made
//! diagonally dominant so pivoting is unnecessary (as in the original
//! benchmark).

use crate::dense::{gemm, trsm_lower_left, trsm_right_upper, Mat, MatMut, Op};
use nowa_runtime::join2;

/// In-place LU of the view: afterwards the strictly-lower part holds `L`
/// (unit diagonal implied) and the upper part holds `U`.
fn lu_rec(a: MatMut<'_>, base: usize) {
    let mut a = a;
    let n = a.rows();
    debug_assert_eq!(n, a.cols());
    if n <= base {
        // Serial right-looking LU.
        for k in 0..n {
            let pivot = a.at(k, k);
            for i in k + 1..n {
                let lik = a.at(i, k) / pivot;
                *a.at_mut(i, k) = lik;
                for j in k + 1..n {
                    let sub = lik * a.at(k, j);
                    *a.at_mut(i, j) -= sub;
                }
            }
        }
        return;
    }
    let h = n / 2;
    let [mut a11, a12, a21, a22] = a.split_quad(h, h);
    lu_rec(a11.rb_mut(), base);
    let a11_ref = a11.as_ref();
    let (a12, a21) = join2(
        move || {
            let mut a12 = a12;
            // A12 := L11⁻¹ A12 (unit lower triangular forward solve).
            trsm_lower_left(a11_ref, a12.rb_mut(), true, base);
            a12
        },
        move || {
            let mut a21 = a21;
            // A21 := A21 U11⁻¹ (upper triangular right solve).
            trsm_right_upper(a11_ref, a21.rb_mut(), base);
            a21
        },
    );
    let mut a22 = a22;
    gemm(
        -1.0,
        a21.as_ref(),
        Op::N,
        a12.as_ref(),
        Op::N,
        a22.rb_mut(),
        base,
    );
    lu_rec(a22, base);
}

/// Factorises `a` in place (packed `L\U` layout). `a` must be square; use
/// [`dominant_matrix`] for a well-conditioned pivot-free input.
pub fn lu(a: &mut Mat, base: usize) {
    assert_eq!(a.rows(), a.cols());
    lu_rec(a.as_mut(), base.max(4));
}

/// Serial reference factorisation.
pub fn lu_serial(a: &mut Mat) {
    let n = a.rows();
    for k in 0..n {
        let pivot = a.at(k, k);
        for i in k + 1..n {
            let lik = a.at(i, k) / pivot;
            *a.at_mut(i, k) = lik;
            for j in k + 1..n {
                let sub = lik * a.at(k, j);
                *a.at_mut(i, j) -= sub;
            }
        }
    }
}

/// A diagonally dominant pseudo-random matrix (safe to factor unpivoted).
pub fn dominant_matrix(n: usize, seed: u64) -> Mat {
    let mut x = seed | 1;
    let mut m = Mat::from_fn(n, n, |_, _| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x % 1000) as f64) / 1000.0 - 0.5
    });
    for i in 0..n {
        *m.at_mut(i, i) += n as f64;
    }
    m
}

/// Reconstructs `L·U` from the packed factorisation (test helper).
pub fn reconstruct(packed: &Mat) -> Mat {
    let n = packed.rows();
    let mut c = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            // L(i,k) for k<i plus unit diagonal; U(k,j) for k<=j.
            let kmax = i.min(j + 1);
            for k in 0..kmax {
                s += packed.at(i, k) * packed.at(k, j);
            }
            if i <= j {
                s += packed.at(i, j); // L(i,i) = 1 times U(i,j)
            }
            c.at_mut(i, j).clone_from(&s);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let original = dominant_matrix(48, 21);
        let mut par = original.clone();
        let mut ser = original.clone();
        lu(&mut par, 8);
        lu_serial(&mut ser);
        assert!(par.max_abs_diff(&ser) < 1e-9);
    }

    #[test]
    fn factorisation_reconstructs_input() {
        let original = dominant_matrix(32, 22);
        let mut packed = original.clone();
        lu(&mut packed, 8);
        let rebuilt = reconstruct(&packed);
        assert!(rebuilt.max_abs_diff(&original) < 1e-8);
    }

    #[test]
    fn odd_size_works() {
        let original = dominant_matrix(29, 23);
        let mut packed = original.clone();
        lu(&mut packed, 4);
        assert!(reconstruct(&packed).max_abs_diff(&original) < 1e-8);
    }
}
