//! # nowa-kernels — the paper's benchmark suite
//!
//! The twelve benchmarks of Table I, adopted (as the paper did) from the
//! Cilk/Fibril lineage, reimplemented on the `nowa-runtime` fork/join API.
//! Every kernel is written against the parallel API only; running it
//! outside a runtime executes the **serial elision** (the combinators
//! degrade to sequential calls), which is exactly how the paper measures
//! `T_s`.
//!
//! | benchmark | description | paper input |
//! |---|---|---|
//! | cholesky  | Cholesky factorization           | 4000/40000 |
//! | fft       | fast Fourier transformation      | 2²⁶ |
//! | fib       | recursive Fibonacci              | 42 |
//! | heat      | Jacobi heat diffusion            | 4096 × 1024 |
//! | integrate | quadrature adaptive integration  | 10⁴ (ε = 10⁻⁹) |
//! | knapsack  | recursive knapsack               | 32 |
//! | lu        | LU-decomposition                 | 4096 |
//! | matmul    | matrix multiply                  | 2048 |
//! | nqueens   | count ways to place N queens     | 14 |
//! | quicksort | parallel quicksort               | 10⁸ |
//! | rectmul   | rectangular matrix multiply      | 4096 |
//! | strassen  | Strassen matrix multiply         | 4096 |

#![warn(missing_docs)]

pub mod cholesky;
pub mod dense;
pub mod fft;
pub mod fib;
pub mod heat;
pub mod integrate;
pub mod knapsack;
pub mod lu;
pub mod matmul;
pub mod nqueens;
pub mod quicksort;
pub mod strassen;

/// Input scale for a benchmark run.
///
/// `Paper` approximates the paper's Table I inputs (hours of serial work on
/// a laptop for some kernels); the smaller scales keep the same DAG shapes
/// at tractable sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Seconds-scale inputs (default for the harness).
    Quick,
    /// Tens-of-seconds inputs.
    Medium,
    /// Close to the paper's inputs.
    Paper,
    /// Milliseconds-scale inputs (tests).
    Tiny,
}

impl Size {
    /// Parses the size names used by the harness CLI.
    pub fn parse(name: &str) -> Option<Size> {
        match name {
            "tiny" => Some(Size::Tiny),
            "quick" => Some(Size::Quick),
            "medium" => Some(Size::Medium),
            "paper" => Some(Size::Paper),
            _ => None,
        }
    }
}

/// Identifier of one of the twelve benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchId {
    Cholesky,
    Fft,
    Fib,
    Heat,
    Integrate,
    Knapsack,
    Lu,
    Matmul,
    Nqueens,
    Quicksort,
    Rectmul,
    Strassen,
}

impl BenchId {
    /// All twelve, in Table I order.
    pub const ALL: [BenchId; 12] = [
        BenchId::Cholesky,
        BenchId::Fft,
        BenchId::Fib,
        BenchId::Heat,
        BenchId::Integrate,
        BenchId::Knapsack,
        BenchId::Lu,
        BenchId::Matmul,
        BenchId::Nqueens,
        BenchId::Quicksort,
        BenchId::Rectmul,
        BenchId::Strassen,
    ];

    /// The benchmark's name as used in the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            BenchId::Cholesky => "cholesky",
            BenchId::Fft => "fft",
            BenchId::Fib => "fib",
            BenchId::Heat => "heat",
            BenchId::Integrate => "integrate",
            BenchId::Knapsack => "knapsack",
            BenchId::Lu => "lu",
            BenchId::Matmul => "matmul",
            BenchId::Nqueens => "nqueens",
            BenchId::Quicksort => "quicksort",
            BenchId::Rectmul => "rectmul",
            BenchId::Strassen => "strassen",
        }
    }

    /// Table I description.
    pub fn description(&self) -> &'static str {
        match self {
            BenchId::Cholesky => "Cholesky factorization",
            BenchId::Fft => "Fast Fourier transformation",
            BenchId::Fib => "Recursive Fibonacci",
            BenchId::Heat => "Jaccobi heat diffusion",
            BenchId::Integrate => "Quadrature adaptive integration",
            BenchId::Knapsack => "Recursive knapsack",
            BenchId::Lu => "LU-decomposition",
            BenchId::Matmul => "Matrix multiply",
            BenchId::Nqueens => "Count ways to place N queens",
            BenchId::Quicksort => "Parallel quicksort",
            BenchId::Rectmul => "Rectangular matrix multiply",
            BenchId::Strassen => "Strassen matrix multiply",
        }
    }

    /// Table I input description (the paper's configuration).
    pub fn paper_input(&self) -> &'static str {
        match self {
            BenchId::Cholesky => "4000/40000",
            BenchId::Fft => "2^26",
            BenchId::Fib => "42",
            BenchId::Heat => "4096x1024",
            BenchId::Integrate => "10^4 (e=10^-9)",
            BenchId::Knapsack => "32",
            BenchId::Lu => "4096",
            BenchId::Matmul => "2048",
            BenchId::Nqueens => "14",
            BenchId::Quicksort => "10^8",
            BenchId::Rectmul => "4096",
            BenchId::Strassen => "4096",
        }
    }

    /// Table I SLOC of the original benchmark source.
    pub fn paper_sloc(&self) -> u32 {
        match self {
            BenchId::Cholesky => 454,
            BenchId::Fft => 3054,
            BenchId::Fib => 40,
            BenchId::Heat => 149,
            BenchId::Integrate => 59,
            BenchId::Knapsack => 164,
            BenchId::Lu => 269,
            BenchId::Matmul => 114,
            BenchId::Nqueens => 48,
            BenchId::Quicksort => 66,
            BenchId::Rectmul => 291,
            BenchId::Strassen => 621,
        }
    }

    /// Parses a benchmark name.
    pub fn parse(name: &str) -> Option<BenchId> {
        BenchId::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Human-readable input for a given scale.
    pub fn input_at(&self, size: Size) -> String {
        use Size::*;
        match self {
            BenchId::Cholesky => {
                let n = match size {
                    Tiny => 32,
                    Quick => 192,
                    Medium => 512,
                    Paper => 2048,
                };
                format!("n={n}")
            }
            BenchId::Fft => {
                let log = match size {
                    Tiny => 8,
                    Quick => 15,
                    Medium => 19,
                    Paper => 24,
                };
                format!("n=2^{log}")
            }
            BenchId::Fib => format!(
                "n={}",
                match size {
                    Tiny => 16,
                    Quick => 27,
                    Medium => 33,
                    Paper => 42,
                }
            ),
            BenchId::Heat => match size {
                Tiny => "32x32, 4 steps".into(),
                Quick => "256x128, 30 steps".into(),
                Medium => "1024x512, 60 steps".into(),
                Paper => "4096x1024, 100 steps".into(),
            },
            BenchId::Integrate => match size {
                Tiny => "range=50".into(),
                Quick => "range=1500".into(),
                Medium => "range=4000".into(),
                Paper => "range=10^4".into(),
            },
            BenchId::Knapsack => format!(
                "n={}",
                match size {
                    Tiny => 14,
                    Quick => 23,
                    Medium => 27,
                    Paper => 32,
                }
            ),
            BenchId::Lu => format!(
                "n={}",
                match size {
                    Tiny => 32,
                    Quick => 192,
                    Medium => 640,
                    Paper => 4096,
                }
            ),
            BenchId::Matmul => format!(
                "n={}",
                match size {
                    Tiny => 24,
                    Quick => 160,
                    Medium => 448,
                    Paper => 2048,
                }
            ),
            BenchId::Nqueens => format!(
                "n={}",
                match size {
                    Tiny => 6,
                    Quick => 10,
                    Medium => 12,
                    Paper => 14,
                }
            ),
            BenchId::Quicksort => format!(
                "n={}",
                match size {
                    Tiny => 1_000,
                    Quick => 300_000,
                    Medium => 3_000_000,
                    Paper => 100_000_000,
                }
            ),
            BenchId::Rectmul => match size {
                Tiny => "32x16x24".into(),
                Quick => "256x128x192".into(),
                Medium => "640x320x480".into(),
                Paper => "4096x2048x3072".into(),
            },
            BenchId::Strassen => format!(
                "n={}",
                match size {
                    Tiny => 32,
                    Quick => 128,
                    Medium => 512,
                    Paper => 4096,
                }
            ),
        }
    }

    /// Runs the benchmark at `size` on the *current* context (parallel when
    /// called from inside a runtime, serial elision otherwise) and returns
    /// a result checksum usable to compare runs.
    pub fn run(&self, size: Size) -> f64 {
        use Size::*;
        match self {
            BenchId::Cholesky => {
                let n = match size {
                    Tiny => 32,
                    Quick => 192,
                    Medium => 512,
                    Paper => 2048,
                };
                let mut a = cholesky::spd_matrix(n, 7);
                cholesky::cholesky(&mut a, 32);
                a.checksum()
            }
            BenchId::Fft => {
                let log = match size {
                    Tiny => 8,
                    Quick => 15,
                    Medium => 19,
                    Paper => 24,
                };
                let mut buf = fft::random_signal(1 << log, 3);
                fft::fft(&mut buf, 256);
                fft::spectrum_energy(&buf)
            }
            BenchId::Fib => {
                let n = match size {
                    Tiny => 16,
                    Quick => 27,
                    Medium => 33,
                    Paper => 42,
                };
                fib::fib(n, 0) as f64
            }
            BenchId::Heat => {
                let (nx, ny, steps) = match size {
                    Tiny => (32, 32, 4),
                    Quick => (256, 128, 30),
                    Medium => (1024, 512, 60),
                    Paper => (4096, 1024, 100),
                };
                let mut grid = heat::Grid::new(nx, ny);
                heat::heat(&mut grid, steps, 8);
                grid.checksum()
            }
            BenchId::Integrate => {
                let range = match size {
                    Tiny => 50.0,
                    Quick => 1500.0,
                    Medium => 4000.0,
                    Paper => 10_000.0,
                };
                integrate::integrate(range, 1e-9)
            }
            BenchId::Knapsack => {
                let n = match size {
                    Tiny => 14,
                    Quick => 23,
                    Medium => 27,
                    Paper => 32,
                };
                let (items, capacity) = knapsack::random_items(n, 9);
                knapsack::knapsack(&items, capacity, knapsack::SpawnOrder::TakeFirst) as f64
            }
            BenchId::Lu => {
                let n = match size {
                    Tiny => 32,
                    Quick => 192,
                    Medium => 640,
                    Paper => 4096,
                };
                let mut a = lu::dominant_matrix(n, 5);
                lu::lu(&mut a, 32);
                a.checksum()
            }
            BenchId::Matmul => {
                let n = match size {
                    Tiny => 24,
                    Quick => 160,
                    Medium => 448,
                    Paper => 2048,
                };
                let a = matmul::random_matrix(n, n, 1);
                let b = matmul::random_matrix(n, n, 2);
                matmul::matmul(&a, &b, 32).checksum()
            }
            BenchId::Nqueens => {
                let n = match size {
                    Tiny => 6,
                    Quick => 10,
                    Medium => 12,
                    Paper => 14,
                };
                nqueens::nqueens(n) as f64
            }
            BenchId::Quicksort => {
                let n = match size {
                    Tiny => 1_000,
                    Quick => 300_000,
                    Medium => 3_000_000,
                    Paper => 100_000_000,
                };
                let mut data = quicksort::random_input(n, 77);
                quicksort::quicksort(&mut data, 2048);
                quicksort::verify_sorted(&data).expect("sorted") as f64
            }
            BenchId::Rectmul => {
                let (m, k, n) = match size {
                    Tiny => (32, 16, 24),
                    Quick => (256, 128, 192),
                    Medium => (640, 320, 480),
                    Paper => (4096, 2048, 3072),
                };
                let a = matmul::random_matrix(m, k, 3);
                let b = matmul::random_matrix(k, n, 4);
                matmul::rectmul(&a, &b, 32).checksum()
            }
            BenchId::Strassen => {
                let n = match size {
                    Tiny => 32,
                    Quick => 128,
                    Medium => 512,
                    Paper => 4096,
                };
                let a = matmul::random_matrix(n, n, 5);
                let b = matmul::random_matrix(n, n, 6);
                strassen::strassen(&a, &b, 64).checksum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in BenchId::ALL {
            assert_eq!(BenchId::parse(b.name()), Some(b));
        }
        assert_eq!(BenchId::parse("nope"), None);
    }

    #[test]
    fn all_benchmarks_run_tiny_serially() {
        // Outside a runtime: serial elision of each kernel.
        for b in BenchId::ALL {
            let checksum = b.run(Size::Tiny);
            assert!(checksum.is_finite(), "{}", b.name());
        }
    }

    #[test]
    fn deterministic_checksums() {
        for b in BenchId::ALL {
            assert_eq!(b.run(Size::Tiny), b.run(Size::Tiny), "{}", b.name());
        }
    }

    #[test]
    fn size_parse() {
        assert_eq!(Size::parse("quick"), Some(Size::Quick));
        assert_eq!(Size::parse("paper"), Some(Size::Paper));
        assert_eq!(Size::parse("x"), None);
    }
}
