//! Dense linear-algebra substrate shared by the matrix benchmarks
//! (`matmul`, `rectmul`, `strassen`, `lu`, `cholesky`).
//!
//! A tiny row-major matrix layer with borrow-splitting views, plus the
//! recursive divide-and-conquer building blocks (`gemm`, triangular solves,
//! symmetric rank-k update) parallelised with [`nowa_runtime::join2`]-style
//! combinators. Base cases are plain loops — the benchmarks measure the
//! *runtime system*, so all flavors share identical numeric code.

use core::marker::PhantomData;

use nowa_runtime::{join2, join3, join4};

/// An owned row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds a matrix from a function of the index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the whole matrix.
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _m: PhantomData,
        }
    }

    /// Mutable view of the whole matrix.
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _m: PhantomData,
        }
    }

    /// Element access (test convenience).
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access (test convenience).
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Max absolute element difference (test convenience).
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// A simple order-sensitive checksum for result verification.
    pub fn checksum(&self) -> f64 {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + (i % 7) as f64))
            .sum()
    }
}

/// Immutable strided view.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    ptr: *const f64,
    rows: usize,
    cols: usize,
    stride: usize,
    _m: PhantomData<&'a f64>,
}

unsafe impl Send for MatRef<'_> {}
unsafe impl Sync for MatRef<'_> {}

/// Mutable strided view. Views of disjoint submatrices may be used from
/// different strands concurrently; the splitting methods guarantee
/// disjointness.
pub struct MatMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    stride: usize,
    _m: PhantomData<&'a mut f64>,
}

unsafe impl Send for MatMut<'_> {}

impl<'a> MatRef<'a> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        unsafe { *self.ptr.add(r * self.stride + c) }
    }

    /// Subview of `rr × cc` elements starting at `(r0, c0)`.
    pub fn sub(&self, r0: usize, c0: usize, rr: usize, cc: usize) -> MatRef<'a> {
        assert!(r0 + rr <= self.rows && c0 + cc <= self.cols);
        MatRef {
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: rr,
            cols: cc,
            stride: self.stride,
            _m: PhantomData,
        }
    }

    /// Splits into quadrants at `(r, c)`.
    pub fn quad(&self, r: usize, c: usize) -> [MatRef<'a>; 4] {
        [
            self.sub(0, 0, r, c),
            self.sub(0, c, r, self.cols - c),
            self.sub(r, 0, self.rows - r, c),
            self.sub(r, c, self.rows - r, self.cols - c),
        ]
    }
}

impl<'a> MatMut<'a> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        unsafe { *self.ptr.add(r * self.stride + c) }
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        unsafe { &mut *self.ptr.add(r * self.stride + c) }
    }

    /// Reborrows as immutable.
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _m: PhantomData,
        }
    }

    /// Reborrows mutably (shortens the lifetime).
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _m: PhantomData,
        }
    }

    /// Consumes the view into a subview (disjointness is trivial).
    pub fn into_sub(self, r0: usize, c0: usize, rr: usize, cc: usize) -> MatMut<'a> {
        assert!(r0 + rr <= self.rows && c0 + cc <= self.cols);
        MatMut {
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: rr,
            cols: cc,
            stride: self.stride,
            _m: PhantomData,
        }
    }

    /// Splits into two disjoint row blocks at `r`.
    pub fn split_rows(self, r: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(r <= self.rows);
        let top = MatMut {
            ptr: self.ptr,
            rows: r,
            cols: self.cols,
            stride: self.stride,
            _m: PhantomData,
        };
        let bot = MatMut {
            ptr: unsafe { self.ptr.add(r * self.stride) },
            rows: self.rows - r,
            cols: self.cols,
            stride: self.stride,
            _m: PhantomData,
        };
        (top, bot)
    }

    /// Splits into two disjoint column blocks at `c`.
    pub fn split_cols(self, c: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(c <= self.cols);
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: c,
            stride: self.stride,
            _m: PhantomData,
        };
        let right = MatMut {
            ptr: unsafe { self.ptr.add(c) },
            rows: self.rows,
            cols: self.cols - c,
            stride: self.stride,
            _m: PhantomData,
        };
        (left, right)
    }

    /// Splits into four disjoint quadrants at `(r, c)`.
    pub fn split_quad(self, r: usize, c: usize) -> [MatMut<'a>; 4] {
        let (top, bot) = self.split_rows(r);
        let (a11, a12) = top.split_cols(c);
        let (a21, a22) = bot.split_cols(c);
        [a11, a12, a21, a22]
    }
}

/// Whether an operand is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    N,
    /// Use the transpose.
    T,
}

#[inline]
fn dims(a: MatRef<'_>, op: Op) -> (usize, usize) {
    match op {
        Op::N => (a.rows(), a.cols()),
        Op::T => (a.cols(), a.rows()),
    }
}

#[inline]
fn at_op(a: MatRef<'_>, op: Op, i: usize, j: usize) -> f64 {
    match op {
        Op::N => a.at(i, j),
        Op::T => a.at(j, i),
    }
}

/// Subview of the *operated* matrix `op(A)`.
fn sub_op<'a>(a: MatRef<'a>, op: Op, r0: usize, c0: usize, rr: usize, cc: usize) -> MatRef<'a> {
    match op {
        Op::N => a.sub(r0, c0, rr, cc),
        Op::T => a.sub(c0, r0, cc, rr),
    }
}

/// Serial base-case GEMM: `C += alpha · op(A) · op(B)`.
fn gemm_base(alpha: f64, a: MatRef<'_>, op_a: Op, b: MatRef<'_>, op_b: Op, c: &mut MatMut<'_>) {
    let (m, k) = dims(a, op_a);
    let (_k2, n) = dims(b, op_b);
    debug_assert_eq!(k, _k2);
    debug_assert_eq!((c.rows(), c.cols()), (m, n));
    for i in 0..m {
        for l in 0..k {
            let ail = alpha * at_op(a, op_a, i, l);
            for j in 0..n {
                *c.at_mut(i, j) += ail * at_op(b, op_b, l, j);
            }
        }
    }
}

/// Parallel recursive GEMM: `C += alpha · op(A) · op(B)`.
///
/// Divide-and-conquer in the style of the Cilk `matmul`/`rectmul`
/// benchmarks: the largest of `m`/`n` is split into parallel halves (the C
/// blocks are disjoint); a dominant `k` is split into two *sequential*
/// halves (both update all of C).
pub fn gemm(
    alpha: f64,
    a: MatRef<'_>,
    op_a: Op,
    b: MatRef<'_>,
    op_b: Op,
    c: MatMut<'_>,
    base: usize,
) {
    let mut c = c;
    let (m, k) = dims(a, op_a);
    let (_, n) = dims(b, op_b);
    if m.max(n).max(k) <= base || m == 0 || n == 0 || k == 0 {
        gemm_base(alpha, a, op_a, b, op_b, &mut c);
        return;
    }
    if m >= n && m >= k {
        let mh = m / 2;
        let a_lo = sub_op(a, op_a, 0, 0, mh, k);
        let a_hi = sub_op(a, op_a, mh, 0, m - mh, k);
        let (c_lo, c_hi) = c.split_rows(mh);
        join2(
            move || gemm(alpha, a_lo, op_a, b, op_b, c_lo, base),
            move || gemm(alpha, a_hi, op_a, b, op_b, c_hi, base),
        );
    } else if n >= k {
        let nh = n / 2;
        let b_lo = sub_op(b, op_b, 0, 0, k, nh);
        let b_hi = sub_op(b, op_b, 0, nh, k, n - nh);
        let (c_lo, c_hi) = c.split_cols(nh);
        join2(
            move || gemm(alpha, a, op_a, b_lo, op_b, c_lo, base),
            move || gemm(alpha, a, op_a, b_hi, op_b, c_hi, base),
        );
    } else {
        let kh = k / 2;
        let a_lo = sub_op(a, op_a, 0, 0, m, kh);
        let a_hi = sub_op(a, op_a, 0, kh, m, k - kh);
        let b_lo = sub_op(b, op_b, 0, 0, kh, n);
        let b_hi = sub_op(b, op_b, kh, 0, k - kh, n);
        // Sequential: both halves update the whole of C.
        gemm(alpha, a_lo, op_a, b_lo, op_b, c.rb_mut(), base);
        gemm(alpha, a_hi, op_a, b_hi, op_b, c, base);
    }
}

/// Quadrant-parallel GEMM in the exact shape of the Cilk `matmul`
/// benchmark: two phases of four concurrent quadrant products (`join4`).
/// Requires square-ish inputs; general shapes route through [`gemm`].
pub fn matmul_quad(a: MatRef<'_>, b: MatRef<'_>, c: MatMut<'_>, base: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m <= base || k <= base || n <= base {
        gemm(1.0, a, Op::N, b, Op::N, c, base);
        return;
    }
    let (mh, kh, nh) = (m / 2, k / 2, n / 2);
    let [a11, a12, a21, a22] = a.quad(mh, kh);
    let [b11, b12, b21, b22] = b.quad(kh, nh);
    let [mut c11, mut c12, mut c21, mut c22] = c.split_quad(mh, nh);
    {
        let (c11, c12, c21, c22) = (c11.rb_mut(), c12.rb_mut(), c21.rb_mut(), c22.rb_mut());
        join4(
            move || matmul_quad(a11, b11, c11, base),
            move || matmul_quad(a11, b12, c12, base),
            move || matmul_quad(a21, b11, c21, base),
            move || matmul_quad(a21, b12, c22, base),
        );
    }
    join4(
        move || matmul_quad(a12, b21, c11, base),
        move || matmul_quad(a12, b22, c12, base),
        move || matmul_quad(a22, b21, c21, base),
        move || matmul_quad(a22, b22, c22, base),
    );
}

/// Forward substitution on row blocks: `B := L⁻¹ B` with `l` unit or
/// non-unit lower triangular, recursively parallel over B's columns.
pub fn trsm_lower_left(l: MatRef<'_>, b: MatMut<'_>, unit: bool, base: usize) {
    let mut b = b;
    let n = l.rows();
    debug_assert_eq!(n, b.rows());
    if b.cols() == 0 || n == 0 {
        return;
    }
    if b.cols() > base {
        let ch = b.cols() / 2;
        let (b_lo, b_hi) = b.split_cols(ch);
        join2(
            move || trsm_lower_left(l, b_lo, unit, base),
            move || trsm_lower_left(l, b_hi, unit, base),
        );
        return;
    }
    if n <= base {
        for j in 0..b.cols() {
            for i in 0..n {
                let mut x = b.at(i, j);
                for p in 0..i {
                    x -= l.at(i, p) * b.at(p, j);
                }
                if !unit {
                    x /= l.at(i, i);
                }
                *b.at_mut(i, j) = x;
            }
        }
        return;
    }
    let h = n / 2;
    let l11 = l.sub(0, 0, h, h);
    let l21 = l.sub(h, 0, n - h, h);
    let l22 = l.sub(h, h, n - h, n - h);
    let (mut b1, mut b2) = b.split_rows(h);
    trsm_lower_left(l11, b1.rb_mut(), unit, base);
    gemm(-1.0, l21, Op::N, b1.as_ref(), Op::N, b2.rb_mut(), base);
    trsm_lower_left(l22, b2, unit, base);
}

/// Right solve against a transposed lower factor: `B := B · L⁻ᵀ`
/// (the Cholesky panel update `L21 = A21 L11⁻ᵀ`), recursively parallel
/// over B's rows.
pub fn trsm_right_lower_trans(l: MatRef<'_>, b: MatMut<'_>, base: usize) {
    let mut b = b;
    let n = l.rows();
    debug_assert_eq!(n, b.cols());
    if b.rows() == 0 || n == 0 {
        return;
    }
    if b.rows() > base {
        let rh = b.rows() / 2;
        let (b_lo, b_hi) = b.split_rows(rh);
        join2(
            move || trsm_right_lower_trans(l, b_lo, base),
            move || trsm_right_lower_trans(l, b_hi, base),
        );
        return;
    }
    if n <= base {
        // Solve x Lᵀ = b row by row: column j of the result depends on
        // columns < j.
        for i in 0..b.rows() {
            for j in 0..n {
                let mut x = b.at(i, j);
                for p in 0..j {
                    x -= b.at(i, p) * l.at(j, p);
                }
                *b.at_mut(i, j) = x / l.at(j, j);
            }
        }
        return;
    }
    let h = n / 2;
    let l11 = l.sub(0, 0, h, h);
    let l21 = l.sub(h, 0, n - h, h);
    let l22 = l.sub(h, h, n - h, n - h);
    let (mut b1, mut b2) = b.split_cols(h);
    trsm_right_lower_trans(l11, b1.rb_mut(), base);
    gemm(-1.0, b1.as_ref(), Op::N, l21, Op::T, b2.rb_mut(), base);
    trsm_right_lower_trans(l22, b2, base);
}

/// Backward-substitution right solve: `B := B · U⁻¹` with `u` upper
/// triangular (the LU panel update `L10 = A10 U00⁻¹`).
pub fn trsm_right_upper(u: MatRef<'_>, b: MatMut<'_>, base: usize) {
    let mut b = b;
    let n = u.rows();
    debug_assert_eq!(n, b.cols());
    if b.rows() == 0 || n == 0 {
        return;
    }
    if b.rows() > base {
        let rh = b.rows() / 2;
        let (b_lo, b_hi) = b.split_rows(rh);
        join2(
            move || trsm_right_upper(u, b_lo, base),
            move || trsm_right_upper(u, b_hi, base),
        );
        return;
    }
    if n <= base {
        for i in 0..b.rows() {
            for j in 0..n {
                let mut x = b.at(i, j);
                for p in 0..j {
                    x -= b.at(i, p) * u.at(p, j);
                }
                *b.at_mut(i, j) = x / u.at(j, j);
            }
        }
        return;
    }
    let h = n / 2;
    let u11 = u.sub(0, 0, h, h);
    let u12 = u.sub(0, h, h, n - h);
    let u22 = u.sub(h, h, n - h, n - h);
    let (mut b1, mut b2) = b.split_cols(h);
    trsm_right_upper(u11, b1.rb_mut(), base);
    gemm(-1.0, b1.as_ref(), Op::N, u12, Op::N, b2.rb_mut(), base);
    trsm_right_upper(u22, b2, base);
}

/// Symmetric rank-k downdate on the lower triangle: `C := C − A Aᵀ`,
/// touching only `C[i][j]` with `i ≥ j`. Recursively parallel (`join3`
/// over the two diagonal recursions and the off-diagonal GEMM).
pub fn syrk_lower_sub(a: MatRef<'_>, c: MatMut<'_>, base: usize) {
    let mut c = c;
    let n = a.rows();
    debug_assert_eq!((c.rows(), c.cols()), (n, n));
    if n == 0 {
        return;
    }
    if n <= base {
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.at(i, p) * a.at(j, p);
                }
                *c.at_mut(i, j) -= s;
            }
        }
        return;
    }
    let h = n / 2;
    let a1 = a.sub(0, 0, h, a.cols());
    let a2 = a.sub(h, 0, n - h, a.cols());
    let [c11, _c12, c21, c22] = c.split_quad(h, h);
    join3(
        move || syrk_lower_sub(a1, c11, base),
        move || syrk_lower_sub(a2, c22, base),
        move || gemm(-1.0, a2, Op::N, a1, Op::T, c21, base),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut s = seed | 1;
        Mat::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0 - 0.5
        })
    }

    fn gemm_naive(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for l in 0..a.cols() {
                for j in 0..b.cols() {
                    *c.at_mut(i, j) += a.at(i, l) * b.at(l, j);
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let a = rand_mat(13, 17, 1);
        let b = rand_mat(17, 11, 2);
        let expected = gemm_naive(&a, &b);
        let mut c = Mat::zeros(13, 11);
        gemm(1.0, a.as_ref(), Op::N, b.as_ref(), Op::N, c.as_mut(), 4);
        assert!(c.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn gemm_transposed_operands() {
        let a = rand_mat(9, 13, 3); // used as Aᵀ: 13×9
        let b = rand_mat(7, 13, 4); // used as Bᵀ: 13×7... so C = Aᵀ(13×9)??
                                    // C (13-row space): op(A)=T gives 13×9; need op(B)=N with 9 rows.
        let b2 = rand_mat(9, 7, 5);
        let mut c = Mat::zeros(13, 7);
        gemm(1.0, a.as_ref(), Op::T, b2.as_ref(), Op::N, c.as_mut(), 3);
        // Naive check.
        let mut expected = Mat::zeros(13, 7);
        for i in 0..13 {
            for l in 0..9 {
                for j in 0..7 {
                    *expected.at_mut(i, j) += a.at(l, i) * b2.at(l, j);
                }
            }
        }
        assert!(c.max_abs_diff(&expected) < 1e-12);
        let _ = b;
    }

    #[test]
    fn matmul_quad_matches_gemm() {
        let a = rand_mat(32, 32, 6);
        let b = rand_mat(32, 32, 7);
        let expected = gemm_naive(&a, &b);
        let mut c = Mat::zeros(32, 32);
        matmul_quad(a.as_ref(), b.as_ref(), c.as_mut(), 8);
        assert!(c.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn trsm_lower_left_solves() {
        let n = 16;
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                0.1 * ((i + j) as f64 % 3.0)
            } else {
                0.0
            }
        });
        let b = rand_mat(n, 8, 8);
        let mut x = b.clone();
        trsm_lower_left(l.as_ref(), x.as_mut(), false, 4);
        // L x must reproduce b.
        let lx = gemm_naive(&l, &x);
        assert!(lx.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn trsm_right_lower_trans_solves() {
        let n = 12;
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i > j {
                0.2
            } else {
                0.0
            }
        });
        let b = rand_mat(9, n, 9);
        let mut x = b.clone();
        trsm_right_lower_trans(l.as_ref(), x.as_mut(), 4);
        // x Lᵀ must reproduce b.
        let lt = Mat::from_fn(n, n, |i, j| l.at(j, i));
        let xlt = gemm_naive(&x, &lt);
        assert!(xlt.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn trsm_right_upper_solves() {
        let n = 12;
        let u = Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.5
            } else if i < j {
                0.15
            } else {
                0.0
            }
        });
        let b = rand_mat(10, n, 10);
        let mut x = b.clone();
        trsm_right_upper(u.as_ref(), x.as_mut(), 4);
        let xu = gemm_naive(&x, &u);
        assert!(xu.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn syrk_lower_matches_naive() {
        let a = rand_mat(14, 6, 11);
        let c0 = rand_mat(14, 14, 12);
        let mut c = c0.clone();
        syrk_lower_sub(a.as_ref(), c.as_mut(), 4);
        for i in 0..14 {
            for j in 0..=i {
                let mut s = 0.0;
                for p in 0..6 {
                    s += a.at(i, p) * a.at(j, p);
                }
                assert!((c.at(i, j) - (c0.at(i, j) - s)).abs() < 1e-12);
            }
        }
        // Upper triangle untouched.
        for i in 0..14 {
            for j in i + 1..14 {
                assert_eq!(c.at(i, j), c0.at(i, j));
            }
        }
    }
}
