//! `strassen` — Strassen matrix multiply (Table I: input 4096, 621 SLOC).
//!
//! Classic seven-product recursion on power-of-two matrices; the seven
//! products run in parallel (a `join4`+`join3` tree), each on its own
//! preallocated temporaries. Below the cutoff the quadrant matmul takes
//! over.

use crate::dense::{matmul_quad, Mat, MatMut, MatRef};
use nowa_runtime::{join3, join4};

fn add_into(c: &mut Mat, a: MatRef<'_>, b: MatRef<'_>) {
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            *c.at_mut(i, j) = a.at(i, j) + b.at(i, j);
        }
    }
}

fn sub_into(c: &mut Mat, a: MatRef<'_>, b: MatRef<'_>) {
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            *c.at_mut(i, j) = a.at(i, j) - b.at(i, j);
        }
    }
}

/// `c := a · b` for square power-of-two operands.
fn strassen_rec(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>, base: usize) {
    let n = a.rows();
    if n <= base {
        // Overwrite semantics: zero then accumulate via the quadrant code.
        for i in 0..n {
            for j in 0..n {
                *c.at_mut(i, j) = 0.0;
            }
        }
        matmul_quad(a, b, c, base);
        return;
    }
    let h = n / 2;
    let [a11, a12, a21, a22] = a.quad(h, h);
    let [b11, b12, b21, b22] = b.quad(h, h);

    // Seven products, each with its own temporaries.
    let mut m = [(); 7].map(|_| Mat::zeros(h, h));
    fn prod(
        h: usize,
        left_fill: &(dyn Fn(&mut Mat) + Sync),
        right_fill: &(dyn Fn(&mut Mat) + Sync),
        out: &mut Mat,
        base: usize,
    ) {
        let mut l = Mat::zeros(h, h);
        let mut r = Mat::zeros(h, h);
        left_fill(&mut l);
        right_fill(&mut r);
        strassen_rec(l.as_ref(), r.as_ref(), out.as_mut(), base);
    }
    {
        let [m1, m2, m3, m4, m5, m6, m7] = &mut m;
        join4(
            move || {
                prod(
                    h,
                    &|t| add_into(t, a11, a22),
                    &|t| add_into(t, b11, b22),
                    m1,
                    base,
                )
            },
            move || {
                prod(
                    h,
                    &|t| add_into(t, a21, a22),
                    &|t| copy_into(t, b11),
                    m2,
                    base,
                )
            },
            move || {
                prod(
                    h,
                    &|t| copy_into(t, a11),
                    &|t| sub_into(t, b12, b22),
                    m3,
                    base,
                )
            },
            move || {
                prod(
                    h,
                    &|t| copy_into(t, a22),
                    &|t| sub_into(t, b21, b11),
                    m4,
                    base,
                )
            },
        );
        join3(
            move || {
                prod(
                    h,
                    &|t| add_into(t, a11, a12),
                    &|t| copy_into(t, b22),
                    m5,
                    base,
                )
            },
            move || {
                prod(
                    h,
                    &|t| sub_into(t, a21, a11),
                    &|t| add_into(t, b11, b12),
                    m6,
                    base,
                )
            },
            move || {
                prod(
                    h,
                    &|t| sub_into(t, a12, a22),
                    &|t| add_into(t, b21, b22),
                    m7,
                    base,
                )
            },
        );
    }
    let [m1, m2, m3, m4, m5, m6, m7] = &m;

    let [mut c11, mut c12, mut c21, mut c22] = c.split_quad(h, h);
    for i in 0..h {
        for j in 0..h {
            *c11.at_mut(i, j) = m1.at(i, j) + m4.at(i, j) - m5.at(i, j) + m7.at(i, j);
            *c12.at_mut(i, j) = m3.at(i, j) + m5.at(i, j);
            *c21.at_mut(i, j) = m2.at(i, j) + m4.at(i, j);
            *c22.at_mut(i, j) = m1.at(i, j) - m2.at(i, j) + m3.at(i, j) + m6.at(i, j);
        }
    }
}

fn copy_into(c: &mut Mat, a: MatRef<'_>) {
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            *c.at_mut(i, j) = a.at(i, j);
        }
    }
}

/// Strassen product of two square power-of-two matrices.
pub fn strassen(a: &Mat, b: &Mat, base: usize) -> Mat {
    let n = a.rows();
    assert!(n.is_power_of_two(), "strassen needs power-of-two sizes");
    assert_eq!((a.rows(), a.cols(), b.rows(), b.cols()), (n, n, n, n));
    let mut c = Mat::zeros(n, n);
    strassen_rec(a.as_ref(), b.as_ref(), c.as_mut(), base.max(8));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul_serial, random_matrix};

    #[test]
    fn strassen_matches_serial() {
        let a = random_matrix(64, 64, 9);
        let b = random_matrix(64, 64, 10);
        let expected = matmul_serial(&a, &b);
        let got = strassen(&a, &b, 16);
        assert!(got.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn strassen_small_base_recursion_deep() {
        let a = random_matrix(32, 32, 11);
        let b = random_matrix(32, 32, 12);
        let expected = matmul_serial(&a, &b);
        let got = strassen(&a, &b, 8);
        assert!(got.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let a = random_matrix(24, 24, 13);
        let b = random_matrix(24, 24, 14);
        let _ = strassen(&a, &b, 8);
    }
}
