//! `heat` — Jacobi heat diffusion (Table I: input 4096 × 1024, 149 SLOC).
//!
//! Five-point Jacobi iteration on a 2D grid with fixed boundaries, using
//! two buffers swapped per timestep; each step parallelises over row blocks
//! by recursive splitting (the Cilk `heat` shape).

use nowa_runtime::join2;

/// The simulation grid (row-major, `nx` rows × `ny` columns).
pub struct Grid {
    nx: usize,
    ny: usize,
    cells: Vec<f64>,
}

impl Grid {
    /// A grid with a hot left boundary and an initial bump in the middle.
    pub fn new(nx: usize, ny: usize) -> Grid {
        let mut cells = vec![0.0; nx * ny];
        for r in 0..nx {
            cells[r * ny] = 1.0; // hot west edge
        }
        cells[(nx / 2) * ny + ny / 2] = 4.0;
        Grid { nx, ny, cells }
    }

    /// Sum of all cells (conserved-ish diagnostic and result checksum).
    pub fn checksum(&self) -> f64 {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + (i % 5) as f64 * 0.25))
            .sum()
    }

    /// Cell accessor (tests).
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.cells[r * self.ny + c]
    }
}

/// One Jacobi step over absolute rows `[r0, r1)`, recursively split over
/// disjoint row blocks of `new` (which starts at absolute row `base`);
/// `old` is the full previous grid, read-only.
fn step_rows_offset(
    new: &mut [f64],
    old: &[f64],
    ny: usize,
    base: usize,
    r0: usize,
    r1: usize,
    grain: usize,
) {
    if r1 - r0 <= grain {
        for r in r0..r1 {
            for c in 1..ny - 1 {
                let src = r * ny + c;
                let dst = (r - base) * ny + c;
                new[dst] = 0.25 * (old[src - ny] + old[src + ny] + old[src - 1] + old[src + 1]);
            }
        }
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let (lo, hi) = new.split_at_mut((mid - r0) * ny);
    join2(
        move || step_rows_offset(lo, old, ny, base, r0, mid, grain),
        move || step_rows_offset(hi, old, ny, mid, mid, r1, grain),
    );
}

/// Runs `steps` Jacobi iterations; `grain` rows per leaf task.
pub fn heat(grid: &mut Grid, steps: usize, grain: usize) {
    let (nx, ny) = (grid.nx, grid.ny);
    let mut other = grid.cells.clone();
    let grain = grain.max(1);
    for _ in 0..steps {
        {
            let old = &grid.cells;
            // Interior rows only; boundaries stay fixed (they were copied
            // into `other` once and are never overwritten).
            step_rows_offset(&mut other[ny..(nx - 1) * ny], old, ny, 1, 1, nx - 1, grain);
        }
        core::mem::swap(&mut grid.cells, &mut other);
    }
}

/// Serial reference implementation.
pub fn heat_serial(grid: &mut Grid, steps: usize) {
    let (nx, ny) = (grid.nx, grid.ny);
    let mut other = grid.cells.clone();
    for _ in 0..steps {
        for r in 1..nx - 1 {
            for c in 1..ny - 1 {
                let idx = r * ny + c;
                other[idx] = 0.25
                    * (grid.cells[idx - ny]
                        + grid.cells[idx + ny]
                        + grid.cells[idx - 1]
                        + grid.cells[idx + 1]);
            }
        }
        core::mem::swap(&mut grid.cells, &mut other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let mut a = Grid::new(33, 17);
        let mut b = Grid::new(33, 17);
        heat(&mut a, 10, 2);
        heat_serial(&mut b, 10);
        for r in 0..33 {
            for c in 0..17 {
                assert!(
                    (a.at(r, c) - b.at(r, c)).abs() < 1e-12,
                    "cell ({r},{c}) differs"
                );
            }
        }
    }

    #[test]
    fn boundaries_stay_fixed() {
        let mut g = Grid::new(16, 16);
        heat(&mut g, 5, 4);
        for r in 0..16 {
            assert_eq!(g.at(r, 0), 1.0, "west edge row {r}");
        }
    }

    #[test]
    fn diffusion_spreads() {
        let mut g = Grid::new(32, 32);
        let before = g.at(16, 17);
        heat(&mut g, 20, 4);
        assert!(g.at(16, 17) != before || g.at(16, 18) != 0.0);
    }
}
