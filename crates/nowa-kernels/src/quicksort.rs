//! `quicksort` — parallel quicksort (Table I: input 10⁸ elements, 66 SLOC).
//!
//! Median-of-three partition, the two sides sorted in parallel (`join2`),
//! serial cutoff below `grain` elements.

use nowa_runtime::join2;

/// Hoare-style partition with median-of-three pivot; returns the split
/// index such that `data[..idx] <= pivot <= data[idx..]` element-wise.
fn partition(data: &mut [u64]) -> usize {
    let n = data.len();
    let mid = n / 2;
    // Median of three to the middle.
    if data[0] > data[mid] {
        data.swap(0, mid);
    }
    if data[mid] > data[n - 1] {
        data.swap(mid, n - 1);
        if data[0] > data[mid] {
            data.swap(0, mid);
        }
    }
    let pivot = data[mid];
    let (mut i, mut j) = (0usize, n - 1);
    loop {
        while data[i] < pivot {
            i += 1;
        }
        while data[j] > pivot {
            j -= 1;
        }
        if i >= j {
            return j + 1;
        }
        data.swap(i, j);
        i += 1;
        j -= 1;
    }
}

/// Sorts `data` in parallel; slices shorter than `grain` use the standard
/// library's serial unstable sort.
pub fn quicksort(data: &mut [u64], grain: usize) {
    let grain = grain.max(8);
    if data.len() <= grain {
        data.sort_unstable();
        return;
    }
    let split = partition(data);
    // Degenerate splits (many equal keys) fall back to serial.
    if split == 0 || split >= data.len() {
        data.sort_unstable();
        return;
    }
    let (lo, hi) = data.split_at_mut(split);
    join2(|| quicksort(lo, grain), || quicksort(hi, grain));
}

/// Deterministic pseudo-random input (xorshift64*).
pub fn random_input(n: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

/// Checks sortedness and returns an order-sensitive checksum.
pub fn verify_sorted(data: &[u64]) -> Option<u64> {
    if data.windows(2).any(|w| w[0] > w[1]) {
        return None;
    }
    Some(
        data.iter()
            .enumerate()
            .fold(0u64, |acc, (i, v)| acc ^ v.rotate_left((i % 63) as u32)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_random_input() {
        let mut data = random_input(10_000, 42);
        let mut expected = data.clone();
        expected.sort_unstable();
        quicksort(&mut data, 64);
        assert_eq!(data, expected);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        for input in [
            vec![],
            vec![1],
            vec![2, 1],
            vec![5; 1000],                         // all equal
            (0..1000).rev().collect::<Vec<u64>>(), // reverse sorted
            (0..1000).collect::<Vec<u64>>(),       // already sorted
        ] {
            let mut data = input.clone();
            let mut expected = input;
            expected.sort_unstable();
            quicksort(&mut data, 16);
            assert_eq!(data, expected);
        }
    }

    #[test]
    fn verify_detects_unsorted() {
        assert!(verify_sorted(&[1, 2, 3]).is_some());
        assert!(verify_sorted(&[2, 1]).is_none());
    }
}
