//! `matmul` and `rectmul` — square and rectangular matrix multiply
//! (Table I: inputs 2048 and 4096; 114 and 291 SLOC).

use crate::dense::{gemm, matmul_quad, Mat, Op};

/// `matmul`: square `n × n` product in the two-phase quadrant shape of the
/// Cilk benchmark.
pub fn matmul(a: &Mat, b: &Mat, base: usize) -> Mat {
    assert_eq!(a.cols(), b.rows());
    let mut c = Mat::zeros(a.rows(), b.cols());
    matmul_quad(a.as_ref(), b.as_ref(), c.as_mut(), base.max(4));
    c
}

/// `rectmul`: rectangular product `(m × k) · (k × n)` via the
/// largest-dimension-split recursion.
pub fn rectmul(a: &Mat, b: &Mat, base: usize) -> Mat {
    assert_eq!(a.cols(), b.rows());
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm(
        1.0,
        a.as_ref(),
        Op::N,
        b.as_ref(),
        Op::N,
        c.as_mut(),
        base.max(4),
    );
    c
}

/// Serial reference product.
pub fn matmul_serial(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows());
    let mut c = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for l in 0..a.cols() {
            let ail = a.at(i, l);
            for j in 0..b.cols() {
                *c.at_mut(i, j) += ail * b.at(l, j);
            }
        }
    }
    c
}

/// Deterministic pseudo-random matrix.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut x = seed | 1;
    Mat::from_fn(rows, cols, |_, _| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x % 2001) as f64) / 1000.0 - 1.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_serial() {
        let a = random_matrix(48, 48, 1);
        let b = random_matrix(48, 48, 2);
        let expected = matmul_serial(&a, &b);
        let got = matmul(&a, &b, 8);
        assert!(got.max_abs_diff(&expected) < 1e-10);
    }

    #[test]
    fn rectmul_matches_serial() {
        let a = random_matrix(40, 96, 3);
        let b = random_matrix(96, 24, 4);
        let expected = matmul_serial(&a, &b);
        let got = rectmul(&a, &b, 8);
        assert!(got.max_abs_diff(&expected) < 1e-10);
    }

    #[test]
    fn odd_sizes_work() {
        let a = random_matrix(17, 23, 5);
        let b = random_matrix(23, 9, 6);
        let expected = matmul_serial(&a, &b);
        assert!(matmul(&a, &b, 4).max_abs_diff(&expected) < 1e-10);
        assert!(rectmul(&a, &b, 4).max_abs_diff(&expected) < 1e-10);
    }
}
