//! `fib` — recursive Fibonacci (Table I: input 42, 40 SLOC).
//!
//! The canonical runtime-system stress test: the work per task is tiny and
//! there is no shared data, so the scheduler itself is the bottleneck
//! (§V-A: "a useful tool for measuring the performance of the runtime
//! system itself").

use nowa_runtime::join2;

/// Parallel Fibonacci with a serial cutoff below `cutoff`.
///
/// `cutoff = 0` spawns all the way down, the paper's configuration.
pub fn fib(n: u64, cutoff: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n <= cutoff {
        return fib_serial(n);
    }
    let (a, b) = join2(|| fib(n - 1, cutoff), || fib(n - 2, cutoff));
    a + b
}

/// The serial elision.
pub fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

/// Closed-form check value via fast doubling (exact for n < 94).
pub fn fib_reference(n: u64) -> u64 {
    fn doubling(n: u64) -> (u64, u64) {
        if n == 0 {
            return (0, 1);
        }
        let (a, b) = doubling(n / 2);
        let c = a.wrapping_mul(b.wrapping_mul(2).wrapping_sub(a));
        let d = a.wrapping_mul(a).wrapping_add(b.wrapping_mul(b));
        if n.is_multiple_of(2) {
            (c, d)
        } else {
            (d, c.wrapping_add(d))
        }
    }
    doubling(n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_matches_reference() {
        for n in 0..25 {
            assert_eq!(fib_serial(n), fib_reference(n));
        }
    }

    #[test]
    fn parallel_code_path_serial_elision() {
        // Outside a runtime, join2 runs serially — same results.
        assert_eq!(fib(20, 0), fib_reference(20));
        assert_eq!(fib(20, 10), fib_reference(20));
    }
}
