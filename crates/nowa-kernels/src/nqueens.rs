//! `nqueens` — count the ways to place N queens (Table I: input 14,
//! 48 SLOC).
//!
//! The faithful Cilk shape: at every row, one spawn per valid column with a
//! single sync at the end — the linear loop-of-spawns anatomy of the
//! paper's `foo()` (Fig. 4), expressed through the raw [`Region`] API. Each
//! child writes its count into its own slot; the parent sums after the
//! sync.

use nowa_runtime::Region;

const MAX_N: usize = 20;

/// Is placing a queen at `(row, col)` compatible with `board[..row]`?
#[inline]
fn ok(board: &[u8], row: usize, col: usize) -> bool {
    for (r, &c) in board[..row].iter().enumerate() {
        let c = c as usize;
        if c == col || c + row == col + r || c + r == col + row {
            return false;
        }
    }
    true
}

fn nqueens_rec(board: &mut [u8; MAX_N], row: usize, n: usize) -> u64 {
    if row == n {
        return 1;
    }
    let mut counts = [0u64; MAX_N];
    {
        let region = Region::new();
        let board_ro: &[u8; MAX_N] = board;
        let counts_base = counts.as_mut_ptr() as usize;
        for col in 0..n {
            if !ok(board_ro, row, col) {
                continue;
            }
            // SAFETY (Region contract): everything live across the spawns —
            // the shared read-only board, the counts array, `region` — is
            // Send; each child writes a distinct `counts[col]` slot, and
            // the sync below completes before any of them is read or
            // dropped.
            unsafe {
                region.spawn(move || {
                    let mut child_board = *board_ro;
                    child_board[row] = col as u8;
                    let count = nqueens_rec(&mut child_board, row + 1, n);
                    *(counts_base as *mut u64).add(col) = count;
                });
            }
        }
        region.sync();
    }
    counts.iter().sum()
}

/// Counts the solutions of the N-queens problem in parallel.
pub fn nqueens(n: usize) -> u64 {
    assert!(n <= MAX_N, "nqueens supports n <= {MAX_N}");
    let mut board = [0u8; MAX_N];
    nqueens_rec(&mut board, 0, n)
}

/// Plain serial backtracking counter (the elision/reference).
pub fn nqueens_serial(n: usize) -> u64 {
    fn rec(board: &mut [u8; MAX_N], row: usize, n: usize) -> u64 {
        if row == n {
            return 1;
        }
        let mut total = 0;
        for col in 0..n {
            if ok(board, row, col) {
                board[row] = col as u8;
                total += rec(board, row + 1, n);
            }
        }
        total
    }
    let mut board = [0u8; MAX_N];
    rec(&mut board, 0, n)
}

/// Known solution counts for n = 0..=14.
pub const KNOWN_COUNTS: [u64; 15] = [
    1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712, 365_596,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_matches_known_counts() {
        for (n, &expected) in KNOWN_COUNTS.iter().enumerate().take(11) {
            assert_eq!(nqueens_serial(n), expected, "n = {n}");
        }
    }

    #[test]
    fn parallel_path_matches_serial_elision() {
        for n in 4..=9 {
            assert_eq!(nqueens(n), nqueens_serial(n), "n = {n}");
        }
    }
}
