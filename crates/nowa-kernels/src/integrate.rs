//! `integrate` — quadrature adaptive integration (Table I: input 10⁴ with
//! ε = 10⁻⁹, 59 SLOC).
//!
//! Adaptive trapezoid integration of `f(x) = (x² + 1)·x`, recursively
//! splitting intervals until the two-half estimate agrees with the
//! one-interval estimate. Like `fib`, the leaf work is tiny, making the
//! runtime the bottleneck.

use nowa_runtime::join2;

#[inline]
fn f(x: f64) -> f64 {
    (x * x + 1.0) * x
}

fn integrate_rec(x1: f64, y1: f64, x2: f64, y2: f64, area: f64, epsilon: f64, depth: u32) -> f64 {
    let half = (x2 - x1) / 2.0;
    let mid = x1 + half;
    let ymid = f(mid);
    let area_left = (y1 + ymid) * half / 2.0;
    let area_right = (ymid + y2) * half / 2.0;
    let refined = area_left + area_right;
    // Depth bound: below ~2⁻⁴⁸ of the original interval, floating-point
    // rounding noise can exceed any epsilon and refinement is meaningless.
    if (refined - area).abs() < epsilon || depth >= 48 {
        return refined;
    }
    let (l, r) = join2(
        move || integrate_rec(x1, y1, mid, ymid, area_left, epsilon / 2.0, depth + 1),
        move || integrate_rec(mid, ymid, x2, y2, area_right, epsilon / 2.0, depth + 1),
    );
    l + r
}

/// Integrates `(x² + 1)·x` over `[0, range]` with tolerance `epsilon`.
pub fn integrate(range: f64, epsilon: f64) -> f64 {
    let y1 = f(0.0);
    let y2 = f(range);
    let area = (y1 + y2) * range / 2.0;
    integrate_rec(0.0, y1, range, y2, area, epsilon, 0)
}

/// Analytic value of the integral: `range⁴/4 + range²/2`.
pub fn integrate_reference(range: f64) -> f64 {
    range.powi(4) / 4.0 + range.powi(2) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_analytic_value() {
        for range in [1.0, 10.0, 100.0] {
            let got = integrate(range, 1e-9);
            let want = integrate_reference(range);
            let rel = (got - want).abs() / want.max(1.0);
            assert!(rel < 1e-6, "range {range}: got {got}, want {want}");
        }
    }

    #[test]
    fn tighter_epsilon_is_closer() {
        let want = integrate_reference(50.0);
        let loose = (integrate(50.0, 1e-3) - want).abs();
        let tight = (integrate(50.0, 1e-9) - want).abs();
        assert!(tight <= loose);
    }
}
