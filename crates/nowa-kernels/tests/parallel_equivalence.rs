//! Every kernel must produce the identical checksum when run under a
//! parallel runtime (any flavor, any worker count) as under the serial
//! elision — parallelism must never change results.

use nowa_kernels::{BenchId, Size};
use nowa_runtime::{Config, Flavor, Runtime};

fn serial_checksum(bench: BenchId) -> f64 {
    assert!(!nowa_runtime::in_task());
    bench.run(Size::Tiny)
}

#[test]
fn all_kernels_parallel_match_serial_nowa() {
    let rt = Runtime::new(Config::with_workers(4)).unwrap();
    for bench in BenchId::ALL {
        let expected = serial_checksum(bench);
        let got = rt.run(|| bench.run(Size::Tiny));
        assert_eq!(got, expected, "{} differs under nowa", bench.name());
    }
}

#[test]
fn all_kernels_parallel_match_serial_fibril() {
    let rt = Runtime::new(Config::with_workers(4).flavor(Flavor::FIBRIL)).unwrap();
    for bench in BenchId::ALL {
        let expected = serial_checksum(bench);
        let got = rt.run(|| bench.run(Size::Tiny));
        assert_eq!(got, expected, "{} differs under fibril", bench.name());
    }
}

#[test]
fn all_kernels_parallel_match_serial_nowa_the() {
    let rt = Runtime::new(Config::with_workers(4).flavor(Flavor::NOWA_THE)).unwrap();
    for bench in BenchId::ALL {
        let expected = serial_checksum(bench);
        let got = rt.run(|| bench.run(Size::Tiny));
        assert_eq!(got, expected, "{} differs under nowa-the", bench.name());
    }
}

#[test]
fn quick_size_spot_checks_under_runtime() {
    let rt = Runtime::new(Config::with_workers(4)).unwrap();
    // A couple of kernels at Quick size for deeper DAGs.
    for bench in [BenchId::Fib, BenchId::Nqueens, BenchId::Quicksort] {
        let expected = bench.run(Size::Quick);
        let got = rt.run(|| bench.run(Size::Quick));
        assert_eq!(got, expected, "{}", bench.name());
    }
}

#[test]
fn single_worker_runtime_matches() {
    let rt = Runtime::with_workers(1).unwrap();
    for bench in BenchId::ALL {
        let expected = serial_checksum(bench);
        let got = rt.run(|| bench.run(Size::Tiny));
        assert_eq!(got, expected, "{}", bench.name());
    }
}
