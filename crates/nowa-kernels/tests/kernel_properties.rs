//! Property-based tests for the benchmark kernels: parallel numeric code
//! against naive references on arbitrary shapes and inputs.

use nowa_kernels::dense::{gemm, Mat, Op};
use nowa_kernels::{cholesky, fft, knapsack, lu, matmul, quicksort};
use proptest::prelude::*;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut x = seed | 1;
    Mat::from_fn(rows, cols, |_, _| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x % 1000) as f64) / 1000.0 - 0.5
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GEMM with arbitrary (small) shapes, transposes and grains matches
    /// the naive triple loop.
    #[test]
    fn gemm_arbitrary_shapes(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        base in 1usize..8,
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let a = if ta { rand_mat(k, m, seed) } else { rand_mat(m, k, seed) };
        let b = if tb { rand_mat(n, k, seed ^ 7) } else { rand_mat(k, n, seed ^ 7) };
        let (op_a, op_b) = (
            if ta { Op::T } else { Op::N },
            if tb { Op::T } else { Op::N },
        );
        let mut c = Mat::zeros(m, n);
        gemm(1.0, a.as_ref(), op_a, b.as_ref(), op_b, c.as_mut(), base);
        // Naive reference.
        let at = |i: usize, l: usize| if ta { a.at(l, i) } else { a.at(i, l) };
        let bt = |l: usize, j: usize| if tb { b.at(j, l) } else { b.at(l, j) };
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += at(i, l) * bt(l, j);
                }
                prop_assert!((c.at(i, j) - s).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    /// LU reconstructs its input for arbitrary sizes and grains.
    #[test]
    fn lu_reconstructs(n in 1usize..40, base in 1usize..12, seed in any::<u64>()) {
        let original = lu::dominant_matrix(n, seed | 1);
        let mut packed = original.clone();
        lu::lu(&mut packed, base);
        let rebuilt = lu::reconstruct(&packed);
        prop_assert!(rebuilt.max_abs_diff(&original) < 1e-7);
    }

    /// Cholesky residual is tiny for arbitrary SPD inputs.
    #[test]
    fn cholesky_residual(n in 1usize..32, base in 1usize..10, seed in any::<u64>()) {
        let original = cholesky::spd_matrix(n, seed | 1);
        let mut packed = original.clone();
        cholesky::cholesky(&mut packed, base);
        prop_assert!(cholesky::residual(&packed, &original) < 1e-7);
    }

    /// Quicksort sorts arbitrary inputs with arbitrary grains.
    #[test]
    fn quicksort_sorts(mut data in prop::collection::vec(any::<u64>(), 0..500), grain in 1usize..64) {
        let mut expected = data.clone();
        expected.sort_unstable();
        quicksort::quicksort(&mut data, grain);
        prop_assert_eq!(data, expected);
    }

    /// Branch-and-bound knapsack equals dynamic programming, both orders.
    #[test]
    fn knapsack_matches_dp(n in 1usize..14, seed in any::<u64>()) {
        let (items, capacity) = knapsack::random_items(n, seed | 1);
        let expected = knapsack::knapsack_reference(&items, capacity);
        prop_assert_eq!(
            knapsack::knapsack(&items, capacity, knapsack::SpawnOrder::TakeFirst),
            expected
        );
        prop_assert_eq!(
            knapsack::knapsack(&items, capacity, knapsack::SpawnOrder::SkipFirst),
            expected
        );
    }

    /// FFT of arbitrary power-of-two signals matches the naive DFT.
    #[test]
    fn fft_matches_dft(log_n in 1u32..8, grain in 1usize..64, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let signal = fft::random_signal(n, seed | 1);
        let expected = fft::dft_naive(&signal);
        let mut buf = signal;
        fft::fft(&mut buf, grain);
        for (a, b) in buf.iter().zip(&expected) {
            prop_assert!((a.re - b.re).abs() < 1e-7 && (a.im - b.im).abs() < 1e-7);
        }
    }

    /// matmul_quad (the Cilk two-phase shape) equals gemm for arbitrary
    /// square sizes.
    #[test]
    fn matmul_quad_equals_gemm(n in 1usize..32, base in 1usize..10, seed in any::<u64>()) {
        let a = rand_mat(n, n, seed | 1);
        let b = rand_mat(n, n, seed.wrapping_add(3) | 1);
        let quad = matmul::matmul(&a, &b, base);
        let reference = matmul::matmul_serial(&a, &b);
        prop_assert!(quad.max_abs_diff(&reference) < 1e-10);
    }
}
