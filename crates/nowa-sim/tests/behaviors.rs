//! Behavioural tests of the simulator: the qualitative phenomena the
//! paper's evaluation reports must emerge from the protocol replay.

use nowa_sim::{bench_dags, simulate, DagBuilder, SimBench, SimConfig, SimDag, SimFlavor};

/// A fib-like fine-grained binary DAG.
fn fine_grained(depth: u32) -> SimDag {
    fn rec(b: &mut DagBuilder, task: usize, depth: u32) {
        if depth == 0 {
            b.work(task, 8);
            return;
        }
        b.work(task, 10);
        let c1 = b.spawn(task);
        rec(b, c1, depth - 1);
        let c2 = b.call(task);
        rec(b, c2, depth - 1);
        b.sync(task);
    }
    let mut b = DagBuilder::new();
    rec(&mut b, 0, depth);
    b.build()
}

/// A coarse-grained DAG: large leaves, plenty of them.
fn coarse_grained() -> SimDag {
    let mut b = DagBuilder::new();
    for _ in 0..512 {
        let c = b.spawn(0);
        b.work(c, 50_000);
    }
    b.sync(0);
    b.build()
}

#[test]
fn lock_gap_grows_with_thread_count() {
    // §V-A: Nowa ≈ Fibril at low thread counts; the gap opens as
    // contention rises.
    let dag = fine_grained(16);
    let ratio = |p: usize| {
        let nowa = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, p)).speedup();
        let fibril = simulate(&dag, SimConfig::new(SimFlavor::FibrilLock, p)).speedup();
        nowa / fibril
    };
    let low = ratio(2);
    let high = ratio(256);
    assert!(high > low, "gap must grow: {low:.2} -> {high:.2}");
}

#[test]
fn coarse_grain_hides_runtime_differences() {
    // quicksort-like behaviour (Fig. 7): with big leaves all runtimes tie.
    let dag = coarse_grained();
    let nowa = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 32)).speedup();
    let fibril = simulate(&dag, SimConfig::new(SimFlavor::FibrilLock, 32)).speedup();
    let rel = (nowa - fibril).abs() / nowa;
    assert!(
        rel < 0.10,
        "coarse grains should tie: {nowa:.2} vs {fibril:.2}"
    );
}

#[test]
fn smt_bends_speedup_beyond_core_count() {
    // Beyond 128 cores the per-worker rate drops (2-way SMT): doubling
    // workers from 128 to 256 must yield clearly sublinear gains.
    let dag = coarse_grained();
    let s128 = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 64)).speedup();
    let mut big = SimConfig::new(SimFlavor::NowaCl, 256);
    big.cores = 64;
    let s256 = simulate(&dag, big).speedup();
    assert!(
        s256 < 2.0 * s128 * 0.9,
        "SMT must bend the curve: {s128:.2} -> {s256:.2}"
    );
}

#[test]
fn madvise_hurts_most_where_suspensions_are_frequent() {
    // §V-B: the madvise penalty scales with suspension traffic.
    let dag = fine_grained(14);
    let p = 64;
    let plain = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, p));
    let mut cfg = SimConfig::new(SimFlavor::NowaCl, p);
    cfg.madvise = true;
    let madv = simulate(&dag, cfg);
    assert!(plain.suspensions > 0);
    assert!(
        madv.makespan > plain.makespan,
        "madvise adds syscall+refault cost under steals"
    );
}

#[test]
fn tied_tasks_restrict_helping() {
    // A DAG with one deep spawner and idle siblings: tied waiting workers
    // can run only their own tasks, so tied ≥ untied in makespan here.
    let mut b = DagBuilder::new();
    for _ in 0..4 {
        let c = b.spawn(0);
        for _ in 0..64 {
            let gc = b.spawn(c);
            b.work(gc, 3_000);
        }
        b.sync(c);
    }
    b.sync(0);
    let dag = b.build();
    let untied = simulate(
        &dag,
        SimConfig::new(SimFlavor::WsTasksOmp { tied: false }, 16),
    );
    let tied = simulate(
        &dag,
        SimConfig::new(SimFlavor::WsTasksOmp { tied: true }, 16),
    );
    assert!(
        tied.makespan >= untied.makespan,
        "tied {} vs untied {}",
        tied.makespan,
        untied.makespan
    );
}

#[test]
fn central_queue_scales_into_a_wall() {
    // libgomp-like: speedup must *decrease* from 16 to 256 workers on a
    // fine-grained DAG (every task operation serializes on one lock).
    let dag = fine_grained(15);
    let s16 = simulate(&dag, SimConfig::new(SimFlavor::GlobalQueueGomp, 16)).speedup();
    let s256 = simulate(&dag, SimConfig::new(SimFlavor::GlobalQueueGomp, 256)).speedup();
    assert!(
        s256 < s16,
        "central queue must collapse: {s16:.2} -> {s256:.2}"
    );
}

#[test]
fn steal_counts_rise_with_workers() {
    let dag = bench_dags::generate(SimBench::Fib, 18);
    let s4 = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 4));
    let s64 = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 64));
    assert!(s64.steals > s4.steals);
}

#[test]
fn seeds_change_schedules_not_results() {
    let dag = bench_dags::generate(SimBench::Quicksort, 14);
    let mut a = SimConfig::new(SimFlavor::NowaCl, 8);
    a.seed = 1;
    let mut b = SimConfig::new(SimFlavor::NowaCl, 8);
    b.seed = 99;
    let ra = simulate(&dag, a);
    let rb = simulate(&dag, b);
    // Same total work either way; makespans may differ but only modestly.
    assert_eq!(ra.total_work, rb.total_work);
    let rel = (ra.makespan as f64 - rb.makespan as f64).abs() / ra.makespan as f64;
    assert!(rel < 0.5, "schedules differ wildly across seeds: {rel}");
}

#[test]
fn all_benchmark_dags_scale_beyond_one() {
    for bench in SimBench::ALL {
        let dag = bench_dags::generate(bench, bench.quick_scale());
        let s1 = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 1)).speedup();
        let s8 = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 8)).speedup();
        assert!(
            s8 > 1.5 * s1,
            "{}: no parallel speedup ({s1:.2} -> {s8:.2})",
            bench.name()
        );
    }
}
