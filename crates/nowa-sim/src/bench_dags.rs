//! DAG generators shaped like the twelve benchmarks (Table I).
//!
//! Each generator expands the real kernel's spawn structure — the same
//! `join2`/`Region` shapes as `nowa-kernels`, with each spawning-function
//! instance becoming one task and sequential nested calls becoming
//! [`Item::Call`](crate::dag::Item::Call)s — at a scaled-down input, preserving the benchmark's
//! *granularity* (work per spawn), which is what decides how hard the DAG
//! stresses the runtime. A task budget guards against runaway expansion;
//! beyond it, subtrees are aggregated into serial leaf work using the
//! kernel's analytic work formula, keeping total work consistent.
//!
//! Work costs are in virtual ns with 1 flop ≈ 1 ns and small constants for
//! call/branch overhead; only relative magnitudes matter (see
//! [`crate::cost`]).

use crate::dag::{DagBuilder, SimDag};

/// Identifier of a simulated benchmark (matches `nowa_kernels::BenchId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SimBench {
    Cholesky,
    Fft,
    Fib,
    Heat,
    Integrate,
    Knapsack,
    Lu,
    Matmul,
    Nqueens,
    Quicksort,
    Rectmul,
    Strassen,
}

impl SimBench {
    /// All twelve, Table I order.
    pub const ALL: [SimBench; 12] = [
        SimBench::Cholesky,
        SimBench::Fft,
        SimBench::Fib,
        SimBench::Heat,
        SimBench::Integrate,
        SimBench::Knapsack,
        SimBench::Lu,
        SimBench::Matmul,
        SimBench::Nqueens,
        SimBench::Quicksort,
        SimBench::Rectmul,
        SimBench::Strassen,
    ];

    /// Plot name.
    pub fn name(&self) -> &'static str {
        match self {
            SimBench::Cholesky => "cholesky",
            SimBench::Fft => "fft",
            SimBench::Fib => "fib",
            SimBench::Heat => "heat",
            SimBench::Integrate => "integrate",
            SimBench::Knapsack => "knapsack",
            SimBench::Lu => "lu",
            SimBench::Matmul => "matmul",
            SimBench::Nqueens => "nqueens",
            SimBench::Quicksort => "quicksort",
            SimBench::Rectmul => "rectmul",
            SimBench::Strassen => "strassen",
        }
    }

    /// Parses a benchmark name.
    pub fn parse(name: &str) -> Option<SimBench> {
        SimBench::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Default scale for the figure reproductions (tens of ms of virtual
    /// work, 10⁴–10⁵ tasks).
    pub fn default_scale(&self) -> u32 {
        match self {
            SimBench::Cholesky => 1024,
            SimBench::Fft => 17, // 2^17 points
            SimBench::Fib => 26,
            SimBench::Heat => 512,     // 512 x 256, 32 steps
            SimBench::Integrate => 16, // tree depth
            SimBench::Knapsack => 26,
            SimBench::Lu => 512,
            SimBench::Matmul => 512,
            SimBench::Nqueens => 11,
            SimBench::Quicksort => 20, // 2^20 elements
            SimBench::Rectmul => 512,
            SimBench::Strassen => 512,
        }
    }

    /// Reduced scale for quick runs and tests.
    pub fn quick_scale(&self) -> u32 {
        match self {
            SimBench::Cholesky => 128,
            SimBench::Fft => 13,
            SimBench::Fib => 19,
            SimBench::Heat => 128,
            SimBench::Integrate => 11,
            SimBench::Knapsack => 18,
            SimBench::Lu => 128,
            SimBench::Matmul => 128,
            SimBench::Nqueens => 8,
            SimBench::Quicksort => 15,
            SimBench::Rectmul => 128,
            SimBench::Strassen => 128,
        }
    }
}

/// Expansion budget: beyond this many tasks, subtrees aggregate to leaves.
const TASK_BUDGET: usize = 700_000;

struct Gen {
    b: DagBuilder,
    rng: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            b: DagBuilder::new(),
            rng: seed | 1,
        }
    }

    fn over_budget(&self) -> bool {
        self.b.task_count() > TASK_BUDGET
    }

    fn rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Generates the DAG for `bench` at `scale` (see [`SimBench::default_scale`]
/// for the scale semantics per benchmark).
pub fn generate(bench: SimBench, scale: u32) -> SimDag {
    let mut g = Gen::new(0xDA6 ^ (scale as u64) << 8 ^ bench as u64);
    match bench {
        SimBench::Fib => fib(&mut g, 0, scale),
        SimBench::Integrate => integrate(&mut g, 0, scale),
        SimBench::Nqueens => {
            let mut board = [0u8; 16];
            nqueens(&mut g, 0, &mut board, 0, scale as usize);
        }
        SimBench::Knapsack => knapsack(&mut g, 0, scale),
        SimBench::Quicksort => quicksort_task(&mut g, 0, 1u64 << scale),
        SimBench::Fft => {
            let n = 1u64 << scale;
            fft(&mut g, 0, n);
        }
        SimBench::Heat => heat(&mut g, scale as u64),
        SimBench::Matmul => matmul(&mut g, 0, scale as u64),
        SimBench::Rectmul => {
            let n = scale as u64;
            rectmul(&mut g, 0, n, n / 2, n * 3 / 4);
        }
        SimBench::Strassen => strassen(&mut g, 0, scale as u64),
        SimBench::Lu => lu(&mut g, 0, scale as u64),
        SimBench::Cholesky => cholesky(&mut g, 0, scale as u64),
    }
    g.b.build()
}

// --- fib ------------------------------------------------------------------

/// Serial node count of fib(n): 2·fib(n+1) − 1.
fn fib_nodes(n: u32) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n + 1 {
        let c = a + b;
        a = b;
        b = c;
    }
    2 * a - 1
}

fn fib(g: &mut Gen, task: usize, n: u32) {
    if n < 2 {
        g.b.work(task, 6);
        return;
    }
    if g.over_budget() {
        g.b.work(task, fib_nodes(n) * 9);
        return;
    }
    g.b.work(task, 8); // call + branch + frame setup
    let c1 = g.b.spawn(task);
    fib(g, c1, n - 1);
    let c2 = g.b.call(task);
    fib(g, c2, n - 2);
    g.b.sync(task);
    g.b.work(task, 4); // add + return
}

// --- integrate --------------------------------------------------------------

fn integrate(g: &mut Gen, task: usize, depth: u32) {
    if depth == 0 {
        g.b.work(task, 25);
        return;
    }
    if g.over_budget() {
        g.b.work(task, (1u64 << depth) * 25 + ((1u64 << depth) - 1) * 12);
        return;
    }
    g.b.work(task, 12); // midpoint evaluation + error estimate
    let c1 = g.b.spawn(task);
    integrate(g, c1, depth - 1);
    let c2 = g.b.call(task);
    integrate(g, c2, depth - 1);
    g.b.sync(task);
}

// --- nqueens ----------------------------------------------------------------

fn nq_ok(board: &[u8], row: usize, col: usize) -> bool {
    for (r, &c) in board[..row].iter().enumerate() {
        let c = c as usize;
        if c == col || c + row == col + r || c + r == col + row {
            return false;
        }
    }
    true
}

/// Serial node count of the remaining search tree.
fn nq_count_nodes(board: &mut [u8; 16], row: usize, n: usize) -> u64 {
    if row == n {
        return 1;
    }
    let mut total = 1;
    for col in 0..n {
        if nq_ok(board, row, col) {
            board[row] = col as u8;
            total += nq_count_nodes(board, row + 1, n);
        }
    }
    total
}

/// The Region shape: one spawn per valid column, one sync (Fig. 4).
fn nqueens(g: &mut Gen, task: usize, board: &mut [u8; 16], row: usize, n: usize) {
    if row == n {
        g.b.work(task, 10);
        return;
    }
    if g.over_budget() {
        g.b.work(task, nq_count_nodes(board, row, n) * (8 + 4 * n as u64));
        return;
    }
    let check_cost = 6 * row.max(1) as u64;
    let mut spawned = false;
    for col in 0..n {
        g.b.work(task, check_cost); // the ok() scan
        if nq_ok(board, row, col) {
            let child = g.b.spawn(task);
            spawned = true;
            board[row] = col as u8;
            nqueens(g, child, board, row + 1, n);
        }
    }
    if spawned {
        g.b.sync(task);
    }
    g.b.work(task, 4 * n as u64); // count reduction
}

// --- knapsack ---------------------------------------------------------------

/// Branch-and-bound tree: include-branch spawned, exclude-branch called;
/// pruning becomes more likely with depth (seeded, deterministic).
fn knapsack(g: &mut Gen, task: usize, depth: u32) {
    g.b.work(task, 35); // bound computation
    if depth == 0 {
        return;
    }
    if g.over_budget() {
        g.b.work(task, 40 * (depth as u64 + 1));
        return;
    }
    // Survival probability decays so the tree stays sub-exponential, like
    // a pruned branch-and-bound search.
    let survive = |g: &mut Gen, bias: u64| -> bool {
        let p = 990u64.saturating_sub(bias);
        g.rand() % 1000 < p
    };
    let bias = (26u64.saturating_sub(depth as u64)) * 24;
    let take = survive(g, bias);
    let skip = survive(g, bias / 2);
    if take {
        let c = g.b.spawn(task);
        knapsack(g, c, depth - 1);
    }
    if skip {
        let c = g.b.call(task);
        knapsack(g, c, depth - 1);
    }
    if take {
        g.b.sync(task);
    }
}

// --- quicksort ---------------------------------------------------------------

const QS_GRAIN: u64 = 2048;

fn quicksort_task(g: &mut Gen, task: usize, len: u64) {
    if len <= QS_GRAIN {
        // Serial sort leaf: ~2·n·log2(n).
        let log = 64 - len.max(2).leading_zeros() as u64;
        g.b.work(task, 2 * len * log);
        return;
    }
    if g.over_budget() {
        let log = 64 - len.leading_zeros() as u64;
        g.b.work(task, 2 * len * log);
        return;
    }
    g.b.work(task, len * 3 / 2); // partition
                                 // Median-of-three keeps splits near the middle but not exact.
    let frac = 35 + (g.rand() % 31); // 35..65 %
    let lo = (len * frac / 100).max(1).min(len - 1);
    let c1 = g.b.spawn(task);
    quicksort_task(g, c1, lo);
    let c2 = g.b.call(task);
    quicksort_task(g, c2, len - lo);
    g.b.sync(task);
}

// --- fft ----------------------------------------------------------------------

const FFT_BASE: u64 = 32;
const FFT_COMBINE_GRAIN: u64 = 1024;

fn fft_combine(g: &mut Gen, task: usize, half: u64) {
    if half <= FFT_COMBINE_GRAIN || g.over_budget() {
        g.b.work(task, half * 8); // twiddle multiply + butterfly
        return;
    }
    let c1 = g.b.spawn(task);
    fft_combine(g, c1, half / 2);
    let c2 = g.b.call(task);
    fft_combine(g, c2, half / 2);
    g.b.sync(task);
}

fn fft(g: &mut Gen, task: usize, n: u64) {
    if n <= FFT_BASE || g.over_budget() {
        g.b.work(task, n * n * 4); // naive DFT leaf
        return;
    }
    g.b.work(task, n * 2); // deinterleave
    let c1 = g.b.spawn(task);
    fft(g, c1, n / 2);
    let c2 = g.b.call(task);
    fft(g, c2, n / 2);
    g.b.sync(task);
    let comb = g.b.call(task);
    fft_combine(g, comb, n / 2);
}

// --- heat ----------------------------------------------------------------------

const HEAT_ROW_GRAIN: u64 = 8;

fn heat_step(g: &mut Gen, task: usize, rows: u64, ny: u64) {
    if rows <= HEAT_ROW_GRAIN || g.over_budget() {
        g.b.work(task, rows * ny * 6);
        return;
    }
    let c1 = g.b.spawn(task);
    heat_step(g, c1, rows / 2, ny);
    let c2 = g.b.call(task);
    heat_step(g, c2, rows - rows / 2, ny);
    g.b.sync(task);
}

fn heat(g: &mut Gen, nx: u64) {
    let ny = nx / 2;
    let steps = (nx / 16).max(4);
    for _ in 0..steps {
        let step = g.b.call(0);
        heat_step(g, step, nx, ny);
        g.b.work(0, 200); // buffer swap + loop bookkeeping
    }
}

// --- matmul ----------------------------------------------------------------------

const MM_BASE: u64 = 32;

fn matmul(g: &mut Gen, task: usize, n: u64) {
    if n <= MM_BASE || g.over_budget() {
        g.b.work(task, 2 * n * n * n);
        return;
    }
    let h = n / 2;
    // Two phases of four quadrant products (join4: three spawned + one
    // called), as in the Cilk matmul.
    for _phase in 0..2 {
        for _ in 0..3 {
            let c = g.b.spawn(task);
            matmul(g, c, h);
        }
        let c = g.b.call(task);
        matmul(g, c, h);
        g.b.sync(task);
    }
}

// --- rectmul -----------------------------------------------------------------------

fn rectmul(g: &mut Gen, task: usize, m: u64, k: u64, n: u64) {
    if (m.max(n).max(k) <= MM_BASE) || g.over_budget() {
        g.b.work(task, 2 * m * k * n);
        return;
    }
    if m >= n && m >= k {
        let c1 = g.b.spawn(task);
        rectmul(g, c1, m / 2, k, n);
        let c2 = g.b.call(task);
        rectmul(g, c2, m - m / 2, k, n);
        g.b.sync(task);
    } else if n >= k {
        let c1 = g.b.spawn(task);
        rectmul(g, c1, m, k, n / 2);
        let c2 = g.b.call(task);
        rectmul(g, c2, m, k, n - n / 2);
        g.b.sync(task);
    } else {
        // k-split: sequential halves.
        let c1 = g.b.call(task);
        rectmul(g, c1, m, k / 2, n);
        let c2 = g.b.call(task);
        rectmul(g, c2, m, k - k / 2, n);
    }
}

// --- strassen -----------------------------------------------------------------------

const STRASSEN_BASE: u64 = 64;

fn strassen(g: &mut Gen, task: usize, n: u64) {
    if n <= STRASSEN_BASE || g.over_budget() {
        g.b.work(task, 2 * n * n * n);
        return;
    }
    let h = n / 2;
    let add = h * h * 2; // one temporary add/sub
                         // join4(m1..m4): each product task pays its operand adds first.
    for _ in 0..3 {
        let c = g.b.spawn(task);
        g.b.work(c, add * 2);
        let sub = g.b.call(c);
        strassen(g, sub, h);
    }
    let c = g.b.call(task);
    g.b.work(c, add * 2);
    let sub = g.b.call(c);
    strassen(g, sub, h);
    g.b.sync(task);
    // join3(m5..m7).
    for _ in 0..2 {
        let c = g.b.spawn(task);
        g.b.work(c, add * 2);
        let sub = g.b.call(c);
        strassen(g, sub, h);
    }
    let c = g.b.call(task);
    g.b.work(c, add * 2);
    let sub = g.b.call(c);
    strassen(g, sub, h);
    g.b.sync(task);
    g.b.work(task, 8 * h * h); // quadrant combine
}

// --- lu ---------------------------------------------------------------------------

const LU_BASE: u64 = 32;

/// Forward/backward panel solve: parallel over the panel's long dimension,
/// sequential blocked recursion over the triangle.
fn lu_trsm(g: &mut Gen, task: usize, panel: u64, n: u64) {
    if panel > LU_BASE && !g.over_budget() {
        let c1 = g.b.spawn(task);
        lu_trsm(g, c1, panel / 2, n);
        let c2 = g.b.call(task);
        lu_trsm(g, c2, panel - panel / 2, n);
        g.b.sync(task);
        return;
    }
    g.b.work(task, panel * n * n);
}

fn lu(g: &mut Gen, task: usize, n: u64) {
    if n <= LU_BASE || g.over_budget() {
        g.b.work(task, 2 * n * n * n / 3);
        return;
    }
    let h = n / 2;
    let c = g.b.call(task);
    lu(g, c, h);
    // join2(trsm_lower(A12), trsm_right(A21)).
    let c1 = g.b.spawn(task);
    lu_trsm(g, c1, h, h);
    let c2 = g.b.call(task);
    lu_trsm(g, c2, h, h);
    g.b.sync(task);
    // Trailing update A22 -= A21·A12 (parallel GEMM), then recurse.
    let gm = g.b.call(task);
    rectmul(g, gm, h, h, h);
    let c = g.b.call(task);
    lu(g, c, n - h);
}

// --- cholesky -----------------------------------------------------------------------

fn syrk(g: &mut Gen, task: usize, n: u64, k: u64) {
    if n <= LU_BASE || g.over_budget() {
        g.b.work(task, n * n * k);
        return;
    }
    let h = n / 2;
    let c1 = g.b.spawn(task);
    syrk(g, c1, h, k);
    let c2 = g.b.spawn(task);
    syrk(g, c2, n - h, k);
    let gm = g.b.call(task);
    rectmul(g, gm, n - h, k, h);
    g.b.sync(task);
}

fn cholesky(g: &mut Gen, task: usize, n: u64) {
    if n <= LU_BASE || g.over_budget() {
        g.b.work(task, n * n * n / 3);
        return;
    }
    let h = n / 2;
    let c = g.b.call(task);
    cholesky(g, c, h);
    let t = g.b.call(task);
    lu_trsm(g, t, n - h, h);
    let s = g.b.call(task);
    syrk(g, s, n - h, h);
    let c = g.b.call(task);
    cholesky(g, c, n - h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig, SimFlavor};

    #[test]
    fn all_benchmarks_generate_valid_dags() {
        for bench in SimBench::ALL {
            let dag = generate(bench, bench.quick_scale());
            assert_eq!(dag.validate(), Ok(()), "{}", bench.name());
            assert!(dag.total_work() > 0, "{}", bench.name());
            assert!(dag.spawn_count() > 0, "{}", bench.name());
            assert!(dag.span() <= dag.total_work(), "{}", bench.name());
        }
    }

    #[test]
    fn default_scales_fit_budget() {
        for bench in SimBench::ALL {
            let dag = generate(bench, bench.default_scale());
            assert!(
                dag.tasks.len() <= TASK_BUDGET + 64,
                "{}: {} tasks",
                bench.name(),
                dag.tasks.len()
            );
            // Enough parallelism to be worth simulating.
            assert!(
                dag.total_work() / dag.span().max(1) >= 8,
                "{}: parallelism {} too low",
                bench.name(),
                dag.total_work() / dag.span().max(1)
            );
        }
    }

    #[test]
    fn generated_dags_are_deterministic() {
        for bench in [SimBench::Knapsack, SimBench::Quicksort] {
            let a = generate(bench, bench.quick_scale());
            let b = generate(bench, bench.quick_scale());
            assert_eq!(a.total_work(), b.total_work());
            assert_eq!(a.tasks.len(), b.tasks.len());
        }
    }

    #[test]
    fn every_bench_simulates_under_every_flavor() {
        for bench in SimBench::ALL {
            let dag = generate(bench, bench.quick_scale());
            for flavor in SimFlavor::ALL {
                let r = simulate(&dag, SimConfig::new(flavor, 4));
                assert!(
                    r.makespan >= dag.span(),
                    "{}/{}: makespan below span",
                    bench.name(),
                    flavor.name()
                );
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for b in SimBench::ALL {
            assert_eq!(SimBench::parse(b.name()), Some(b));
        }
    }
}
