//! The simulator's cost model.
//!
//! All times are virtual nanoseconds. The absolute values are rough
//! calibrations of a modern many-core x86 (cache-line transfer ≈ 20 ns
//! cross-core, lock handoff ≈ 60–120 ns, stack switch ≈ 100–200 ns,
//! `madvise` syscall ≈ 1–2 µs); what the experiments depend on is the
//! *structure* — which operations serialize on which shared resources —
//! not the absolute numbers. See DESIGN.md §2 for the substitution
//! rationale (the host has one CPU; real 256-thread runs are impossible).

/// Virtual-time costs of runtime-system operations.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Continuation capture + deque push at a spawn (Nowa/Fibril fast path).
    pub spawn: u64,
    /// Successful `popBottom` of the own continuation (fast path).
    pub pop: u64,
    /// One steal attempt (remote deque probe — a cache miss).
    pub steal_attempt: u64,
    /// Extra cost of a successful steal (resume switch + cold frame).
    pub steal_success: u64,
    /// Uncontended cost of a lock/unlock pair (the *local* price of a
    /// lock-based critical section; the `*_hold` values are what everyone
    /// else waits for under contention).
    pub lock_local: u64,
    /// Hold time of the Chase–Lev `top` cache line per claiming CAS.
    pub cl_top_hold: u64,
    /// Hold time of the THE deque lock per thief operation.
    pub the_lock_hold: u64,
    /// Hold time of the fully-locked (Fibril) deque per operation —
    /// including the owner's pushes and pops (Listing 2's design).
    pub fused_lock_hold: u64,
    /// Hold time of the Fibril per-frame lock (count update).
    pub frame_lock_hold: u64,
    /// Hold time of the Nowa sync-counter cache line per `fetch_sub`.
    pub counter_hold: u64,
    /// Local (uncontended) part of a child join.
    pub join_local: u64,
    /// Explicit sync with the condition already satisfied.
    pub sync_fast: u64,
    /// Suspension at an explicit sync (capture + stack handoff + restore).
    pub suspend: u64,
    /// Resuming a suspended sync continuation (stack switch).
    pub resume_sync: u64,
    /// Idle backoff quantum after a failed steal sweep.
    pub idle_backoff: u64,
    /// Dynamic allocation of a child task (child-stealing runtimes, §II-B).
    pub child_alloc: u64,
    /// Dispatch overhead per executed child task (child stealing).
    pub child_exec: u64,
    /// Hold time of the central queue lock (libgomp stand-in), per op.
    pub central_lock_hold: u64,
    /// Per-task bookkeeping surcharge of the OpenMP stand-in (creation +
    /// completion signalling).
    pub omp_task_overhead: u64,
    /// Poll interval of a worker blocked at a child-stealing join.
    pub join_poll: u64,
    /// `madvise` syscall on suspension (when the policy is enabled).
    pub madvise_syscall: u64,
    /// Page-refault cost when a madvised stack is reused.
    pub madvise_refault: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            spawn: 25,
            pop: 10,
            steal_attempt: 30,
            steal_success: 150,
            lock_local: 6,
            cl_top_hold: 20,
            the_lock_hold: 90,
            fused_lock_hold: 130,
            frame_lock_hold: 80,
            counter_hold: 18,
            join_local: 15,
            sync_fast: 5,
            suspend: 200,
            resume_sync: 150,
            idle_backoff: 400,
            child_alloc: 90,
            child_exec: 40,
            central_lock_hold: 120,
            omp_task_overhead: 150,
            join_poll: 200,
            madvise_syscall: 1400,
            madvise_refault: 900,
        }
    }
}

/// A serially-owned resource — a lock or a contended cache line — with an
/// ownership-aware (MESI-like) contention model.
///
/// An acquisition by the *same* worker that used the resource last costs
/// only `local` ns (the line/lock word is already in its cache — this is
/// why an uncontended lock is cheap). An acquisition by a *different*
/// worker additionally waits for the `handoff` (cross-core cache-line
/// transfer + lock handoff latency) after the previous user's local work.
/// Under contention, successive owners therefore serialize at
/// `local + handoff` per operation — the asymmetry that makes lock-based
/// runtime layers collapse at high thread counts while the same code is
/// free at low counts (§IV of the paper).
#[derive(Debug, Clone, Copy)]
pub struct Resource {
    /// When the last owner finished its local work.
    free_self: u64,
    /// When another worker could complete a takeover.
    free_other: u64,
    last: u32,
}

impl Default for Resource {
    fn default() -> Resource {
        Resource {
            free_self: 0,
            free_other: 0,
            last: u32::MAX,
        }
    }
}

impl Resource {
    /// Acquire at `now` by `owner`; busy for `local` ns once available,
    /// with `handoff` ns added for a change of ownership. Returns the time
    /// the caller is done.
    #[inline]
    pub fn acquire(&mut self, now: u64, owner: u32, local: u64, handoff: u64) -> u64 {
        let available = if owner == self.last {
            self.free_self
        } else {
            self.free_other.max(self.free_self) + handoff
        };
        let start = available.max(now);
        self.free_self = start + local;
        self.free_other = start + local;
        self.last = owner;
        start + local
    }

    /// The time the last owner finished (tests/diagnostics).
    pub fn free_at(&self) -> u64 {
        self.free_self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_owner_reacquire_is_local_only() {
        let mut r = Resource::default();
        // First touch by worker 0: the idle handoff window has long
        // passed, so only the local cost is paid.
        assert_eq!(r.acquire(100, 0, 10, 60), 110);
        // Re-acquisition by the same worker: local cost only.
        assert_eq!(r.acquire(110, 0, 10, 60), 120);
        assert_eq!(r.acquire(500, 0, 10, 60), 510);
    }

    #[test]
    fn ownership_changes_serialize_with_handoff() {
        let mut r = Resource::default();
        let t0 = r.acquire(1000, 0, 10, 60);
        assert_eq!(t0, 1010);
        // Worker 1 arrives concurrently: waits for the release at 1010,
        // then pays the cross-core handoff + its local work.
        let t1 = r.acquire(1000, 1, 10, 60);
        assert_eq!(t1, 1010 + 60 + 10);
        // Worker 2 queues behind worker 1.
        let t2 = r.acquire(1000, 2, 10, 60);
        assert_eq!(t2, 1080 + 60 + 10);
        // Same-owner chains stay cheap even after contention.
        assert_eq!(r.acquire(1000, 2, 10, 60), 1160);
    }

    #[test]
    fn default_costs_are_ordered_sanely() {
        let c = CostModel::default();
        assert!(c.counter_hold < c.frame_lock_hold);
        assert!(c.cl_top_hold < c.the_lock_hold);
        assert!(c.the_lock_hold <= c.fused_lock_hold);
        assert!(
            c.spawn < c.child_alloc,
            "continuation stealing avoids the allocator"
        );
    }
}
