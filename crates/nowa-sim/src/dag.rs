//! The fork/join DAG the simulator executes (§III-A's model).
//!
//! A [`SimDag`] is a tree of *tasks* (spawning-function instances). Each
//! task is a program: a sequence of [`Item`]s — serial strands, spawn
//! points (each referencing a statically known child task) and sync
//! points. This is exactly the fully-strict shape of Listing 3: any number
//! of `spawn … sync` regions per task, children joining at the next sync.
//!
//! Benchmark generators (see [`crate::bench_dags`]) expand the real
//! kernels' recursion to a bounded number of tasks and aggregate the
//! remainder into leaf strand work, keeping total work exact while
//! bounding simulation cost.

/// One step in a task's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Item {
    /// A serial strand of the given virtual-ns work.
    Work(u64),
    /// A spawn point: the child is the task with this index.
    Spawn(usize),
    /// A *sequential* call of a nested spawning function: the callee has
    /// its own frame (own sync counters) but is not stealable — the caller
    /// resumes when it returns. This is what `join2`'s second closure or a
    /// plain recursive call of a spawning function compiles to.
    Call(usize),
    /// An explicit sync point ending the current region.
    Sync,
}

/// One spawning-function instance.
#[derive(Debug, Clone, Default)]
pub struct TaskProg {
    /// The task's program.
    pub items: Vec<Item>,
}

/// A complete benchmark DAG.
#[derive(Debug, Clone)]
pub struct SimDag {
    /// All tasks; index 0 is the root.
    pub tasks: Vec<TaskProg>,
}

impl SimDag {
    /// Creates a DAG with an empty root; build with [`DagBuilder`] instead
    /// for anything non-trivial.
    pub fn single(work: u64) -> SimDag {
        SimDag {
            tasks: vec![TaskProg {
                items: vec![Item::Work(work)],
            }],
        }
    }

    /// Total serial work (the `T_s` of the simulated program).
    pub fn total_work(&self) -> u64 {
        self.tasks
            .iter()
            .flat_map(|t| &t.items)
            .map(|i| match i {
                Item::Work(w) => *w,
                _ => 0,
            })
            .sum()
    }

    /// Number of spawn edges.
    pub fn spawn_count(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|t| &t.items)
            .filter(|i| matches!(i, Item::Spawn(_)))
            .count()
    }

    /// The critical path (span) in virtual ns, ignoring runtime overheads.
    /// Computed by the standard work/span recurrence over the task tree.
    pub fn span(&self) -> u64 {
        self.span_of(0)
    }

    fn span_of(&self, task: usize) -> u64 {
        let mut total = 0u64; // sequential accumulation across regions
        let mut region_max_child: u64 = 0; // longest child span in region
        let mut region_offset = 0u64; // strand time within the region
        for item in &self.tasks[task].items {
            match item {
                Item::Work(w) => region_offset += w,
                Item::Spawn(child) => {
                    // Child starts at the current offset within the region.
                    let child_end = region_offset + self.span_of(*child);
                    region_max_child = region_max_child.max(child_end);
                }
                Item::Call(child) => {
                    // Sequential composition.
                    region_offset += self.span_of(*child);
                }
                Item::Sync => {
                    region_offset = region_offset.max(region_max_child);
                    total += region_offset;
                    region_offset = 0;
                    region_max_child = 0;
                }
            }
        }
        total + region_offset.max(region_max_child)
    }

    /// Structural validation: spawn indices in range, acyclic (tree-shaped:
    /// every non-root task spawned exactly once), regions well-formed.
    pub fn validate(&self) -> Result<(), String> {
        let mut spawned = vec![0u32; self.tasks.len()];
        for (ti, task) in self.tasks.iter().enumerate() {
            let mut open_spawns = 0usize;
            for item in &task.items {
                match item {
                    Item::Spawn(c) | Item::Call(c) => {
                        if *c >= self.tasks.len() {
                            return Err(format!("task {ti}: reference to unknown task {c}"));
                        }
                        if *c <= ti {
                            return Err(format!("task {ti}: reference to non-descendant {c}"));
                        }
                        spawned[*c] += 1;
                        if matches!(item, Item::Spawn(_)) {
                            open_spawns += 1;
                        }
                    }
                    Item::Sync => open_spawns = 0,
                    Item::Work(_) => {}
                }
            }
            // Trailing spawns without an explicit sync are a builder error;
            // the engine relies on explicit syncs.
            if open_spawns > 0 {
                return Err(format!("task {ti}: spawns after the last sync"));
            }
        }
        for (ti, &count) in spawned.iter().enumerate().skip(1) {
            if count != 1 {
                return Err(format!("task {ti} spawned {count} times (expected 1)"));
            }
        }
        Ok(())
    }
}

/// Incremental DAG builder.
pub struct DagBuilder {
    tasks: Vec<TaskProg>,
}

impl DagBuilder {
    /// Starts a DAG whose root is task 0.
    #[allow(clippy::new_without_default)]
    pub fn new() -> DagBuilder {
        DagBuilder {
            tasks: vec![TaskProg::default()],
        }
    }

    /// Number of tasks allocated so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Allocates a new empty task and returns its id.
    pub fn new_task(&mut self) -> usize {
        self.tasks.push(TaskProg::default());
        self.tasks.len() - 1
    }

    /// Appends a work strand to `task` (coalescing adjacent strands).
    pub fn work(&mut self, task: usize, w: u64) {
        if w == 0 {
            return;
        }
        if let Some(Item::Work(prev)) = self.tasks[task].items.last_mut() {
            *prev += w;
            return;
        }
        self.tasks[task].items.push(Item::Work(w));
    }

    /// Appends a spawn of a fresh child to `task`; returns the child id.
    pub fn spawn(&mut self, task: usize) -> usize {
        let child = self.new_task();
        self.tasks[task].items.push(Item::Spawn(child));
        child
    }

    /// Appends a sequential call of a fresh callee; returns the callee id.
    pub fn call(&mut self, task: usize) -> usize {
        let child = self.new_task();
        self.tasks[task].items.push(Item::Call(child));
        child
    }

    /// Appends a sync point to `task`.
    pub fn sync(&mut self, task: usize) {
        self.tasks[task].items.push(Item::Sync);
    }

    /// Finishes the DAG (appending a final sync to any task with trailing
    /// spawns, which mirrors the implicit sync at function return).
    pub fn build(mut self) -> SimDag {
        for task in &mut self.tasks {
            let mut open = false;
            for item in &task.items {
                match item {
                    Item::Spawn(_) => open = true,
                    Item::Sync => open = false,
                    Item::Work(_) | Item::Call(_) => {}
                }
            }
            if open {
                task.items.push(Item::Sync);
            }
        }
        let dag = SimDag { tasks: self.tasks };
        debug_assert_eq!(dag.validate(), Ok(()));
        dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// fib-like binary tree of depth `d`.
    fn binary(depth: u32, leaf: u64, node: u64) -> SimDag {
        fn rec(b: &mut DagBuilder, task: usize, depth: u32, leaf: u64, node: u64) {
            if depth == 0 {
                b.work(task, leaf);
                return;
            }
            b.work(task, node);
            let c1 = b.spawn(task);
            rec(b, c1, depth - 1, leaf, node);
            // Continuation runs the second child inline (join2 shape).
            let c2 = b.spawn(task);
            rec(b, c2, depth - 1, leaf, node);
            b.sync(task);
        }
        let mut b = DagBuilder::new();
        rec(&mut b, 0, depth, leaf, node);
        b.build()
    }

    #[test]
    fn total_work_counts_all_strands() {
        let dag = binary(3, 100, 10);
        // 8 leaves * 100 + 7 internal * 10.
        assert_eq!(dag.total_work(), 8 * 100 + 7 * 10);
        assert_eq!(dag.spawn_count(), 14);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn span_of_balanced_tree() {
        let dag = binary(3, 100, 0);
        // With zero node work, the span equals one root-to-leaf path: 100.
        assert_eq!(dag.span(), 100);
        let dag = binary(3, 100, 10);
        // Each level adds its node work once along the path.
        assert_eq!(dag.span(), 100 + 3 * 10);
    }

    #[test]
    fn span_of_sequential_regions() {
        let mut b = DagBuilder::new();
        b.work(0, 50);
        let c1 = b.spawn(0);
        b.work(c1, 200);
        b.sync(0);
        b.work(0, 50);
        let c2 = b.spawn(0);
        b.work(c2, 300);
        b.sync(0);
        let dag = b.build();
        // Regions serialize: 50→(child 200)→50→(child 300).
        assert_eq!(dag.span(), 50 + 200 + 50 + 300);
        assert_eq!(dag.total_work(), 600);
    }

    #[test]
    fn builder_closes_trailing_region() {
        let mut b = DagBuilder::new();
        let c = b.spawn(0);
        b.work(c, 10);
        let dag = b.build();
        assert_eq!(dag.tasks[0].items.last(), Some(&Item::Sync));
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn validate_rejects_double_spawn() {
        let dag = SimDag {
            tasks: vec![
                TaskProg {
                    items: vec![Item::Spawn(1), Item::Spawn(1), Item::Sync],
                },
                TaskProg {
                    items: vec![Item::Work(1)],
                },
            ],
        };
        assert!(dag.validate().is_err());
    }

    #[test]
    fn single_task_dag() {
        let dag = SimDag::single(500);
        assert_eq!(dag.total_work(), 500);
        assert_eq!(dag.span(), 500);
        assert_eq!(dag.spawn_count(), 0);
    }
}
