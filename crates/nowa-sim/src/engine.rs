//! The discrete-event engine: replays a scheduling protocol over a
//! [`SimDag`] with `P` virtual workers.
//!
//! Workers advance in global virtual-time order (always stepping the
//! worker with the smallest clock), so shared state — deques, join
//! counters, lock resources — is observed in a causally consistent order.
//! Contended operations go through [`Resource`]s, which serialize
//! overlapping holders; this is where lock-based designs lose scalability
//! and the wait-free design does not (§IV of the paper).
//!
//! Two execution disciplines are implemented:
//!
//! * **continuation stealing** (Nowa, Nowa-THE, Fibril): spawn runs the
//!   child immediately and offers the continuation; the post-child
//!   `pop-or-join` and the two-phase sync counter follow §III-B/§IV-B,
//!   including Fibril's fused deque+frame locking (Listing 2).
//! * **child stealing / task queuing** (TBB-, libomp-, libgomp-like):
//!   spawn defers a heap-allocated child and the parent continues; a sync
//!   blocks the worker, which *helps* according to the runtime's
//!   discipline (own deque only for tied tasks, anywhere for untied,
//!   the central queue for the libgomp stand-in).

use std::collections::VecDeque;

use crate::cost::{CostModel, Resource};
use crate::dag::{Item, SimDag};

/// Which runtime system the engine replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFlavor {
    /// Nowa: wait-free join protocol + Chase–Lev deque.
    NowaCl,
    /// Nowa's protocol over the THE deque (Fig. 9 ablation).
    NowaThe,
    /// Fibril: lock-based joins, fully locked deque (Listing 2).
    FibrilLock,
    /// TBB stand-in: child stealing, per-worker deques.
    ChildStealTbb,
    /// libgomp stand-in: one central locked queue.
    GlobalQueueGomp,
    /// libomp stand-in: child-stealing tasking, tied or untied.
    WsTasksOmp {
        /// Tied tasks: blocked workers only run their own tasks.
        tied: bool,
    },
}

impl SimFlavor {
    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            SimFlavor::NowaCl => "nowa",
            SimFlavor::NowaThe => "nowa-the",
            SimFlavor::FibrilLock => "fibril",
            SimFlavor::ChildStealTbb => "tbb",
            SimFlavor::GlobalQueueGomp => "libgomp",
            SimFlavor::WsTasksOmp { tied: false } => "libomp-untied",
            SimFlavor::WsTasksOmp { tied: true } => "libomp-tied",
        }
    }

    /// Parses the names produced by [`SimFlavor::name`].
    pub fn parse(name: &str) -> Option<SimFlavor> {
        match name {
            "nowa" => Some(SimFlavor::NowaCl),
            "nowa-the" => Some(SimFlavor::NowaThe),
            "fibril" => Some(SimFlavor::FibrilLock),
            "tbb" => Some(SimFlavor::ChildStealTbb),
            "libgomp" => Some(SimFlavor::GlobalQueueGomp),
            "libomp-untied" => Some(SimFlavor::WsTasksOmp { tied: false }),
            "libomp-tied" => Some(SimFlavor::WsTasksOmp { tied: true }),
            _ => None,
        }
    }

    /// All flavors.
    pub const ALL: [SimFlavor; 7] = [
        SimFlavor::NowaCl,
        SimFlavor::NowaThe,
        SimFlavor::FibrilLock,
        SimFlavor::ChildStealTbb,
        SimFlavor::GlobalQueueGomp,
        SimFlavor::WsTasksOmp { tied: false },
        SimFlavor::WsTasksOmp { tied: true },
    ];

    fn is_continuation_stealing(&self) -> bool {
        matches!(
            self,
            SimFlavor::NowaCl | SimFlavor::NowaThe | SimFlavor::FibrilLock
        )
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Runtime flavor to replay.
    pub flavor: SimFlavor,
    /// Number of virtual workers (the paper sweeps 1–256).
    pub workers: usize,
    /// RNG seed (victim selection).
    pub seed: u64,
    /// Apply the madvise-on-suspension policy (§V-B; continuation flavors).
    pub madvise: bool,
    /// Physical cores of the modelled machine (the paper's testbed has
    /// 128 cores × 2-way SMT = 256 hardware threads).
    pub cores: usize,
    /// Throughput a second SMT sibling adds to a busy core (0.45 ≈ typical
    /// for integer-heavy code on Zen 2).
    pub smt_efficiency: f64,
    /// Cost model.
    pub costs: CostModel,
}

impl SimConfig {
    /// Default configuration for `flavor` with `workers` workers.
    pub fn new(flavor: SimFlavor, workers: usize) -> SimConfig {
        SimConfig {
            flavor,
            workers,
            seed: 0x5EED,
            madvise: false,
            cores: 128,
            smt_efficiency: 0.45,
            costs: CostModel::default(),
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Virtual completion time of the root task.
    pub makespan: u64,
    /// Total strand work in the DAG (`T_s` of the simulated program).
    pub total_work: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal sweeps.
    pub failed_sweeps: u64,
    /// Joins (continuation mode) / completed deferred children (child mode).
    pub joins: u64,
    /// Sync suspensions (continuation mode) / blocked joins (child mode).
    pub suspensions: u64,
    /// Engine events processed.
    pub events: u64,
}

impl SimResult {
    /// Speedup relative to the overhead-free serial execution.
    pub fn speedup(&self) -> f64 {
        self.total_work as f64 / self.makespan.max(1) as f64
    }
}

#[derive(Clone, Default)]
struct TState {
    pc: usize,
    parent: usize,
    ret_pc: usize,
    /// Entered via `Item::Call` (sequential): completion returns to the
    /// caller directly, with no deque pop and no join.
    called: bool,
    /// Continuation mode: forks (α) and joins (ω) of the current region.
    alpha: u32,
    omega: u32,
    suspended: bool,
    /// Child mode: deferred children outstanding in the current region.
    outstanding: u32,
    /// Pending madvise refault cost to pay on resume.
    refault: bool,
    /// Fibril per-frame lock.
    frame_lock: Resource,
    /// Nowa sync-counter cache line.
    counter_line: Resource,
}

enum WMode {
    /// Executing a task (continuation + child modes).
    Exec(usize),
    /// Looking for work.
    Idle,
}

struct Engine<'d> {
    dag: &'d SimDag,
    cfg: SimConfig,
    clock: Vec<u64>,
    mode: Vec<WMode>,
    /// Child mode: per-worker stack of tasks blocked at their sync.
    blocked: Vec<Vec<usize>>,
    /// Continuation records `(task, resume pc)` or deferred child ids
    /// (child mode, stored as `(task, 0)`).
    deques: Vec<VecDeque<(usize, usize)>>,
    central: VecDeque<(usize, usize)>,
    tasks: Vec<TState>,
    /// Per-deque thief-side resource (THE lock / fused lock / CL top line).
    deque_res: Vec<Resource>,
    central_res: Resource,
    rng: u64,
    backoff: Vec<u64>,
    /// Per-unit work multiplier (×1024 fixed point) modelling SMT sharing:
    /// beyond `cores` workers, siblings share pipelines.
    work_mult: u64,
    result: SimResult,
    finished: bool,
}

impl<'d> Engine<'d> {
    fn new(dag: &'d SimDag, cfg: SimConfig) -> Engine<'d> {
        let p = cfg.workers.max(1);
        let mut tasks = vec![TState::default(); dag.tasks.len()];
        // Precompute parent/return-pc links (each task is spawned once).
        for (ti, prog) in dag.tasks.iter().enumerate() {
            for (pc, item) in prog.items.iter().enumerate() {
                match item {
                    Item::Spawn(c) => {
                        tasks[*c].parent = ti;
                        tasks[*c].ret_pc = pc + 1;
                    }
                    Item::Call(c) => {
                        tasks[*c].parent = ti;
                        tasks[*c].ret_pc = pc + 1;
                        tasks[*c].called = true;
                    }
                    _ => {}
                }
            }
        }
        let total_work = dag.total_work();
        // SMT model: P workers supply min(P, cores + (P-cores)·eff)
        // core-equivalents; each worker's strands slow down accordingly.
        let work_mult = if p <= cfg.cores {
            1024
        } else {
            let equiv = cfg.cores as f64 + (p - cfg.cores) as f64 * cfg.smt_efficiency;
            ((p as f64 / equiv) * 1024.0) as u64
        };
        Engine {
            dag,
            clock: vec![0; p],
            mode: (0..p)
                .map(|w| if w == 0 { WMode::Exec(0) } else { WMode::Idle })
                .collect(),
            blocked: vec![Vec::new(); p],
            deques: vec![VecDeque::new(); p],
            central: VecDeque::new(),
            tasks,
            deque_res: vec![Resource::default(); p],
            central_res: Resource::default(),
            rng: cfg.seed | 1,
            backoff: vec![cfg.costs.idle_backoff; p],
            work_mult,
            result: SimResult {
                makespan: 0,
                total_work,
                steals: 0,
                failed_sweeps: 0,
                joins: 0,
                suspensions: 0,
                events: 0,
            },
            finished: false,
            cfg,
        }
    }

    #[inline]
    fn rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The owner-side deque-op cost: only Fibril's fully locked deque makes
    /// the owner synchronise on (and serialize with thieves over) its own
    /// queue; the lock-free/elided owners pay nothing here.
    #[inline]
    fn owner_deque_op(&mut self, w: usize, t: u64) -> u64 {
        match self.cfg.flavor {
            SimFlavor::FibrilLock => {
                let c = &self.cfg.costs;
                self.deque_res[w].acquire(t, w as u32, c.lock_local, c.fused_lock_hold)
            }
            _ => t,
        }
    }

    /// Thief-side claim on `victim`'s deque.
    #[inline]
    fn thief_deque_claim(&mut self, thief: usize, victim: usize, t: u64) -> u64 {
        let c = &self.cfg.costs;
        let id = thief as u32;
        match self.cfg.flavor {
            SimFlavor::NowaCl => {
                // One claiming CAS on the top counter's cache line.
                self.deque_res[victim].acquire(t, id, c.lock_local, c.cl_top_hold)
            }
            SimFlavor::NowaThe => {
                self.deque_res[victim].acquire(t, id, c.lock_local, c.the_lock_hold)
            }
            SimFlavor::FibrilLock => {
                self.deque_res[victim].acquire(t, id, c.lock_local, c.fused_lock_hold)
            }
            // Child-stealing deques are mutex-protected per worker.
            SimFlavor::ChildStealTbb | SimFlavor::WsTasksOmp { .. } => {
                self.deque_res[victim].acquire(t, id, c.lock_local, c.the_lock_hold)
            }
            SimFlavor::GlobalQueueGomp => unreachable!("gomp steals from the central queue"),
        }
    }

    /// Fork bookkeeping when a continuation is taken as new work.
    #[inline]
    fn fork_bookkeeping(&mut self, w: usize, frame: usize, t: u64) -> u64 {
        match self.cfg.flavor {
            SimFlavor::FibrilLock => {
                let local = self.cfg.costs.lock_local;
                let hold = self.cfg.costs.frame_lock_hold;
                self.tasks[frame].alpha += 1;
                let mut lock = self.tasks[frame].frame_lock;
                let t = lock.acquire(t, w as u32, local, hold);
                self.tasks[frame].frame_lock = lock;
                t
            }
            _ => {
                // Nowa: α is unsynchronised (Invariant II).
                self.tasks[frame].alpha += 1;
                t
            }
        }
    }

    /// Child-join bookkeeping (ω increment + condition check).
    /// Returns `(time, condition_holds)`.
    #[inline]
    fn join_bookkeeping(&mut self, w: usize, frame: usize, t: u64) -> (u64, bool) {
        let c = self.cfg.costs.clone();
        let t = t + c.join_local;
        let id = w as u32;
        let t = match self.cfg.flavor {
            SimFlavor::FibrilLock => {
                let mut lock = self.tasks[frame].frame_lock;
                let t = lock.acquire(t, id, c.lock_local, c.frame_lock_hold);
                self.tasks[frame].frame_lock = lock;
                t
            }
            _ => {
                let mut line = self.tasks[frame].counter_line;
                let t = line.acquire(t, id, c.lock_local, c.counter_hold);
                self.tasks[frame].counter_line = line;
                t
            }
        };
        self.tasks[frame].omega += 1;
        let task = &self.tasks[frame];
        (t, task.suspended && task.alpha == task.omega)
    }

    /// One engine step for the globally earliest worker. Returns false
    /// once the root task completed.
    fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        self.result.events += 1;
        // Earliest worker goes next.
        let w = (0..self.clock.len())
            .min_by_key(|&w| self.clock[w])
            .expect("at least one worker");
        if self.cfg.flavor.is_continuation_stealing() {
            self.step_cont(w);
        } else {
            self.step_child(w);
        }
        !self.finished
    }

    // ----- continuation-stealing discipline -------------------------------

    fn step_cont(&mut self, w: usize) {
        let t = self.clock[w];
        match self.mode[w] {
            WMode::Exec(task) => self.step_cont_exec(w, task, t),
            WMode::Idle => self.step_cont_idle(w, t),
        }
    }

    fn step_cont_exec(&mut self, w: usize, task: usize, t: u64) {
        let c = self.cfg.costs.clone();
        let pc = self.tasks[task].pc;
        match self.dag.tasks[task].items.get(pc).copied() {
            Some(Item::Work(work)) => {
                self.clock[w] = t + (work * self.work_mult) / 1024;
                self.tasks[task].pc += 1;
            }
            Some(Item::Spawn(child)) => {
                let t = t + c.spawn;
                let t = self.owner_deque_op(w, t);
                self.tasks[task].pc = pc + 1;
                self.deques[w].push_back((task, pc + 1));
                // Child-first: descend immediately (no stack switch cost on
                // the fast path beyond what `spawn` already charged).
                self.tasks[child].pc = 0;
                self.mode[w] = WMode::Exec(child);
                self.clock[w] = t;
            }
            Some(Item::Call(child)) => {
                // Sequential call: descend; the return is direct.
                self.tasks[task].pc = pc + 1;
                self.tasks[child].pc = 0;
                self.mode[w] = WMode::Exec(child);
                self.clock[w] = t + 2; // call overhead
            }
            Some(Item::Sync) => {
                let task_state = &self.tasks[task];
                if task_state.alpha == task_state.omega {
                    // Condition holds: inline sync.
                    let t = t + c.sync_fast;
                    let t = if self.cfg.flavor == SimFlavor::FibrilLock {
                        let mut lock = self.tasks[task].frame_lock;
                        let t = lock.acquire(t, w as u32, c.lock_local, c.frame_lock_hold);
                        self.tasks[task].frame_lock = lock;
                        t
                    } else {
                        t
                    };
                    self.tasks[task].alpha = 0;
                    self.tasks[task].omega = 0;
                    self.tasks[task].pc = pc + 1;
                    self.clock[w] = t;
                } else {
                    // Suspend: capture + restore (Eq. 5 for Nowa, frame
                    // lock for Fibril), stack handoff, optional madvise.
                    let mut t = t + c.suspend;
                    t = match self.cfg.flavor {
                        SimFlavor::FibrilLock => {
                            let mut lock = self.tasks[task].frame_lock;
                            let t2 = lock.acquire(t, w as u32, c.lock_local, c.frame_lock_hold);
                            self.tasks[task].frame_lock = lock;
                            t2
                        }
                        _ => {
                            let mut line = self.tasks[task].counter_line;
                            let t2 = line.acquire(t, w as u32, c.lock_local, c.counter_hold);
                            self.tasks[task].counter_line = line;
                            t2
                        }
                    };
                    if self.cfg.madvise {
                        t += c.madvise_syscall;
                        self.tasks[task].refault = true;
                    }
                    self.tasks[task].suspended = true;
                    self.result.suspensions += 1;
                    self.mode[w] = WMode::Idle;
                    self.clock[w] = t;
                }
            }
            None => {
                // Task complete.
                if task == 0 {
                    self.finished = true;
                    self.result.makespan = t;
                    return;
                }
                let parent = self.tasks[task].parent;
                let ret_pc = self.tasks[task].ret_pc;
                if self.tasks[task].called {
                    // Sequential return: no deque traffic, no join.
                    debug_assert_eq!(self.tasks[parent].pc, ret_pc);
                    self.mode[w] = WMode::Exec(parent);
                    self.clock[w] = t + 2;
                    return;
                }
                let t = t + c.pop;
                let t = self.owner_deque_op(w, t);
                if let Some((pt, rpc)) = self.deques[w].pop_back() {
                    debug_assert_eq!((pt, rpc), (parent, ret_pc), "LIFO invariant");
                    // Fast path: continue the parent directly.
                    self.mode[w] = WMode::Exec(parent);
                    self.clock[w] = t;
                } else {
                    // Continuation stolen: child join.
                    self.result.joins += 1;
                    let (mut t, condition) = self.join_bookkeeping(w, parent, t);
                    if condition {
                        // Last joiner resumes the suspended sync.
                        self.tasks[parent].suspended = false;
                        self.tasks[parent].alpha = 0;
                        self.tasks[parent].omega = 0;
                        self.tasks[parent].pc += 1; // past the Sync item
                        t += c.resume_sync;
                        if self.tasks[parent].refault {
                            t += c.madvise_refault;
                            self.tasks[parent].refault = false;
                        }
                        self.mode[w] = WMode::Exec(parent);
                    } else {
                        self.mode[w] = WMode::Idle;
                    }
                    self.clock[w] = t;
                }
            }
        }
    }

    fn step_cont_idle(&mut self, w: usize, t: u64) {
        let c = self.cfg.costs.clone();
        // Local work first (the self-pop is a fork, §III-B).
        if !self.deques[w].is_empty() {
            let t = t + c.pop;
            let t = self.owner_deque_op(w, t);
            let (pt, rpc) = self.deques[w].pop_back().expect("checked non-empty");
            let t = self.fork_bookkeeping(w, pt, t);
            self.tasks[pt].pc = rpc;
            self.mode[w] = WMode::Exec(pt);
            self.clock[w] = t;
            self.backoff[w] = c.idle_backoff;
            return;
        }
        // Random steal attempts: like Listing 2's loop, pick a random
        // victim per attempt; a handful of attempts per engine step keeps
        // the probe pressure realistic (thieves back off between sweeps).
        let p = self.clock.len();
        let mut t = t;
        if p > 1 {
            for _ in 0..4.min(p - 1) {
                let victim = (self.rand() as usize) % p;
                if victim == w {
                    continue;
                }
                t += c.steal_attempt;
                if self.deques[victim].is_empty() {
                    // Listing 2 (Fibril) and the Cilk-5 THE protocol lock
                    // the victim's deque even to find it empty — thieves
                    // interfere with the victim's own hot path. The CL
                    // thief only performs loads on an empty deque.
                    match self.cfg.flavor {
                        SimFlavor::FibrilLock => {
                            t = self.deque_res[victim].acquire(
                                t,
                                w as u32,
                                c.lock_local,
                                c.fused_lock_hold,
                            );
                        }
                        SimFlavor::NowaThe => {
                            t = self.deque_res[victim].acquire(
                                t,
                                w as u32,
                                c.lock_local,
                                c.the_lock_hold,
                            );
                        }
                        _ => {}
                    }
                    continue;
                }
                t = self.thief_deque_claim(w, victim, t);
                // The probe/claim races are already folded into the
                // resource wait; take the oldest continuation.
                let Some((pt, rpc)) = self.deques[victim].pop_front() else {
                    continue;
                };
                t = self.fork_bookkeeping(w, pt, t);
                t += c.steal_success;
                let mut t = t;
                if self.tasks[pt].refault {
                    t += c.madvise_refault;
                    self.tasks[pt].refault = false;
                }
                self.result.steals += 1;
                self.tasks[pt].pc = rpc;
                self.mode[w] = WMode::Exec(pt);
                self.clock[w] = t;
                self.backoff[w] = c.idle_backoff;
                return;
            }
        }
        // Nothing found: back off.
        self.result.failed_sweeps += 1;
        self.clock[w] = t + self.backoff[w];
        self.backoff[w] = (self.backoff[w] * 2).min(5_000);
    }

    // ----- child-stealing / task-queue discipline --------------------------

    fn push_task(&mut self, w: usize, child: usize, t: u64) -> u64 {
        let c = &self.cfg.costs;
        match self.cfg.flavor {
            SimFlavor::GlobalQueueGomp => {
                let t =
                    self.central_res
                        .acquire(t, w as u32, c.lock_local * 2, c.central_lock_hold);
                self.central.push_back((child, 0));
                t
            }
            _ => {
                // Per-worker locked deque (owner side).
                let t = self.deque_res[w].acquire(t, w as u32, c.lock_local, c.the_lock_hold);
                self.deques[w].push_back((child, 0));
                t
            }
        }
    }

    /// Takes a deferred child under the given help discipline.
    fn take_task(&mut self, w: usize, own_only: bool, t: u64) -> (u64, Option<usize>) {
        let c = self.cfg.costs.clone();
        match self.cfg.flavor {
            SimFlavor::GlobalQueueGomp => {
                let t2 =
                    self.central_res
                        .acquire(t, w as u32, c.lock_local * 2, c.central_lock_hold);
                match self.central.pop_front() {
                    Some((child, _)) => (t2, Some(child)),
                    None => (t2, None),
                }
            }
            _ => {
                // Own deque (LIFO — children run in reverse order, §V-A).
                if !self.deques[w].is_empty() {
                    let t2 = self.deque_res[w].acquire(t, w as u32, c.lock_local, c.the_lock_hold);
                    let (child, _) = self.deques[w].pop_back().expect("non-empty");
                    return (t2, Some(child));
                }
                if own_only {
                    return (t, None);
                }
                let p = self.clock.len();
                let mut t = t;
                if p > 1 {
                    for _ in 0..4.min(p - 1) {
                        let victim = (self.rand() as usize) % p;
                        if victim == w {
                            continue;
                        }
                        t += c.steal_attempt;
                        if self.deques[victim].is_empty() {
                            continue;
                        }
                        let t2 = self.thief_deque_claim(w, victim, t);
                        let Some((child, _)) = self.deques[victim].pop_front() else {
                            continue;
                        };
                        self.result.steals += 1;
                        return (t2, Some(child));
                    }
                }
                (t, None)
            }
        }
    }

    fn step_child(&mut self, w: usize) {
        let t = self.clock[w];
        let c = self.cfg.costs.clone();
        match self.mode[w] {
            WMode::Exec(task) => {
                let pc = self.tasks[task].pc;
                match self.dag.tasks[task].items.get(pc).copied() {
                    Some(Item::Work(work)) => {
                        self.clock[w] = t + (work * self.work_mult) / 1024;
                        self.tasks[task].pc += 1;
                    }
                    Some(Item::Spawn(child)) => {
                        // Defer the child; the parent continues (§II-B).
                        let mut t = t + c.child_alloc;
                        if matches!(self.cfg.flavor, SimFlavor::WsTasksOmp { .. }) {
                            t += c.omp_task_overhead;
                        }
                        let t = self.push_task(w, child, t);
                        self.tasks[task].outstanding += 1;
                        self.tasks[task].pc = pc + 1;
                        self.clock[w] = t;
                    }
                    Some(Item::Call(child)) => {
                        self.tasks[task].pc = pc + 1;
                        self.tasks[child].pc = 0;
                        self.mode[w] = WMode::Exec(child);
                        self.clock[w] = t + 2;
                    }
                    Some(Item::Sync) => {
                        if self.tasks[task].outstanding == 0 {
                            self.tasks[task].pc = pc + 1;
                            self.clock[w] = t + c.sync_fast;
                        } else {
                            // Block this worker on the join; help below.
                            self.result.suspensions += 1;
                            self.blocked[w].push(task);
                            self.mode[w] = WMode::Idle;
                            self.clock[w] = t + c.sync_fast;
                        }
                    }
                    None => {
                        if task == 0 {
                            self.finished = true;
                            self.result.makespan = t;
                            return;
                        }
                        let parent = self.tasks[task].parent;
                        if self.tasks[task].called {
                            debug_assert_eq!(self.tasks[parent].pc, self.tasks[task].ret_pc);
                            self.mode[w] = WMode::Exec(parent);
                            self.clock[w] = t + 2;
                            return;
                        }
                        // Completion: notify the parent.
                        self.result.joins += 1;
                        let mut t = t;
                        if matches!(self.cfg.flavor, SimFlavor::WsTasksOmp { .. }) {
                            t += c.omp_task_overhead; // completion signalling
                        }
                        self.tasks[parent].outstanding -= 1;
                        self.mode[w] = WMode::Idle;
                        self.clock[w] = t;
                    }
                }
            }
            WMode::Idle => {
                // A blocked join to poll?
                if let Some(&task) = self.blocked[w].last() {
                    if self.tasks[task].outstanding == 0 {
                        self.blocked[w].pop();
                        self.tasks[task].pc += 1; // past the Sync
                        self.tasks[task].alpha = 0;
                        self.tasks[task].omega = 0;
                        self.mode[w] = WMode::Exec(task);
                        self.clock[w] = t + c.sync_fast;
                        return;
                    }
                    let own_only = matches!(self.cfg.flavor, SimFlavor::WsTasksOmp { tied: true });
                    let (t2, found) = self.take_task(w, own_only, t);
                    match found {
                        Some(child) => {
                            self.tasks[child].pc = 0;
                            self.mode[w] = WMode::Exec(child);
                            self.clock[w] = t2 + c.child_exec;
                        }
                        None => {
                            self.clock[w] = t2 + c.join_poll;
                        }
                    }
                    return;
                }
                // Truly idle.
                let (t2, found) = self.take_task(w, false, t);
                match found {
                    Some(child) => {
                        self.tasks[child].pc = 0;
                        self.mode[w] = WMode::Exec(child);
                        self.clock[w] = t2 + c.child_exec;
                        self.backoff[w] = c.idle_backoff;
                    }
                    None => {
                        self.result.failed_sweeps += 1;
                        self.clock[w] = t2 + self.backoff[w];
                        self.backoff[w] = (self.backoff[w] * 2).min(5_000);
                    }
                }
            }
        }
    }
}

/// Runs `dag` under `cfg` and returns the result.
pub fn simulate(dag: &SimDag, cfg: SimConfig) -> SimResult {
    debug_assert_eq!(dag.validate(), Ok(()));
    let mut engine = Engine::new(dag, cfg);
    // Safety valve against engine bugs: no run should need more events
    // than a generous multiple of the DAG size.
    let limit: u64 = 200 * dag.tasks.len() as u64 + 4_000_000 + 50_000 * engine.clock.len() as u64;
    let mut steps: u64 = 0;
    while engine.step() {
        steps += 1;
        assert!(
            steps < limit,
            "simulation exceeded event budget (engine bug?)"
        );
    }
    engine.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    fn binary_dag(depth: u32, leaf: u64, node: u64) -> SimDag {
        fn rec(b: &mut DagBuilder, task: usize, depth: u32, leaf: u64, node: u64) {
            if depth == 0 {
                b.work(task, leaf);
                return;
            }
            b.work(task, node);
            let c1 = b.spawn(task);
            rec(b, c1, depth - 1, leaf, node);
            let c2 = b.spawn(task);
            rec(b, c2, depth - 1, leaf, node);
            b.sync(task);
        }
        let mut b = DagBuilder::new();
        rec(&mut b, 0, depth, leaf, node);
        b.build()
    }

    #[test]
    fn single_worker_executes_all_work() {
        let dag = binary_dag(6, 1000, 50);
        for flavor in SimFlavor::ALL {
            let result = simulate(&dag, SimConfig::new(flavor, 1));
            assert!(
                result.makespan >= dag.total_work(),
                "{}: makespan below total work",
                flavor.name()
            );
            // Overheads are bounded: within 4x of pure work for this DAG.
            assert!(
                result.makespan < 4 * dag.total_work(),
                "{}: unreasonable overhead {} vs {}",
                flavor.name(),
                result.makespan,
                dag.total_work()
            );
        }
    }

    #[test]
    fn parallelism_reduces_makespan() {
        let dag = binary_dag(10, 5_000, 100);
        for flavor in [
            SimFlavor::NowaCl,
            SimFlavor::FibrilLock,
            SimFlavor::ChildStealTbb,
        ] {
            let t1 = simulate(&dag, SimConfig::new(flavor, 1)).makespan;
            let t8 = simulate(&dag, SimConfig::new(flavor, 8)).makespan;
            assert!(
                (t8 as f64) < 0.40 * t1 as f64,
                "{}: t1={t1} t8={t8}",
                flavor.name()
            );
        }
    }

    #[test]
    fn speedup_bounded_by_worker_count() {
        let dag = binary_dag(10, 2_000, 50);
        for flavor in SimFlavor::ALL {
            for p in [1, 2, 4, 16] {
                let s = simulate(&dag, SimConfig::new(flavor, p)).speedup();
                assert!(
                    s <= p as f64 + 1e-9,
                    "{} at P={p}: impossible speedup {s}",
                    flavor.name()
                );
            }
        }
    }

    #[test]
    fn steals_happen_with_multiple_workers() {
        let dag = binary_dag(10, 1_000, 20);
        let r = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 4));
        assert!(r.steals > 0);
    }

    #[test]
    fn nowa_beats_fibril_on_fine_grained_dag_at_high_p() {
        // fib-like: tiny strands, spawn-dominated — the paper's runtime
        // stress case (§V-A: fib, integrate, nqueens gain up to 1.6x).
        let dag = binary_dag(14, 60, 15);
        let p = 256;
        let nowa = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, p));
        let fibril = simulate(&dag, SimConfig::new(SimFlavor::FibrilLock, p));
        assert!(
            nowa.speedup() > fibril.speedup(),
            "nowa {} vs fibril {}",
            nowa.speedup(),
            fibril.speedup()
        );
    }

    #[test]
    fn gomp_collapses_on_fine_grained_tasks() {
        let dag = binary_dag(12, 100, 20);
        let gomp64 = simulate(&dag, SimConfig::new(SimFlavor::GlobalQueueGomp, 64));
        let nowa64 = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 64));
        assert!(
            nowa64.speedup() > 3.0 * gomp64.speedup(),
            "nowa {} vs gomp {}",
            nowa64.speedup(),
            gomp64.speedup()
        );
    }

    #[test]
    fn madvise_costs_show_up_under_steals() {
        let dag = binary_dag(12, 400, 40);
        let plain = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 32));
        let mut cfg = SimConfig::new(SimFlavor::NowaCl, 32);
        cfg.madvise = true;
        let madv = simulate(&dag, cfg);
        assert!(
            madv.makespan >= plain.makespan,
            "madvise should not speed things up: {} vs {}",
            madv.makespan,
            plain.makespan
        );
    }

    #[test]
    fn multi_region_dag_executes() {
        // heat-like: sequential regions on the root.
        let mut b = DagBuilder::new();
        for _ in 0..5 {
            for _ in 0..4 {
                let c = b.spawn(0);
                b.work(c, 500);
            }
            b.sync(0);
            b.work(0, 50);
        }
        let dag = b.build();
        for flavor in SimFlavor::ALL {
            let r = simulate(&dag, SimConfig::new(flavor, 4));
            assert!(r.makespan >= dag.span(), "{}", flavor.name());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let dag = binary_dag(8, 500, 20);
        let a = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 8));
        let b = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn flavor_names_round_trip() {
        for f in SimFlavor::ALL {
            assert_eq!(SimFlavor::parse(f.name()), Some(f));
        }
    }
}
