//! # nowa-sim — protocol-replay scalability simulator
//!
//! The paper evaluates on a 2 × AMD EPYC 7702 machine with 256 hardware
//! threads; this reproduction's host has a single CPU, so wall-clock
//! speedup beyond 1 is physically impossible. This crate substitutes the
//! testbed (DESIGN.md §2): a discrete-event simulator that replays the
//! *actual scheduling algorithms* — Nowa's wait-free join protocol over a
//! Chase–Lev or THE deque, Fibril's fused locking (Listing 2), and the
//! child-stealing / central-queue baselines — over fork/join DAGs shaped
//! like the twelve benchmarks, with a calibrated cost model in which locks
//! and contended cache lines are serially-owned resources.
//!
//! The absolute speedup numbers are model outputs, not measurements; the
//! *shapes* (who wins, where the gaps open, how lock-based designs flatten
//! with rising worker counts) derive from the protocols' real
//! critical-section structure.
//!
//! ```
//! use nowa_sim::{bench_dags, simulate, SimConfig, SimFlavor};
//!
//! let dag = bench_dags::generate(nowa_sim::SimBench::Fib, 18);
//! let nowa = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 64));
//! let fibril = simulate(&dag, SimConfig::new(SimFlavor::FibrilLock, 64));
//! assert!(nowa.speedup() >= fibril.speedup());
//! ```

#![warn(missing_docs)]

pub mod bench_dags;
pub mod cost;
pub mod dag;
pub mod engine;

pub use bench_dags::SimBench;
pub use cost::{CostModel, Resource};
pub use dag::{DagBuilder, Item, SimDag, TaskProg};
pub use engine::{simulate, SimConfig, SimFlavor, SimResult};
