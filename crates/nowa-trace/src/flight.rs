//! The flight recorder: a bounded, overwrite-oldest event ring.
//!
//! Unlike [`crate::EventRing`] (drop-newest, drained by an exporter), a
//! [`FlightRing`] keeps the *most recent* events and needs no consumer: it
//! can stay on for the lifetime of a production process at a fixed memory
//! cost, holding the last moments of scheduler history for post-mortem
//! dumps. The crash/stall machinery (watchdog stall reports, child-panic
//! propagation, the guard-page SIGSEGV hook) snapshots it when something
//! goes wrong.
//!
//! The producer is the owning worker and is wait-free: record is two
//! relaxed stores plus a release publish, no branches on fullness.
//! Snapshots are taken from other threads and are best-effort: a slot
//! that may have been overwritten mid-read is detected by re-checking the
//! publish counter and discarded, so a torn event is never returned.
//! (Snapshotting allocates, so the guard-page crash hook — which runs in
//! a signal handler — accepts that risk knowingly: the process is already
//! dying on a fault, and the dump is best-effort diagnostics.)

use core::sync::atomic::{AtomicU64, Ordering};

use crate::clock::now_ns;
use crate::event::{Event, EventKind};

/// A bounded overwrite-oldest ring of [`Event`]s.
///
/// Single producer (the owning worker); any thread may snapshot.
pub struct FlightRing {
    /// `2 * capacity` words: `[ts, packed]` per slot.
    slots: Box<[AtomicU64]>,
    capacity: usize,
    /// Monotonic count of events ever recorded. Slot `i` of event `n` is
    /// `n % capacity`; publication order is the counter order.
    written: AtomicU64,
}

impl FlightRing {
    /// A ring holding the last `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(8).next_power_of_two();
        let _ = now_ns(); // pin the trace epoch no later than construction
        let slots = (0..capacity * 2).map(|_| AtomicU64::new(0)).collect();
        FlightRing {
            slots,
            capacity,
            written: AtomicU64::new(0),
        }
    }

    /// The ring's capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events ever recorded (not just currently held).
    pub fn recorded(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Records an event, overwriting the oldest if full. Wait-free; only
    /// the owning worker calls this.
    // lint: hot-path
    #[inline]
    pub fn record(&self, ev: Event) {
        let n = self.written.load(Ordering::Relaxed);
        let i = (n as usize & (self.capacity - 1)) * 2;
        self.slots[i].store(ev.ts_ns, Ordering::Relaxed);
        self.slots[i + 1].store(ev.pack_word(), Ordering::Relaxed);
        // Release-publish so a snapshot that observes counter n+1 also
        // observes the slot words (modulo the overwrite race it re-checks).
        self.written.store(n + 1, Ordering::Release);
    }

    /// Records an event of `kind` stamped now.
    // lint: hot-path
    #[inline]
    pub fn record_now(&self, kind: EventKind, arg: u64) {
        self.record(Event::new(now_ns(), kind, arg));
    }

    /// Best-effort snapshot of the currently-held events, oldest first.
    ///
    /// Safe to call from any thread while the producer keeps writing:
    /// slots that may have been overwritten during the read (detected by
    /// re-reading the publish counter) are discarded, so a torn event is
    /// never returned — at worst the snapshot is a few events shorter
    /// than the capacity.
    pub fn snapshot(&self) -> Vec<Event> {
        let end = self.written.load(Ordering::Acquire);
        let start = end.saturating_sub(self.capacity as u64);
        let mut raw = Vec::with_capacity((end - start) as usize);
        for n in start..end {
            let i = (n as usize & (self.capacity - 1)) * 2;
            let ts = self.slots[i].load(Ordering::Relaxed);
            let packed = self.slots[i + 1].load(Ordering::Relaxed);
            raw.push((n, ts, packed));
        }
        // Anything the producer may have been overwriting while we read is
        // suspect. The counter increments *after* the slot write, so with
        // `end2` published the producer can be mid-write of event `end2`,
        // whose slot holds event `end2 − capacity`: discard that one too.
        let end2 = self.written.load(Ordering::Acquire);
        let safe_start = end2.saturating_sub(self.capacity as u64 - 1);
        raw.iter()
            .filter(|(n, _, _)| *n >= safe_start)
            .filter_map(|(_, ts, packed)| Event::from_words(*ts, *packed))
            .collect()
    }
}

/// Formats a post-mortem dump from per-worker flight rings: the retained
/// events of all workers merged by timestamp, one line per event, oldest
/// first. Returns a line count of zero ("flight recorder: no events")
/// when nothing was recorded.
pub fn dump(rings: &[FlightRing]) -> String {
    use std::fmt::Write as _;
    let mut merged: Vec<(u64, usize, Event)> = Vec::new();
    for (w, ring) in rings.iter().enumerate() {
        for ev in ring.snapshot() {
            merged.push((ev.ts_ns, w, ev));
        }
    }
    merged.sort_by_key(|(ts, w, _)| (*ts, *w));
    if merged.is_empty() {
        return "flight recorder: no events\n".to_string();
    }
    let recorded: u64 = rings.iter().map(|r| r.recorded()).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: last {} of {} events ({} workers)",
        merged.len(),
        recorded,
        rings.len()
    );
    for (ts, w, ev) in &merged {
        let arg = match ev.kind {
            EventKind::Steal => format!(
                "victim={} frame={:#x}",
                crate::event::steal_victim(ev.arg),
                crate::event::steal_frame(ev.arg)
            ),
            EventKind::Idle | EventKind::Unpark => format!("dur={}ns", ev.arg),
            _ => format!("arg={:#x}", ev.arg),
        };
        let _ = writeln!(out, "  [{ts:>12}ns] w{w} {:<12} {}", ev.kind.name(), arg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_most_recent_events() {
        let ring = FlightRing::new(8);
        for i in 0..20u64 {
            ring.record(Event::new(i, EventKind::Spawn, i));
        }
        let snap = ring.snapshot();
        // One below capacity: the oldest retained slot is conservatively
        // treated as possibly mid-overwrite.
        assert_eq!(snap.len(), 7, "bounded at capacity − 1");
        let args: Vec<u64> = snap.iter().map(|e| e.arg).collect();
        assert_eq!(args, (13..20).collect::<Vec<_>>(), "oldest overwritten");
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(FlightRing::new(0).capacity(), 8);
        assert_eq!(FlightRing::new(9).capacity(), 16);
    }

    #[test]
    fn empty_ring_snapshot_and_dump() {
        let ring = FlightRing::new(16);
        assert!(ring.snapshot().is_empty());
        assert!(dump(&[ring]).contains("no events"));
    }

    #[test]
    fn dump_merges_workers_in_time_order() {
        let a = FlightRing::new(8);
        let b = FlightRing::new(8);
        a.record(Event::new(10, EventKind::Root, 0));
        b.record(Event::new(
            5,
            EventKind::Steal,
            crate::event::pack_steal_arg(0, 0xAB),
        ));
        a.record(Event::new(20, EventKind::Join, 0x30));
        let text = dump(&[a, b]);
        let steal_at = text.find("steal").unwrap();
        let root_at = text.find("root").unwrap();
        let join_at = text.find("join").unwrap();
        assert!(
            steal_at < root_at && root_at < join_at,
            "time-ordered:\n{text}"
        );
        assert!(text.contains("victim=0 frame=0xab"));
        assert!(text.contains("w1 steal"));
    }

    #[test]
    fn snapshot_tolerates_concurrent_writes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(FlightRing::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let producer = {
            let (ring, stop) = (ring.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ring.record(Event::new(i, EventKind::Wake, i & crate::ARG_MASK));
                    i += 1;
                }
                i
            })
        };
        for _ in 0..1000 {
            for ev in ring.snapshot() {
                // Retained events are never torn: ts always equals arg.
                assert_eq!(ev.ts_ns & crate::ARG_MASK, ev.arg);
                assert_eq!(ev.kind, EventKind::Wake);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let produced = producer.join().unwrap();
        assert!(produced > 0);
    }
}
