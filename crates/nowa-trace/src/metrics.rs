//! A process-wide metrics registry with Prometheus-text and JSON encoders.
//!
//! Pull-based: the runtime builds a fresh registry from its per-worker
//! `StatsSnapshot`s and idle-engine counters on each call (no hot-path
//! cost, no background thread), and serving surfaces encode it with
//! [`MetricsRegistry::render_prometheus`] or
//! [`MetricsRegistry::render_json`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// Prometheus metric kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Free-moving instantaneous value.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sample: a metric name, optional labels, and a value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric family name (must be a valid Prometheus name).
    pub name: String,
    /// Help text for the family.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs, rendered in insertion order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// An ordered collection of metric samples.
///
/// Multiple samples may share a name (differing by labels); `# HELP` /
/// `# TYPE` headers are emitted once per family, at its first sample.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The collected samples.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Adds an unlabelled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, MetricKind::Counter, Vec::new(), value);
    }

    /// Adds a labelled counter sample.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        self.push(name, help, MetricKind::Counter, own_labels(labels), value);
    }

    /// Adds an unlabelled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, MetricKind::Gauge, Vec::new(), value);
    }

    /// Adds a labelled gauge sample.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        self.push(name, help, MetricKind::Gauge, own_labels(labels), value);
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: Vec<(String, String)>,
        value: f64,
    ) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels,
            value,
        });
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen.contains(&m.name.as_str()) {
                seen.push(&m.name);
                let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
                let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.as_str());
            }
            out.push_str(&m.name);
            if !m.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in m.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", fmt_value(m.value));
        }
        out
    }

    /// Renders the registry as JSON: an object keyed by metric name, each
    /// entry `{"kind": ..., "help": ..., "samples": [{"labels": {...},
    /// "value": ...}]}`.
    pub fn render_json(&self) -> String {
        let mut families: BTreeMap<String, (MetricKind, String, Vec<Json>)> = BTreeMap::new();
        for m in &self.metrics {
            let fam = families
                .entry(m.name.clone())
                .or_insert_with(|| (m.kind, m.help.clone(), Vec::new()));
            let mut sample = BTreeMap::new();
            let mut labels = BTreeMap::new();
            for (k, v) in &m.labels {
                labels.insert(k.clone(), Json::Str(v.clone()));
            }
            sample.insert("labels".to_string(), Json::Obj(labels));
            sample.insert("value".to_string(), Json::Num(m.value));
            fam.2.push(Json::Obj(sample));
        }
        let mut root = BTreeMap::new();
        for (name, (kind, help, samples)) in families {
            let mut fam = BTreeMap::new();
            fam.insert("kind".to_string(), Json::Str(kind.as_str().to_string()));
            fam.insert("help".to_string(), Json::Str(help));
            fam.insert("samples".to_string(), Json::Arr(samples));
            root.insert(name, Json::Obj(fam));
        }
        Json::Obj(root).render()
    }
}

fn own_labels(labels: &[(&str, String)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("nowa_spawns_total", "Spawns executed.", 12.0);
        reg.gauge("nowa_workers", "Worker threads.", 4.0);
        reg.counter_with(
            "nowa_steals_total",
            "Successful steals.",
            &[("worker", "0".to_string())],
            3.0,
        );
        reg.counter_with(
            "nowa_steals_total",
            "Successful steals.",
            &[("worker", "1".to_string())],
            5.0,
        );
        reg.gauge("nowa_wake_ratio", "Targeted wake hit ratio.", 0.75);
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP nowa_spawns_total Spawns executed."));
        assert!(text.contains("# TYPE nowa_spawns_total counter"));
        assert!(text.contains("\nnowa_spawns_total 12\n"));
        assert!(text.contains("# TYPE nowa_workers gauge"));
        assert!(text.contains("nowa_steals_total{worker=\"0\"} 3"));
        assert!(text.contains("nowa_steals_total{worker=\"1\"} 5"));
        assert!(text.contains("nowa_wake_ratio 0.75"));
        // One TYPE header per family even with multiple samples.
        assert_eq!(text.matches("# TYPE nowa_steals_total").count(), 1);
    }

    #[test]
    fn label_and_help_escaping() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_with(
            "nowa_test",
            "multi\nline \\ help",
            &[("path", "a\"b\\c\nd".to_string())],
            1.0,
        );
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP nowa_test multi\\nline \\\\ help"));
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_parses_back() {
        let json = sample_registry().render_json();
        let parsed = Json::parse(&json).unwrap();
        let steals = parsed.get("nowa_steals_total").unwrap();
        assert_eq!(steals.get("kind").unwrap().as_str(), Some("counter"));
        let samples = steals.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[1]
                .get("labels")
                .unwrap()
                .get("worker")
                .unwrap()
                .as_str(),
            Some("1")
        );
        assert_eq!(samples[1].get("value").unwrap().as_num(), Some(5.0));
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("nowa_spawns_total"));
        assert!(valid_name("_x:y"));
        assert!(!valid_name("9lives"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
