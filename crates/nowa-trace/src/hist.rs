//! Fixed-bucket log2 histograms.
//!
//! 64 buckets cover the full `u64` range: bucket 0 holds the value 0 and
//! bucket `i > 0` holds values in `[2^(i-1), 2^i)`. Recording is a single
//! relaxed `fetch_add`, so histograms can sit on the runtime's paths
//! without synchronisation cost; precision (one bit of magnitude) is
//! plenty for latency distributions.

use core::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (covers all of `u64`).
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, else `min(63, 64 - leading_zeros)`.
///
/// Equivalently: the number of bits needed to represent the value, so
/// bucket `i > 0` covers `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive-exclusive value range `[lo, hi)` covered by a bucket; bucket
/// 63 absorbs everything from `2^62` up (its `hi` saturates to `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS);
    if i == 0 {
        (0, 1)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        };
        (lo, hi)
    }
}

/// A concurrently recordable log2 histogram.
#[repr(align(128))]
#[derive(Debug)]
pub struct Hist64 {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Hist64 {
    fn default() -> Hist64 {
        Hist64 {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Hist64 {
    /// Records one value (relaxed; never blocks).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut s = HistSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.count = self.count.load(Ordering::Relaxed);
        s.sum = self.sum.load(Ordering::Relaxed);
        s.max = self.max.load(Ordering::Relaxed);
        s
    }
}

/// A merged, plain-data histogram (what reports carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see `bucket_index`).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Records into a snapshot directly (for merge-time derived metrics).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Accumulates another snapshot.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); 0 when empty. Log2 resolution: the true quantile
    /// lies within a factor of 2 below the returned bound.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Exhaustive: powers of two land on the bucket whose range starts
        // at them, and (2^k)-1 lands one bucket lower.
        for k in 1..63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k as usize, "2^{k}-1");
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v < hi, "2^{k} inside its bucket bounds");
        }
    }

    #[test]
    fn bounds_partition_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 1));
        for i in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, 1u64 << (i - 1));
            assert_eq!(hi, 1u64 << i);
            assert_eq!(bucket_bounds(i + 1).0.max(1), hi.max(1));
        }
        assert_eq!(bucket_bounds(63), (1u64 << 62, u64::MAX));
    }

    #[test]
    fn record_and_stats() {
        let h = Hist64::default();
        for v in [0, 1, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_007);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1, 1
        assert_eq!(s.buckets[3], 1); // 5
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[20], 1); // 1_000_000
        assert!((s.mean() - 1_001_007.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds() {
        let a = Hist64::default();
        let b = Hist64::default();
        a.record(3);
        b.record(3);
        b.record(70);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets[bucket_index(3)], 2);
        assert_eq!(m.buckets[bucket_index(70)], 1);
        assert_eq!(m.max, 70);
    }

    #[test]
    fn quantiles() {
        let h = Hist64::default();
        for _ in 0..99 {
            h.record(10); // bucket 4: [8, 16)
        }
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), 16);
        assert_eq!(s.quantile_upper_bound(0.99), 16);
        assert_eq!(s.quantile_upper_bound(1.0), 1 << 21);
        assert_eq!(HistSnapshot::default().quantile_upper_bound(0.5), 0);
    }
}
