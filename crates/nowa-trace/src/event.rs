//! Fixed-size trace events.
//!
//! An event is two `u64` words: a timestamp (ns since the trace epoch) and
//! a packed word holding the kind (high 8 bits) plus a 56-bit argument.
//! Two words keep ring slots small and make the producer path two relaxed
//! atomic stores.

/// Mask for the 56-bit event argument.
pub const ARG_MASK: u64 = (1 << 56) - 1;

/// Bits of frame id carried in a [`EventKind::Steal`] argument (the low 8
/// bits hold the victim index).
pub const STEAL_FRAME_BITS: u32 = 48;

/// Packs a steal argument: victim index in the low 8 bits, the low
/// [`STEAL_FRAME_BITS`] bits of the stolen record's frame id above them.
/// Frame ids are address-derived ([`crate::frame_id`]), so truncation only
/// risks a (harmless) collision in post-run pairing.
#[inline]
pub fn pack_steal_arg(victim: usize, frame: u64) -> u64 {
    (victim as u64 & 0xFF) | ((frame & ((1 << STEAL_FRAME_BITS) - 1)) << 8)
}

/// The victim index from a [`EventKind::Steal`] argument.
#[inline]
pub fn steal_victim(arg: u64) -> usize {
    (arg & 0xFF) as usize
}

/// The (truncated) frame id from a [`EventKind::Steal`] argument.
#[inline]
pub fn steal_frame(arg: u64) -> u64 {
    (arg >> 8) & ((1 << STEAL_FRAME_BITS) - 1)
}

/// What happened. The argument's meaning depends on the kind.
///
/// Deque-lifecycle kinds (`Spawn`, `Steal`, `FastPop`, `OwnTake`, `Join`,
/// `SyncInline`, `SyncSuspend`, `SyncResume`) carry the *frame id* of the
/// spawn record or sync frame involved, giving every continuation a causal
/// identity: a post-run pass ([`crate::CausalProfile`]) can replay the
/// per-worker deques and rebuild the fork/join DAG across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A continuation was offered to thieves (pushed on the owner deque).
    /// arg: the spawning frame's id. Emitted only for *offered* spawns —
    /// spawns elided by the flavor's no-offer path create no deque record
    /// and so no DAG edge.
    Spawn = 0,
    /// A steal attempt found the victim's deque empty. arg: victim index.
    StealEmpty = 1,
    /// A steal attempt lost a race and will retry. arg: victim index.
    StealRetry = 2,
    /// A steal succeeded. arg: [`pack_steal_arg`]`(victim, frame)` — the
    /// victim index plus the stolen record's frame id (steal provenance).
    Steal = 3,
    /// Fast-path pop: the continuation was not stolen. arg: the popped
    /// record's frame id.
    FastPop = 4,
    /// The work-finding loop took a continuation from its own deque.
    /// arg: the taken record's frame id.
    OwnTake = 5,
    /// A child joined (its continuation had been consumed elsewhere).
    /// arg: the child's frame id.
    Join = 6,
    /// An explicit sync was satisfied inline. arg: frame id.
    SyncInline = 7,
    /// An explicit sync suspended its frame. arg: frame id.
    SyncSuspend = 8,
    /// A suspended sync continuation was resumed. arg: frame id.
    SyncResume = 9,
    /// An idle period ended. The timestamp is the *start* of the period;
    /// arg: its duration in ns.
    Idle = 10,
    /// A root task was taken from the injector. arg: 0.
    Root = 11,
    /// Deque occupancy sample. arg: the owner deque's length.
    Occupancy = 12,
    /// A worker entered a futex park (idle engine). arg: 0.
    Park = 13,
    /// A park ended. The timestamp is the *start* of the park; arg: its
    /// duration in ns (mirrors [`EventKind::Idle`] so exporters can render
    /// it as a span).
    Unpark = 14,
    /// A targeted wake was issued. arg: the woken worker's index.
    Wake = 15,
    /// A cooperative checkpoint observed a cancelled scope and raised.
    /// arg: the checkpointing frame's id (0 for an ambient checkpoint
    /// outside any join frame).
    Cancel = 16,
    /// A suspended sync continuation was resumed into a cancelled scope —
    /// the abort path: woken specifically to unwind. arg: frame id.
    Abort = 17,
    /// A `block_on` future returned `Pending` and its continuation was
    /// parked behind a waker (async serving surface, §6h). arg: the
    /// parked cell's id.
    AsyncPark = 18,
    /// A waker claimed a parked async continuation and enqueued it on the
    /// ready queue. arg: the woken cell's id.
    AsyncWake = 19,
    /// A worker completed one reactor poll (epoll_wait + dispatch).
    /// arg: the number of I/O events dispatched.
    ReactorPoll = 20,
    /// The timer wheel fired due timers. arg: how many fired.
    TimerFire = 21,
}

/// Number of distinct [`EventKind`]s.
pub const NUM_KINDS: usize = 22;

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; NUM_KINDS] = [
        EventKind::Spawn,
        EventKind::StealEmpty,
        EventKind::StealRetry,
        EventKind::Steal,
        EventKind::FastPop,
        EventKind::OwnTake,
        EventKind::Join,
        EventKind::SyncInline,
        EventKind::SyncSuspend,
        EventKind::SyncResume,
        EventKind::Idle,
        EventKind::Root,
        EventKind::Occupancy,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::Wake,
        EventKind::Cancel,
        EventKind::Abort,
        EventKind::AsyncPark,
        EventKind::AsyncWake,
        EventKind::ReactorPoll,
        EventKind::TimerFire,
    ];

    /// Kind from its discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// Stable display name (also used as the Chrome event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Spawn => "spawn",
            EventKind::StealEmpty => "steal_empty",
            EventKind::StealRetry => "steal_retry",
            EventKind::Steal => "steal",
            EventKind::FastPop => "fast_pop",
            EventKind::OwnTake => "own_take",
            EventKind::Join => "join",
            EventKind::SyncInline => "sync_inline",
            EventKind::SyncSuspend => "sync_suspend",
            EventKind::SyncResume => "sync_resume",
            EventKind::Idle => "idle",
            EventKind::Root => "root",
            EventKind::Occupancy => "occupancy",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::Wake => "wake",
            EventKind::Cancel => "cancel",
            EventKind::Abort => "abort",
            EventKind::AsyncPark => "async_park",
            EventKind::AsyncWake => "async_wake",
            EventKind::ReactorPoll => "reactor_poll",
            EventKind::TimerFire => "timer_fire",
        }
    }
}

/// One timestamped scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (56 bits).
    pub arg: u64,
}

impl Event {
    /// A new event; the argument is truncated to 56 bits.
    #[inline]
    pub fn new(ts_ns: u64, kind: EventKind, arg: u64) -> Event {
        Event {
            ts_ns,
            kind,
            arg: arg & ARG_MASK,
        }
    }

    /// Packs kind + argument into the second slot word.
    #[inline]
    pub fn pack_word(&self) -> u64 {
        ((self.kind as u64) << 56) | (self.arg & ARG_MASK)
    }

    /// Rebuilds an event from its two slot words. Returns `None` for an
    /// unknown kind (possible only with corrupted input).
    #[inline]
    pub fn from_words(ts_ns: u64, packed: u64) -> Option<Event> {
        let kind = EventKind::from_u8((packed >> 56) as u8)?;
        Some(Event {
            ts_ns,
            kind,
            arg: packed & ARG_MASK,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_all_kinds() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i, "discriminants are dense");
            let ev = Event::new(123_456_789, *kind, 0xABCD_EF01_2345);
            let back = Event::from_words(ev.ts_ns, ev.pack_word()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn arg_truncates_to_56_bits() {
        let ev = Event::new(1, EventKind::Idle, u64::MAX);
        assert_eq!(ev.arg, ARG_MASK);
        assert_eq!(
            Event::from_words(1, ev.pack_word()).unwrap().kind,
            EventKind::Idle
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(Event::from_words(0, (NUM_KINDS as u64) << 56).is_none());
    }

    #[test]
    fn steal_arg_packs_victim_and_frame() {
        let arg = pack_steal_arg(7, 0xDEAD_BEEF);
        assert_eq!(steal_victim(arg), 7);
        assert_eq!(steal_frame(arg), 0xDEAD_BEEF);
        assert!(arg <= ARG_MASK, "packed arg fits the 56-bit field");
        // Frame ids wider than 48 bits truncate; the victim is unaffected.
        let wide = pack_steal_arg(255, u64::MAX);
        assert_eq!(steal_victim(wide), 255);
        assert_eq!(steal_frame(wide), (1 << STEAL_FRAME_BITS) - 1);
    }
}
